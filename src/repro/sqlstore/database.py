"""The database: tables + atomic transactions + semi-sync commit.

Commit protocol (Espresso §IV.B "Robustness"): changes made by a
transaction are written to two places before being acknowledged — the
local binlog and the replication listener (Databus relay).  If the
listener cannot acknowledge, the commit fails and the transaction's
effects are rolled back, so no acknowledged commit can be lost by a
single node failure.
"""

from __future__ import annotations

from typing import Callable

from repro.common.clock import Clock, WallClock
from repro.common.errors import (
    ConfigurationError,
    DuplicateKeyError,
    KeyNotFoundError,
    ReplicationOrderError,
    ReproError,
    TransactionAbortedError,
)
from repro.sqlstore.binlog import (
    WATERMARK_TABLE,
    Binlog,
    BinlogTransaction,
    ChangeEvent,
    ChangeKind,
)
from repro.sqlstore.table import Row, Table, TableSchema


class SemiSyncTimeoutError(ReproError):
    """The semi-sync listener failed to acknowledge a commit."""


SemiSyncListener = Callable[[BinlogTransaction], bool]


class Transaction:
    """A buffered multi-table write batch with read-your-writes.

    Statements validate eagerly against the current committed state plus
    this transaction's own buffered effects; commit applies everything
    atomically and appends a single binlog transaction.
    """

    def __init__(self, database: "SqlDatabase"):
        self._db = database
        self._changes: list[ChangeEvent] = []
        # overlay of buffered effects: (table, key) -> row or None (deleted)
        self._overlay: dict[tuple[str, tuple], Row | None] = {}
        self._done = False

    def _check_open(self) -> None:
        if self._done:
            raise TransactionAbortedError("transaction already finished")

    def _current(self, table_name: str, key: tuple) -> Row | None:
        """Row as this transaction sees it (overlay over committed)."""
        if (table_name, key) in self._overlay:
            return self._overlay[(table_name, key)]
        table = self._db.table(table_name)
        return table.get(key) if table.contains(key) else None

    def insert(self, table_name: str, row: Row) -> None:
        self._check_open()
        table = self._db.table(table_name)
        table.schema.validate_row(row)
        key = table.schema.key_of(row)
        if self._current(table_name, key) is not None:
            raise DuplicateKeyError(f"{table_name}: duplicate key {key!r}")
        self._buffer(ChangeEvent(table_name, ChangeKind.INSERT, key, dict(row)))

    def update(self, table_name: str, row: Row) -> None:
        self._check_open()
        table = self._db.table(table_name)
        table.schema.validate_row(row)
        key = table.schema.key_of(row)
        if self._current(table_name, key) is None:
            raise KeyNotFoundError(f"{table_name}: no row {key!r}")
        self._buffer(ChangeEvent(table_name, ChangeKind.UPDATE, key, dict(row)))

    def upsert(self, table_name: str, row: Row) -> None:
        self._check_open()
        table = self._db.table(table_name)
        key = table.schema.key_of(row)
        if self._current(table_name, key) is None:
            self.insert(table_name, row)
        else:
            self.update(table_name, row)

    def delete(self, table_name: str, key: tuple) -> None:
        self._check_open()
        existing = self._current(table_name, key)
        if existing is None:
            raise KeyNotFoundError(f"{table_name}: no row {key!r}")
        self._buffer(ChangeEvent(table_name, ChangeKind.DELETE, key, existing))

    def get(self, table_name: str, key: tuple) -> Row:
        self._check_open()
        row = self._current(table_name, key)
        if row is None:
            raise KeyNotFoundError(f"{table_name}: no row {key!r}")
        return dict(row)

    def _buffer(self, change: ChangeEvent) -> None:
        self._changes.append(change)
        effect = None if change.kind is ChangeKind.DELETE else dict(change.row)
        self._overlay[(change.table, change.key)] = effect

    def commit(self) -> int:
        """Apply atomically; returns the assigned SCN (0 for empty txns)."""
        self._check_open()
        self._done = True
        if not self._changes:
            return 0
        return self._db._commit(self._changes)

    def rollback(self) -> None:
        self._check_open()
        self._done = True
        self._changes.clear()
        self._overlay.clear()


class SqlDatabase:
    """A named database: tables, one binlog, monotonic SCN assignment."""

    def __init__(self, name: str, clock: Clock | None = None):
        self.name = name
        self.clock = clock or WallClock()
        self.binlog = Binlog()
        self._tables: dict[str, Table] = {}
        self._next_scn = 1
        self._semisync: SemiSyncListener | None = None
        self.commits = 0
        self.aborts = 0

    # -- DDL -----------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise ConfigurationError(f"table {schema.name} exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise ConfigurationError(f"no table {name}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigurationError(f"no table {name!r} in {self.name}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- transactions ----------------------------------------------------------

    def begin(self) -> Transaction:
        return Transaction(self)

    def autocommit(self, table_name: str, row: Row,
                   kind: ChangeKind = ChangeKind.INSERT) -> int:
        """Single-statement transaction convenience."""
        txn = self.begin()
        if kind is ChangeKind.INSERT:
            txn.insert(table_name, row)
        elif kind is ChangeKind.UPDATE:
            txn.update(table_name, row)
        else:
            txn.delete(table_name, self.table(table_name).schema.key_of(row))
        return txn.commit()

    def set_semisync_listener(self, listener: SemiSyncListener | None) -> None:
        """Register the replication acknowledger (at most one).

        The listener receives the binlog transaction *before* the commit
        is finalized and must return True to acknowledge.  Returning
        False or raising aborts the commit — the "written to two places"
        guarantee.
        """
        self._semisync = listener

    def _ack_semisync(self, txn: BinlogTransaction) -> None:
        """Run the semi-sync listener; raise (and count an abort) when
        it cannot acknowledge — the "written to two places" rule."""
        if self._semisync is None:
            return
        try:
            acked = self._semisync(txn)
        except Exception as exc:
            self.aborts += 1
            raise SemiSyncTimeoutError(
                f"semi-sync listener raised: {exc}") from exc
        if not acked:
            self.aborts += 1
            raise SemiSyncTimeoutError("semi-sync listener refused ack")

    def _commit(self, changes: list[ChangeEvent]) -> int:
        scn = self._next_scn
        txn = BinlogTransaction(scn, tuple(changes), timestamp=self.clock.now())
        self._ack_semisync(txn)
        # apply to tables; validation already happened statement by statement
        for change in changes:
            table = self._tables[change.table]
            if change.kind is ChangeKind.INSERT:
                table.upsert(change.row)
            elif change.kind is ChangeKind.UPDATE:
                table.upsert(change.row)
            else:
                if table.contains(change.key):
                    table.delete(change.key)
        self._next_scn += 1
        self.binlog.append(txn)
        self.commits += 1
        return scn

    # -- migration support ----------------------------------------------------

    def write_watermark(self, label: str) -> int:
        """Append a watermark/control transaction to the binlog and
        return its SCN.  No table is touched: the watermark's only job
        is to occupy a definite position in the commit order, which is
        what lets a DBLog-style backfill bracket a lock-free chunk read
        between a low and a high watermark and identify exactly the
        live changes that interleaved with it.

        The watermark still goes through the semi-sync listener: it is
        part of the replication stream, so it must be written to two
        places like every other commit.
        """
        if not label:
            raise ConfigurationError("watermark label must be non-empty")
        scn = self._next_scn
        # the SCN in the key makes every watermark globally unique, so
        # log-compacting stores (bootstrap snapshots) never fold two
        # watermarks into one even when their labels repeat
        change = ChangeEvent(WATERMARK_TABLE, ChangeKind.WATERMARK,
                             (label, scn), {"label": label})
        txn = BinlogTransaction(scn, (change,), timestamp=self.clock.now())
        self._ack_semisync(txn)
        self._next_scn += 1
        self.binlog.append(txn)
        self.commits += 1
        return scn

    def scan_chunk(self, table_name: str, after_key: tuple | None,
                   limit: int) -> list[Row]:
        """Keyed chunk pagination over one table (deep copies), in
        deterministic primary-key order — the migration backfill's
        read path.  See :meth:`Table.scan_chunk`."""
        return self.table(table_name).scan_chunk(after_key, limit)

    # -- bootstrap support ----------------------------------------------------

    @property
    def last_committed_scn(self) -> int:
        return self._next_scn - 1

    def snapshot(self) -> tuple[int, dict[str, list[Row]]]:
        """A consistent snapshot of every table plus its SCN high-water
        mark — the seed for new replicas (Espresso expansion §IV.B)."""
        return (self.last_committed_scn,
                {name: table.snapshot() for name, table in self._tables.items()})

    def restore(self, tables: dict[str, list[Row]], scn: int) -> None:
        """Load a snapshot into an empty database and fast-forward SCN.

        The binlog is fast-forwarded too: a restored replica never held
        the pre-snapshot transactions, so its log continues from ``scn``.
        """
        for name, rows in tables.items():
            self.table(name).restore(rows)
        self._next_scn = scn + 1
        self.binlog.reset_to(scn)

    def apply_replicated(self, txn: BinlogTransaction) -> None:
        """Apply a transaction replicated from a master, in SCN order.

        Used by slave replicas; enforces timeline consistency by
        refusing out-of-order application.
        """
        expected = self._next_scn
        if txn.scn < expected:
            return  # already applied (at-least-once delivery upstream)
        if txn.scn > expected:
            raise ReplicationOrderError(
                f"{self.name}: out-of-order replication: expected {expected}, "
                f"got {txn.scn}")
        for change in txn.changes:
            if change.kind is ChangeKind.WATERMARK:
                continue  # control event: position only, no table effect
            table = self._tables[change.table]
            if change.kind is ChangeKind.DELETE:
                if table.contains(change.key):
                    table.delete(change.key)
            else:
                table.upsert(change.row)
        self._next_scn = txn.scn + 1
        self.binlog.append(BinlogTransaction(txn.scn, txn.changes, txn.timestamp))
        self.commits += 1
