"""Tables with composite primary keys and ordered scans.

The layout mirrors Table IV.1 of the paper: an Espresso Song table is a
MySQL table whose primary key is (artist, album, song) with payload
columns (timestamp, etag, val blob, schema_version).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import (
    ConfigurationError,
    DuplicateKeyError,
    InvalidRequestError,
    KeyNotFoundError,
    SchemaValidationError,
)

Row = dict


@dataclass(frozen=True)
class Column:
    """One column: a name, a python type tag, nullability."""

    name: str
    type: type = bytes
    nullable: bool = False

    def validate(self, value: object) -> None:
        if value is None:
            if not self.nullable:
                raise SchemaValidationError(
                    f"column {self.name!r} is NOT NULL")
            return
        if self.type is float and isinstance(value, int):
            return  # ints are acceptable floats
        if not isinstance(value, self.type):
            raise SchemaValidationError(
                f"column {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__}")


@dataclass(frozen=True)
class TableSchema:
    """Column definitions plus the ordered primary-key column list."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"table {self.name}: duplicate columns")
        for pk in self.primary_key:
            if pk not in names:
                raise ConfigurationError(
                    f"table {self.name}: primary key column {pk!r} undeclared")
        if not self.primary_key:
            raise ConfigurationError(f"table {self.name}: primary key required")

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise ConfigurationError(f"table {self.name}: no column {name!r}")

    def key_of(self, row: Row) -> tuple:
        try:
            return tuple(row[k] for k in self.primary_key)
        except KeyError as exc:
            raise SchemaValidationError(
                f"row missing primary key column {exc}") from exc

    def validate_row(self, row: Row) -> None:
        declared = {c.name for c in self.columns}
        unknown = set(row) - declared
        if unknown:
            raise SchemaValidationError(
                f"table {self.name}: unknown columns {sorted(unknown)}")
        for col in self.columns:
            col.validate(row.get(col.name))


class Table:
    """Row storage keyed by primary key, kept in key-sorted order.

    Rows are plain dicts; the table stores copies so callers cannot
    mutate storage behind its back.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[tuple, Row] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def get(self, key: tuple) -> Row:
        try:
            return dict(self._rows[key])
        except KeyError:
            raise KeyNotFoundError(
                f"{self.schema.name}: no row with key {key!r}") from None

    def contains(self, key: tuple) -> bool:
        return key in self._rows

    def insert(self, row: Row) -> tuple:
        self.schema.validate_row(row)
        key = self.schema.key_of(row)
        if key in self._rows:
            raise DuplicateKeyError(
                f"{self.schema.name}: duplicate key {key!r}")
        self._rows[key] = dict(row)
        return key

    def update(self, row: Row) -> tuple:
        """Full-row replacement by primary key."""
        self.schema.validate_row(row)
        key = self.schema.key_of(row)
        if key not in self._rows:
            raise KeyNotFoundError(f"{self.schema.name}: no row {key!r}")
        self._rows[key] = dict(row)
        return key

    def upsert(self, row: Row) -> tuple[tuple, bool]:
        """Insert-or-replace; returns (key, was_insert)."""
        self.schema.validate_row(row)
        key = self.schema.key_of(row)
        was_insert = key not in self._rows
        self._rows[key] = dict(row)
        return key, was_insert

    def delete(self, key: tuple) -> Row:
        try:
            return self._rows.pop(key)
        except KeyError:
            raise KeyNotFoundError(f"{self.schema.name}: no row {key!r}") from None

    def scan(self, key_prefix: tuple = ()) -> Iterator[Row]:
        """Rows in primary-key order, optionally filtered by key prefix.

        Prefix scans serve Espresso collection resources: all songs of
        one artist share the leading key component.
        """
        for key in sorted(self._rows):
            if key[:len(key_prefix)] == key_prefix:
                yield dict(self._rows[key])

    def scan_chunk(self, after_key: tuple | None, limit: int) -> list[Row]:
        """Keyed pagination: up to ``limit`` rows with primary key
        strictly greater than ``after_key`` (``None`` starts at the
        beginning), in primary-key order.

        This is the DBLog-style chunk read for live migration: each
        call pages forward without copying the whole table and without
        any lock — concurrent writers keep committing while a backfill
        walks the keyspace.  Rows are deep copies, so a chunk held by a
        migration reader can never alias live storage.
        """
        if limit <= 0:
            raise InvalidRequestError(
                f"chunk limit must be positive, got {limit}")
        out: list[Row] = []
        for key in sorted(self._rows):
            if after_key is not None and key <= after_key:
                continue
            out.append(copy.deepcopy(self._rows[key]))
            if len(out) >= limit:
                break
        return out

    def keys(self) -> list[tuple]:
        return sorted(self._rows)

    def snapshot(self) -> list[Row]:
        """A consistent full copy (bootstrap/backup source).

        Deep copies: snapshot consumers (replica bootstrap, migration
        backfill) hold the rows long after this call returns, so they
        must not alias live storage.
        """
        return [copy.deepcopy(self._rows[k]) for k in sorted(self._rows)]

    def restore(self, rows: list[Row]) -> None:
        """Replace contents wholesale (bootstrap target)."""
        self._rows.clear()
        for row in rows:
            self.insert(row)
