"""The binlog: commit-ordered change capture.

Every committed transaction appends one :class:`BinlogTransaction`
holding the full row images of its changes, stamped with the commit
SCN.  Databus relays tail this log ("consuming from the database
replication log", §III.C); Espresso ships it to the relay via
MySQL-replication-style readers (§IV.B).

The binlog is the *source of truth for ordering*: SCNs are dense
(consecutive integers) and assigned in commit order, which is what
gives Databus its timeline consistency.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterator

from repro.common.errors import InvalidRequestError, ReplicationOrderError


class ChangeKind(Enum):
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    #: A control event: no table is touched, but the entry occupies a
    #: definite position in the commit order.  DBLog-style migrations
    #: bracket each chunk read with a low/high watermark pair so stream
    #: consumers can tell exactly which live changes interleaved with
    #: the chunk (Andreakis et al., "DBLog", 2020).
    WATERMARK = "watermark"


#: Pseudo-table carried by watermark change events; never a real table.
WATERMARK_TABLE = "__watermark__"


@dataclass(frozen=True)
class ChangeEvent:
    """One row change within a transaction.

    ``row`` is the post-image for inserts/updates and the pre-image for
    deletes — consumers need the key either way, and downstream caches
    want the deleted row's identity.
    """

    table: str
    kind: ChangeKind
    key: tuple
    row: dict


@dataclass(frozen=True)
class BinlogTransaction:
    """An atomic group of changes committed at one SCN."""

    scn: int
    changes: tuple[ChangeEvent, ...]
    timestamp: float = 0.0

    def tables_touched(self) -> set[str]:
        return {c.table for c in self.changes}


class Binlog:
    """Append-only, SCN-indexed transaction log with tailing support."""

    def __init__(self):
        self._transactions: list[BinlogTransaction] = []
        self._listeners: list[Callable[[BinlogTransaction], None]] = []
        self._base_scn = 0  # > 0 on replicas restored from a snapshot

    def append(self, txn: BinlogTransaction) -> None:
        expected = self.last_scn + 1
        if txn.scn != expected:
            raise ReplicationOrderError(
                f"binlog SCN gap: expected {expected}, got {txn.scn}")
        self._transactions.append(txn)
        for listener in self._listeners:
            listener(txn)

    @property
    def last_scn(self) -> int:
        """SCN of the newest transaction; the restore baseline when empty."""
        return (self._transactions[-1].scn if self._transactions
                else self._base_scn)

    def reset_to(self, scn: int) -> None:
        """Fast-forward an *empty* binlog to a snapshot's SCN.

        A replica restored from a snapshot at SCN ``scn`` never held the
        earlier transactions; its log continues from ``scn + 1``.
        """
        if self._transactions:
            raise InvalidRequestError("cannot reset a non-empty binlog")
        if scn < 0:
            raise InvalidRequestError("baseline SCN cannot be negative")
        self._base_scn = scn

    def __len__(self) -> int:
        return len(self._transactions)

    def read_from(self, after_scn: int) -> Iterator[BinlogTransaction]:
        """All retained transactions with SCN strictly greater than
        ``after_scn``.  SCNs are dense, so the slice is a direct index
        (offset by the restore baseline).
        """
        start = max(0, min(after_scn - self._base_scn,
                           len(self._transactions)))
        for txn in self._transactions[start:]:
            yield txn

    def subscribe(self, listener: Callable[[BinlogTransaction], None]) -> None:
        """Push-mode tailing: ``listener`` fires on every future commit.

        This models MySQL replication shipping the binlog to the
        Databus relay as commits happen.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[BinlogTransaction], None]) -> None:
        self._listeners.remove(listener)
