"""The znode tree, sessions, and watch machinery.

Semantics follow Apache Zookeeper closely where the paper's systems
depend on them:

* znodes form a slash-separated tree; every node carries bytes and a
  version counter (compare-and-set via expected version);
* EPHEMERAL znodes die with their owning session — Kafka consumers
  and Helix participants register liveness this way;
* SEQUENTIAL znodes get a monotonically increasing zero-padded suffix;
* watches are one-shot: set by a read (exists/get/get_children), fired
  once on the next matching change, then discarded.  Rebalance loops
  re-register after every event, exactly as Kafka's consumer does.

Everything is synchronous and single-threaded; "sessions expire" when
the test or the failure injector says so, not on a timer, keeping
distributed-coordination tests deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.common.errors import InvalidRequestError, ReproError


class NoNodeError(ReproError):
    """The referenced znode does not exist."""


class NodeExistsError(ReproError):
    """A create collided with an existing znode."""


class NotEmptyError(ReproError):
    """Cannot delete a znode that still has children."""


class BadVersionError(ReproError):
    """Compare-and-set failed: expected version did not match."""


class SessionExpiredError(ReproError):
    """The session was expired by the server; the handle is dead."""


class CreateMode(Enum):
    PERSISTENT = "persistent"
    EPHEMERAL = "ephemeral"
    PERSISTENT_SEQUENTIAL = "persistent_sequential"
    EPHEMERAL_SEQUENTIAL = "ephemeral_sequential"

    @property
    def is_ephemeral(self) -> bool:
        return self in (CreateMode.EPHEMERAL, CreateMode.EPHEMERAL_SEQUENTIAL)

    @property
    def is_sequential(self) -> bool:
        return self in (CreateMode.PERSISTENT_SEQUENTIAL,
                        CreateMode.EPHEMERAL_SEQUENTIAL)


class EventType(Enum):
    CREATED = "created"
    DELETED = "deleted"
    DATA_CHANGED = "data_changed"
    CHILDREN_CHANGED = "children_changed"
    SESSION_EXPIRED = "session_expired"


@dataclass(frozen=True)
class WatchedEvent:
    type: EventType
    path: str


Watcher = Callable[[WatchedEvent], None]


@dataclass
class _ZNode:
    data: bytes = b""
    version: int = 0
    owner_session: int | None = None  # set for ephemerals
    children: dict[str, "_ZNode"] = field(default_factory=dict)
    sequence_counter: int = 0


def _validate_path(path: str) -> list[str]:
    if not path.startswith("/") or (path != "/" and path.endswith("/")):
        raise InvalidRequestError(f"invalid znode path {path!r}")
    if path == "/":
        return []
    return path[1:].split("/")


class ZooKeeperServer:
    """The coordination service shared by a simulated cluster."""

    def __init__(self):
        self._root = _ZNode()
        self._session_ids = itertools.count(1)
        self._live_sessions: set[int] = set()
        self._ephemerals: dict[int, set[str]] = {}
        # path -> list of (watcher, want_data_events, want_child_events)
        self._data_watches: dict[str, list[Watcher]] = {}
        self._child_watches: dict[str, list[Watcher]] = {}
        self._exists_watches: dict[str, list[Watcher]] = {}

    # -- sessions ----------------------------------------------------------

    def connect(self) -> "ZooKeeperSession":
        session_id = next(self._session_ids)
        self._live_sessions.add(session_id)
        self._ephemerals[session_id] = set()
        return ZooKeeperSession(self, session_id)

    def expire_session(self, session_id: int) -> None:
        """Kill a session, deleting its ephemerals (fires watches)."""
        if session_id not in self._live_sessions:
            return
        self._live_sessions.discard(session_id)
        for path in sorted(self._ephemerals.pop(session_id, set()),
                           key=len, reverse=True):
            try:
                self._delete(path, force=True)
            except (NoNodeError, NotEmptyError):
                pass

    def session_alive(self, session_id: int) -> bool:
        return session_id in self._live_sessions

    # -- tree operations (used via ZooKeeperSession) -----------------------

    def _lookup(self, path: str) -> _ZNode:
        node = self._root
        for part in _validate_path(path):
            if part not in node.children:
                raise NoNodeError(path)
            node = node.children[part]
        return node

    def _lookup_parent(self, path: str) -> tuple[_ZNode, str]:
        parts = _validate_path(path)
        if not parts:
            raise InvalidRequestError("cannot operate on the root znode")
        node = self._root
        for part in parts[:-1]:
            if part not in node.children:
                raise NoNodeError(f"parent of {path} missing")
            node = node.children[part]
        return node, parts[-1]

    def _create(self, path: str, data: bytes, mode: CreateMode,
                session_id: int) -> str:
        parent, name = self._lookup_parent(path)
        if mode.is_sequential:
            name = f"{name}{parent.sequence_counter:010d}"
            parent.sequence_counter += 1
            path = path.rsplit("/", 1)[0] + "/" + name
        if name in parent.children:
            raise NodeExistsError(path)
        owner = session_id if mode.is_ephemeral else None
        parent.children[name] = _ZNode(data=data, owner_session=owner)
        if mode.is_ephemeral:
            self._ephemerals[session_id].add(path)
        self._fire(self._exists_watches, path, EventType.CREATED)
        parent_path = path.rsplit("/", 1)[0] or "/"
        self._fire(self._child_watches, parent_path, EventType.CHILDREN_CHANGED)
        return path

    def _delete(self, path: str, expected_version: int = -1,
                force: bool = False) -> None:
        parent, name = self._lookup_parent(path)
        if name not in parent.children:
            raise NoNodeError(path)
        node = parent.children[name]
        if node.children and not force:
            raise NotEmptyError(path)
        if expected_version not in (-1, node.version):
            raise BadVersionError(f"{path}: expected {expected_version}, "
                                  f"have {node.version}")
        if node.owner_session is not None:
            self._ephemerals.get(node.owner_session, set()).discard(path)
        del parent.children[name]
        self._fire(self._data_watches, path, EventType.DELETED)
        self._fire(self._exists_watches, path, EventType.DELETED)
        parent_path = path.rsplit("/", 1)[0] or "/"
        self._fire(self._child_watches, parent_path, EventType.CHILDREN_CHANGED)

    def _set(self, path: str, data: bytes, expected_version: int = -1) -> int:
        node = self._lookup(path)
        if expected_version not in (-1, node.version):
            raise BadVersionError(f"{path}: expected {expected_version}, "
                                  f"have {node.version}")
        node.data = data
        node.version += 1
        self._fire(self._data_watches, path, EventType.DATA_CHANGED)
        return node.version

    # -- watches -----------------------------------------------------------

    def _fire(self, table: dict[str, list[Watcher]], path: str,
              event_type: EventType) -> None:
        watchers = table.pop(path, [])
        event = WatchedEvent(event_type, path)
        for watcher in watchers:
            watcher(event)

    def _register(self, table: dict[str, list[Watcher]], path: str,
                  watcher: Watcher) -> None:
        table.setdefault(path, []).append(watcher)


class ZooKeeperSession:
    """A client handle; all reads can attach one-shot watches."""

    def __init__(self, server: ZooKeeperServer, session_id: int):
        self._server = server
        self.session_id = session_id

    def _check(self) -> None:
        if not self._server.session_alive(self.session_id):
            raise SessionExpiredError(f"session {self.session_id} expired")

    def create(self, path: str, data: bytes = b"",
               mode: CreateMode = CreateMode.PERSISTENT) -> str:
        """Create a znode; returns the actual path (sequential suffix)."""
        self._check()
        return self._server._create(path, data, mode, self.session_id)

    def ensure_path(self, path: str) -> None:
        """Create missing persistent ancestors, like Kazoo's ensure_path."""
        self._check()
        parts = _validate_path(path)
        current = ""
        for part in parts:
            current += "/" + part
            try:
                self._server._create(current, b"", CreateMode.PERSISTENT,
                                     self.session_id)
            except NodeExistsError:
                pass

    def get(self, path: str, watch: Watcher | None = None) -> tuple[bytes, int]:
        self._check()
        node = self._server._lookup(path)
        if watch is not None:
            self._server._register(self._server._data_watches, path, watch)
        return node.data, node.version

    def set(self, path: str, data: bytes, expected_version: int = -1) -> int:
        self._check()
        return self._server._set(path, data, expected_version)

    def exists(self, path: str, watch: Watcher | None = None) -> bool:
        self._check()
        try:
            self._server._lookup(path)
            found = True
        except NoNodeError:
            found = False
        if watch is not None:
            table = (self._server._data_watches if found
                     else self._server._exists_watches)
            self._server._register(table, path, watch)
        return found

    def get_children(self, path: str, watch: Watcher | None = None) -> list[str]:
        self._check()
        node = self._server._lookup(path)
        if watch is not None:
            self._server._register(self._server._child_watches, path, watch)
        return sorted(node.children)

    def delete(self, path: str, expected_version: int = -1,
               recursive: bool = False) -> None:
        self._check()
        if recursive:
            for child in self.get_children(path):
                self.delete(f"{path}/{child}" if path != "/" else f"/{child}",
                            recursive=True)
        self._server._delete(path, expected_version)

    def close(self) -> None:
        self._server.expire_session(self.session_id)
