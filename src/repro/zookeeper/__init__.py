"""In-process Zookeeper-style coordination service.

Kafka "employ[s] a highly available consensus service Zookeeper" for
broker/consumer membership, rebalance triggers, and offset tracking
(§V.C); Helix "uses Zookeeper as a distributed store to maintain the
state of the cluster and a notification system" (§IV.B).  This package
provides those semantics: a znode tree with persistent, ephemeral and
sequential nodes, one-shot watches, and sessions whose expiry removes
their ephemerals.
"""

from repro.zookeeper.server import (
    CreateMode,
    EventType,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    WatchedEvent,
    ZooKeeperServer,
    ZooKeeperSession,
)

__all__ = [
    "CreateMode",
    "EventType",
    "NodeExistsError",
    "NoNodeError",
    "NotEmptyError",
    "WatchedEvent",
    "ZooKeeperServer",
    "ZooKeeperSession",
]
