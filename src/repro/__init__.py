"""repro — a from-scratch reproduction of LinkedIn's data infrastructure.

This package implements the four systems described in *Data
Infrastructure at LinkedIn* (ICDE 2012) plus every substrate they rely
on, entirely in Python:

* :mod:`repro.voldemort` — Dynamo-style key-value store.
* :mod:`repro.databus`   — change-data-capture pipeline.
* :mod:`repro.espresso`  — timeline-consistent document store.
* :mod:`repro.kafka`     — log-structured pub/sub messaging.

Substrates: :mod:`repro.zookeeper` (coordination), :mod:`repro.helix`
(cluster management), :mod:`repro.hadoop` (mini batch layer),
:mod:`repro.sqlstore` (MySQL-style store + binlog), :mod:`repro.simnet`
(deterministic network simulation), :mod:`repro.common` (clocks,
hashing, vector clocks, Avro-style serialization, metrics).
"""

__version__ = "1.0.0"
