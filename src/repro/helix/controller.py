"""The Helix controller: converge CURRENTSTATE toward BESTPOSSIBLESTATE.

Each :meth:`HelixController.run_pipeline` call is one controller
iteration, mirroring the paper's description (§IV.B): observe liveness
and current states, compute the best possible state given live nodes,
emit the transition tasks that move the cluster one legal hop closer,
and apply them.  Repeated calls converge; with all nodes live the
fixpoint *is* the IDEALSTATE.

Safety property enforced structurally: a partition never has two
masters.  When moving mastership the old master is demoted in the same
pipeline pass *before* any promotion is issued, and a promotion is only
issued to a replica already in SLAVE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, NonConvergenceError
from repro.helix.idealstate import IdealState, rebalance_ideal_state
from repro.helix.participant import Participant
from repro.helix.statemodel import Transition
from repro.zookeeper import ZooKeeperServer


@dataclass
class ExternalView:
    """The converged routing picture spectators consume (§IV.B
    'Service discovery'): resource -> partition -> {instance: state}."""

    resource: str
    assignments: dict[int, dict[str, str]] = field(default_factory=dict)

    def master_of(self, partition: int) -> str | None:
        for instance, state in self.assignments.get(partition, {}).items():
            if state == "MASTER":
                return instance
        return None

    def instances_in_state(self, partition: int, state: str) -> list[str]:
        return sorted(i for i, s in self.assignments.get(partition, {}).items()
                      if s == state)


class HelixController:
    """Single-leader controller for one cluster."""

    def __init__(self, cluster: str, zookeeper: ZooKeeperServer):
        self.cluster = cluster
        self._zookeeper = zookeeper
        self._session = zookeeper.connect()
        self._session.ensure_path(f"/{cluster}/liveinstances")
        self._ideal_states: dict[str, IdealState] = {}
        self._participants: dict[str, Participant] = {}
        self.pipeline_runs = 0
        self.transitions_issued: list[Transition] = []

    # -- registration --------------------------------------------------------

    def add_resource(self, ideal_state: IdealState) -> None:
        if ideal_state.resource in self._ideal_states:
            raise ConfigurationError(f"resource {ideal_state.resource} exists")
        self._ideal_states[ideal_state.resource] = ideal_state

    def register_participant(self, participant: Participant) -> None:
        self._participants[participant.instance_name] = participant

    def ideal_state(self, resource: str) -> IdealState:
        return self._ideal_states[resource]

    def rebalance_resource(self, resource: str, instances: list[str]) -> None:
        """Recompute IDEALSTATE over a new membership (expansion)."""
        self._ideal_states[resource] = rebalance_ideal_state(
            self._ideal_states[resource], instances)

    # -- observation ----------------------------------------------------------

    def live_instances(self) -> set[str]:
        path = f"/{self.cluster}/liveinstances"
        return set(self._session.get_children(path))

    def current_state(self, resource: str) -> dict[int, dict[str, str]]:
        """CURRENTSTATE: what live participants report right now."""
        live = self.live_instances()
        out: dict[int, dict[str, str]] = {}
        for name, participant in self._participants.items():
            if name not in live:
                continue
            for partition, state in participant.current_states.get(
                    resource, {}).items():
                out.setdefault(partition, {})[name] = state
        return out

    def best_possible_state(self, resource: str) -> dict[int, dict[str, str]]:
        """BESTPOSSIBLESTATE: ideal placement restricted to live nodes.

        For each partition: the first live instance in the preference
        list should be MASTER, the remaining live listed instances
        SLAVEs.  With every node live this equals the IDEALSTATE.
        """
        ideal = self._ideal_states[resource]
        live = self.live_instances()
        target: dict[int, dict[str, str]] = {}
        for partition in range(ideal.num_partitions):
            plist = [i for i in ideal.preference_list(partition) if i in live]
            states: dict[str, str] = {}
            if plist:
                top_state = ("MASTER" if "MASTER" in ideal.state_model.states
                             else "ONLINE")
                states[plist[0]] = top_state
                secondary = ("SLAVE" if "SLAVE" in ideal.state_model.states
                             else top_state)
                for follower in plist[1:]:
                    states[follower] = secondary
            target[partition] = states
        return target

    # -- convergence ------------------------------------------------------------

    def compute_transitions(self, resource: str) -> list[Transition]:
        """Diff current vs best-possible; emit one legal hop per replica.

        Ordering rules that keep the single-master invariant:
        1. demotions / tear-downs (MASTER->SLAVE, SLAVE->OFFLINE, drops);
        2. bring-ups (OFFLINE->SLAVE);
        3. promotions (SLAVE->MASTER), only when no other replica is
           currently MASTER for that partition.
        """
        ideal = self._ideal_states[resource]
        model = ideal.state_model
        live = self.live_instances()
        current = self.current_state(resource)
        target = self.best_possible_state(resource)

        demotions: list[Transition] = []
        bring_ups: list[Transition] = []
        promotions: list[Transition] = []

        # sorted so transition messages fan out in a defined order —
        # set iteration order would leak the hash seed into the schedule
        partitions = set(current) | set(target)
        for partition in sorted(partitions):
            have = current.get(partition, {})
            want = target.get(partition, {})
            for instance, state in have.items():
                desired = want.get(instance, model.initial_state)
                if state == desired:
                    continue
                hop = model.next_step(state, desired)
                if hop is None:
                    continue
                transition = Transition(instance, resource, partition, state, hop)
                if _rank(state) > _rank(hop):
                    demotions.append(transition)
                elif hop == "MASTER":
                    promotions.append(transition)
                else:
                    bring_ups.append(transition)
            for instance, desired in want.items():
                if instance in have or instance not in live:
                    continue
                hop = model.next_step(model.initial_state, desired)
                if hop is None:
                    continue
                transition = Transition(instance, resource, partition,
                                        model.initial_state, hop)
                if hop == "MASTER":
                    promotions.append(transition)
                else:
                    bring_ups.append(transition)

        # suppress promotions while another master still holds the partition
        masters_now: dict[int, set[str]] = {}
        for partition, states in current.items():
            masters_now[partition] = {i for i, s in states.items() if s == "MASTER"}
        demoted = {(t.partition, t.instance) for t in demotions
                   if t.from_state == "MASTER"}
        safe_promotions = []
        for transition in promotions:
            holders = masters_now.get(transition.partition, set())
            blockers = {h for h in holders if h != transition.instance
                        and (transition.partition, h) not in demoted}
            if not blockers:
                safe_promotions.append(transition)
        return demotions + bring_ups + safe_promotions

    def run_pipeline(self) -> list[Transition]:
        """One controller iteration over every resource; returns the
        transitions issued (empty list means converged)."""
        self.pipeline_runs += 1
        issued: list[Transition] = []
        live = self.live_instances()
        for resource, ideal in self._ideal_states.items():
            for transition in self.compute_transitions(resource):
                participant = self._participants.get(transition.instance)
                if participant is None or transition.instance not in live:
                    continue
                participant.execute(transition, ideal.state_model)
                issued.append(transition)
        self.transitions_issued.extend(issued)
        return issued

    def converge(self, max_iterations: int = 20) -> int:
        """Run pipelines until no transitions are issued; returns the
        number of iterations taken."""
        for iteration in range(1, max_iterations + 1):
            if not self.run_pipeline():
                return iteration
        raise NonConvergenceError(
            f"did not converge in {max_iterations} pipeline runs")

    def external_view(self, resource: str) -> ExternalView:
        view = ExternalView(resource)
        view.assignments = self.current_state(resource)
        return view


_STATE_RANKS = {"DROPPED": -1, "OFFLINE": 0, "SLAVE": 1, "ONLINE": 1, "MASTER": 2}


def _rank(state: str) -> int:
    return _STATE_RANKS.get(state, 0)
