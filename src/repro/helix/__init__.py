"""Helix-style generic cluster manager (§IV.B "Cluster Manager").

The paper models Helix as a state machine over three cluster states:

* IDEALSTATE — the assignment when every configured node is up;
* CURRENTSTATE — what the nodes actually report;
* BESTPOSSIBLESTATE — the closest achievable state given live nodes.

The controller computes BESTPOSSIBLESTATE and emits transition tasks
(e.g. OFFLINE->SLAVE, SLAVE->MASTER) to participants until the current
state converges.  Espresso storage nodes and Databus relays are managed
as Helix participants; Kafka-consumer-style components can observe the
external view for routing.
"""

from repro.helix.statemodel import (
    MASTER_SLAVE,
    ONLINE_OFFLINE,
    StateModelDef,
    Transition,
)
from repro.helix.idealstate import IdealState, compute_ideal_state
from repro.helix.controller import HelixController
from repro.helix.participant import Participant

__all__ = [
    "MASTER_SLAVE",
    "ONLINE_OFFLINE",
    "StateModelDef",
    "Transition",
    "IdealState",
    "compute_ideal_state",
    "HelixController",
    "Participant",
]
