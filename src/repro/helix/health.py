"""Cluster health monitoring (§IV.B: "Health check: It monitors cluster
health and provides alerts on SLA violations").

The monitor evaluates the controller's current state against declared
SLAs and emits typed alerts:

* ``NO_MASTER`` — a partition has no live master (writes unavailable);
* ``UNDER_REPLICATED`` — a partition has fewer live replicas than the
  resource's replication factor;
* ``INSTANCES_DOWN`` — live instances fell below the configured
  fraction of the registered fleet;
* ``MASTER_IMBALANCE`` — the master spread exceeds the balance SLA
  (one node carrying disproportionate write load).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.common.errors import ConfigurationError
from repro.helix.controller import HelixController


class AlertCode(Enum):
    NO_MASTER = "no-master"
    UNDER_REPLICATED = "under-replicated"
    INSTANCES_DOWN = "instances-down"
    MASTER_IMBALANCE = "master-imbalance"


class Severity(Enum):
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Alert:
    code: AlertCode
    severity: Severity
    resource: str | None
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code.value}: {self.subject} — {self.detail}"


@dataclass(frozen=True)
class HealthSLA:
    """The thresholds a deployment declares."""

    min_live_instance_fraction: float = 0.5
    max_master_imbalance: int = 2  # max-min masters per live node

    def __post_init__(self):
        if not 0.0 < self.min_live_instance_fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        if self.max_master_imbalance < 0:
            raise ConfigurationError("imbalance bound must be >= 0")


class HealthMonitor:
    """Evaluates SLAs against the controller's view of the cluster."""

    def __init__(self, controller: HelixController,
                 sla: HealthSLA | None = None):
        self.controller = controller
        self.sla = sla or HealthSLA()
        self.evaluations = 0
        self.alert_history: list[Alert] = []

    def evaluate(self) -> list[Alert]:
        """One health sweep; returns (and records) current alerts."""
        self.evaluations += 1
        alerts: list[Alert] = []
        live = self.controller.live_instances()
        registered = set(self.controller._participants)
        if registered:
            fraction = len(live) / len(registered)
            if fraction < self.sla.min_live_instance_fraction:
                alerts.append(Alert(
                    AlertCode.INSTANCES_DOWN, Severity.CRITICAL, None,
                    f"{len(live)}/{len(registered)} instances live",
                    f"below SLA fraction {self.sla.min_live_instance_fraction}"))
        for resource, ideal in self.controller._ideal_states.items():
            alerts.extend(self._evaluate_resource(resource, ideal, live))
        self.alert_history.extend(alerts)
        return alerts

    def _evaluate_resource(self, resource: str, ideal, live) -> list[Alert]:
        alerts: list[Alert] = []
        current = self.controller.current_state(resource)
        master_counts: dict[str, int] = {}
        for partition in range(ideal.num_partitions):
            states = current.get(partition, {})
            masters = [i for i, s in states.items() if s == "MASTER"]
            replicas = [i for i, s in states.items()
                        if s in ("MASTER", "SLAVE", "ONLINE")]
            if not masters and "MASTER" in ideal.state_model.states:
                alerts.append(Alert(
                    AlertCode.NO_MASTER, Severity.CRITICAL, resource,
                    f"partition {partition}", "no live master; writes halted"))
            for master in masters:
                master_counts[master] = master_counts.get(master, 0) + 1
            if len(replicas) < ideal.replicas:
                alerts.append(Alert(
                    AlertCode.UNDER_REPLICATED, Severity.WARNING, resource,
                    f"partition {partition}",
                    f"{len(replicas)}/{ideal.replicas} replicas live"))
        if master_counts and len(live) > 1:
            spread = max(master_counts.values()) - min(
                master_counts.get(i, 0) for i in live)
            if spread > self.sla.max_master_imbalance:
                alerts.append(Alert(
                    AlertCode.MASTER_IMBALANCE, Severity.WARNING, resource,
                    "master distribution",
                    f"spread {spread} exceeds {self.sla.max_master_imbalance}"))
        return alerts

    def is_healthy(self) -> bool:
        return not self.evaluate()

    def critical_alerts(self) -> list[Alert]:
        return [a for a in self.evaluate() if a.severity is Severity.CRITICAL]
