"""IDEALSTATE computation: replica placement when every node is up.

The placement is the classic Helix AUTO mode: for partition ``p`` the
preference list is the instance list rotated by ``p``; the first entry
is the MASTER (or top state), the next ``replicas - 1`` entries are
SLAVEs.  Rotation spreads masters evenly and ensures each node masters
some partitions and slaves others, matching Figure IV.3's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.helix.statemodel import StateModelDef


@dataclass(frozen=True)
class IdealState:
    """Immutable placement: resource -> partition -> preference list."""

    resource: str
    num_partitions: int
    replicas: int
    state_model: StateModelDef
    preference_lists: tuple[tuple[str, ...], ...]

    def preference_list(self, partition: int) -> tuple[str, ...]:
        return self.preference_lists[partition]

    def ideal_master(self, partition: int) -> str:
        return self.preference_lists[partition][0]

    def instances(self) -> set[str]:
        out: set[str] = set()
        for plist in self.preference_lists:
            out.update(plist)
        return out

    def master_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for plist in self.preference_lists:
            counts[plist[0]] = counts.get(plist[0], 0) + 1
        return counts


def compute_ideal_state(resource: str, instances: list[str],
                        num_partitions: int, replicas: int,
                        state_model: StateModelDef) -> IdealState:
    """Rotate-and-slice placement over a stable instance ordering."""
    if not instances:
        raise ConfigurationError("need at least one instance")
    if replicas > len(instances):
        raise ConfigurationError(
            f"replicas={replicas} exceeds instance count {len(instances)}")
    if num_partitions <= 0 or replicas <= 0:
        raise ConfigurationError("num_partitions and replicas must be positive")
    ordered = sorted(instances)
    lists = []
    for partition in range(num_partitions):
        rotated = [ordered[(partition + i) % len(ordered)]
                   for i in range(len(ordered))]
        lists.append(tuple(rotated[:replicas]))
    return IdealState(resource, num_partitions, replicas, state_model,
                      tuple(lists))


def compute_weighted_ideal_state(resource: str, capacities: dict[str, float],
                                 num_partitions: int, replicas: int,
                                 state_model: StateModelDef) -> IdealState:
    """Capacity-aware placement (§IV.B: "smart allocation of resources
    to servers (nodes) based on server capacity").

    Masterships are allocated proportionally to declared capacity by
    largest remainder, then interleaved so no capacity class clumps;
    slaves rotate over the remaining instances as usual.
    """
    if not capacities:
        raise ConfigurationError("need at least one instance")
    if any(c <= 0 for c in capacities.values()):
        raise ConfigurationError("capacities must be positive")
    if replicas > len(capacities):
        raise ConfigurationError("replicas exceed instance count")
    ordered = sorted(capacities)
    total = sum(capacities.values())
    # largest-remainder apportionment of masterships
    exact = {i: num_partitions * capacities[i] / total for i in ordered}
    quota = {i: int(exact[i]) for i in ordered}
    leftover = num_partitions - sum(quota.values())
    for instance in sorted(ordered, key=lambda i: exact[i] - quota[i],
                           reverse=True)[:leftover]:
        quota[instance] += 1
    # interleave masters to avoid long runs of one node
    masters: list[str] = []
    remaining = dict(quota)
    while len(masters) < num_partitions:
        progressed = False
        for instance in sorted(remaining, key=lambda i: remaining[i] / max(quota[i], 1),
                               reverse=True):
            if remaining[instance] > 0:
                masters.append(instance)
                remaining[instance] -= 1
                progressed = True
                if len(masters) == num_partitions:
                    break
        if not progressed:
            break
    lists = []
    for partition, master in enumerate(masters):
        others = [i for i in ordered if i != master]
        rotation = [others[(partition + k) % len(others)]
                    for k in range(replicas - 1)]
        lists.append(tuple([master] + rotation))
    return IdealState(resource, num_partitions, replicas, state_model,
                      tuple(lists))


def rebalance_ideal_state(current: IdealState,
                          instances: list[str]) -> IdealState:
    """Recompute placement for a changed instance set (expansion §IV.B).

    A fresh rotation over the new membership; the controller then
    diffs this against current state and emits the migration
    transitions (snapshot-bootstrap + catch-up are the storage layer's
    job — see :mod:`repro.espresso.rebalance`).
    """
    return compute_ideal_state(current.resource, instances,
                               current.num_partitions, current.replicas,
                               current.state_model)
