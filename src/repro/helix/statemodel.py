"""State model definitions and legal-transition computation.

A state model declares the states a replica may be in, which direct
transitions are legal, and per-partition occupancy constraints (the
crucial one: at most one MASTER per partition at any time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Transition:
    """A single replica state change requested of a participant."""

    instance: str
    resource: str
    partition: int
    from_state: str
    to_state: str

    def __str__(self) -> str:
        return (f"{self.instance}: {self.resource}[{self.partition}] "
                f"{self.from_state}->{self.to_state}")


@dataclass(frozen=True)
class StateModelDef:
    """States, legal edges, and occupancy bounds for one replica model."""

    name: str
    initial_state: str
    states: tuple[str, ...]
    # legal direct transitions, e.g. ("OFFLINE", "SLAVE")
    transitions: tuple[tuple[str, str], ...]
    # max replicas per partition allowed in a state; -1 = unbounded,
    # "R" = replica count (resolved by the controller)
    state_counts: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.initial_state not in self.states:
            raise ConfigurationError("initial state must be a declared state")
        for src, dst in self.transitions:
            if src not in self.states or dst not in self.states:
                raise ConfigurationError(f"transition {src}->{dst} uses unknown state")

    def is_legal(self, from_state: str, to_state: str) -> bool:
        return (from_state, to_state) in self.transitions

    def next_step(self, from_state: str, to_state: str) -> str | None:
        """First hop on the shortest legal path ``from_state -> to_state``.

        Helix never jumps states: promoting OFFLINE to MASTER takes two
        tasks (OFFLINE->SLAVE, then SLAVE->MASTER).  Returns ``None``
        when the target is unreachable or already reached.
        """
        if from_state == to_state:
            return None
        # BFS over the legal-transition graph
        frontier = [(from_state, None)]
        seen = {from_state}
        parents: dict[str, str] = {}
        while frontier:
            state, _ = frontier.pop(0)
            for src, dst in self.transitions:
                if src != state or dst in seen:
                    continue
                parents[dst] = state
                if dst == to_state:
                    # walk back to find the first hop
                    hop = dst
                    while parents.get(hop) != from_state:
                        hop = parents[hop]
                    return hop
                seen.add(dst)
                frontier.append((dst, state))
        return None

    def max_per_partition(self, state: str, replica_count: int) -> int:
        bound = self.state_counts.get(state, -1)
        if bound == "R":
            return replica_count
        if bound == -1:
            return 10 ** 9
        return int(bound)


MASTER_SLAVE = StateModelDef(
    name="MasterSlave",
    initial_state="OFFLINE",
    states=("OFFLINE", "SLAVE", "MASTER", "DROPPED"),
    transitions=(
        ("OFFLINE", "SLAVE"),
        ("SLAVE", "MASTER"),
        ("MASTER", "SLAVE"),
        ("SLAVE", "OFFLINE"),
        ("OFFLINE", "DROPPED"),
    ),
    state_counts={"MASTER": 1, "SLAVE": "R"},
)

ONLINE_OFFLINE = StateModelDef(
    name="OnlineOffline",
    initial_state="OFFLINE",
    states=("OFFLINE", "ONLINE", "DROPPED"),
    transitions=(
        ("OFFLINE", "ONLINE"),
        ("ONLINE", "OFFLINE"),
        ("OFFLINE", "DROPPED"),
    ),
    state_counts={"ONLINE": "R"},
)
