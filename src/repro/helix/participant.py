"""Helix participants: cluster members that execute state transitions.

A participant registers liveness in Zookeeper with an ephemeral znode
and exposes transition handlers.  The managed system (an Espresso
storage node, a Databus relay) subclasses or composes a participant and
reacts to callbacks — ``on_transition(partition, from_state, to_state)``
— by doing the real work (draining the relay before mastership, etc.).
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigurationError
from repro.helix.statemodel import StateModelDef, Transition
from repro.zookeeper import CreateMode, ZooKeeperServer, ZooKeeperSession

TransitionHandler = Callable[[Transition], None]


class Participant:
    """One cluster member's replica-state machine executor."""

    def __init__(self, instance_name: str, cluster: str,
                 zookeeper: ZooKeeperServer,
                 handler: TransitionHandler | None = None):
        if not instance_name:
            raise ConfigurationError("instance_name required")
        self.instance_name = instance_name
        self.cluster = cluster
        self._handler = handler
        self._session: ZooKeeperSession | None = None
        self._zookeeper = zookeeper
        # resource -> partition -> state
        self.current_states: dict[str, dict[int, str]] = {}
        self.transitions_executed: list[Transition] = []

    # -- liveness -----------------------------------------------------------

    @property
    def live_path(self) -> str:
        return f"/{self.cluster}/liveinstances/{self.instance_name}"

    def connect(self) -> None:
        """Join the cluster: ephemeral liveness znode."""
        if self.is_connected:
            return
        self._session = self._zookeeper.connect()
        self._session.ensure_path(f"/{self.cluster}/liveinstances")
        self._session.create(self.live_path, mode=CreateMode.EPHEMERAL)

    def disconnect(self) -> None:
        """Leave the cluster (process stop or crash): ephemerals vanish,
        and this node's replicas are implicitly OFFLINE."""
        if self._session is not None:
            self._session.close()
            self._session = None
        self.current_states.clear()

    @property
    def is_connected(self) -> bool:
        return (self._session is not None
                and self._zookeeper.session_alive(self._session.session_id))

    # -- state ----------------------------------------------------------------

    def state_of(self, resource: str, partition: int,
                 model: StateModelDef) -> str:
        return self.current_states.get(resource, {}).get(
            partition, model.initial_state)

    def execute(self, transition: Transition, model: StateModelDef) -> None:
        """Apply one controller-issued transition.

        Raises when the transition is illegal for the state model or
        does not match this replica's current state — the controller is
        supposed never to issue such a task.
        """
        current = self.state_of(transition.resource, transition.partition, model)
        if current != transition.from_state:
            raise ConfigurationError(
                f"{self.instance_name}: transition {transition} but replica is "
                f"in {current}")
        if not model.is_legal(transition.from_state, transition.to_state):
            raise ConfigurationError(f"illegal transition {transition}")
        if self._handler is not None:
            self._handler(transition)
        states = self.current_states.setdefault(transition.resource, {})
        if transition.to_state == "DROPPED":
            states.pop(transition.partition, None)
        else:
            states[transition.partition] = transition.to_state
        self.transitions_executed.append(transition)

    def partitions_in_state(self, resource: str, state: str) -> list[int]:
        return sorted(p for p, s in self.current_states.get(resource, {}).items()
                      if s == state)
