"""Client library: checkpoints, switchover, retries, delivery guarantees."""

import pytest

from repro.common.errors import SCNGoneError
from repro.databus import (
    BootstrapServer,
    DatabusClient,
    DatabusConsumer,
    Relay,
    capture_from_binlog,
    partition_filter,
)
from repro.databus.relay import EventBuffer

from tests.databus.conftest import insert_member, update_member


class RecordingConsumer(DatabusConsumer):
    def __init__(self, fail_windows=0):
        self.events = []
        self.windows = []
        self.snapshot_rows = []
        self._fail_windows = fail_windows

    def on_start_window(self, scn):
        if self._fail_windows > 0:
            self._fail_windows -= 1
            raise RuntimeError("transient consumer failure")

    def on_data_event(self, event):
        self.events.append(event)

    def on_end_window(self, scn):
        self.windows.append(scn)

    def on_snapshot_row(self, event):
        self.snapshot_rows.append(event)


@pytest.fixture
def pipeline(source_db, relay):
    capture = capture_from_binlog(source_db, relay)
    bootstrap = BootstrapServer()
    return source_db, relay, capture, bootstrap


def wire_bootstrap(relay, bootstrap):
    """Feed the bootstrap server everything the relay currently holds."""
    bootstrap.on_events(relay.stream_from(bootstrap.high_watermark))


def test_basic_delivery_and_checkpointing(pipeline):
    db, relay, capture, _ = pipeline
    consumer = RecordingConsumer()
    client = DatabusClient(consumer, relay)
    insert_member(db, 1)
    insert_member(db, 2)
    capture.poll()
    delivered = client.poll()
    assert delivered == 2
    assert client.checkpoint == 2
    assert [e.key for e in consumer.events] == [(1,), (2,)]
    assert consumer.windows == [1, 2]
    # nothing new: no redelivery
    assert client.poll() == 0


def test_windows_delivered_atomically(pipeline):
    db, relay, capture, _ = pipeline
    txn = db.begin()
    txn.insert("member", {"member_id": 1, "name": "a", "headline": "h"})
    txn.insert("position", {"member_id": 1, "company": "li", "title": "t"})
    txn.commit()
    capture.poll()
    consumer = RecordingConsumer()
    DatabusClient(consumer, relay).poll()
    assert len(consumer.events) == 2
    assert consumer.windows == [1]  # one end-of-window for both events


def test_consumer_failure_retried_then_succeeds(pipeline):
    db, relay, capture, _ = pipeline
    insert_member(db, 1)
    capture.poll()
    consumer = RecordingConsumer(fail_windows=2)
    client = DatabusClient(consumer, relay, max_retries=3)
    assert client.poll() == 1
    assert client.stats.consumer_retries == 2
    assert consumer.windows == [1]


def test_consumer_failure_aborts_and_redelivers(pipeline):
    db, relay, capture, _ = pipeline
    insert_member(db, 1)
    capture.poll()
    consumer = RecordingConsumer(fail_windows=10)
    client = DatabusClient(consumer, relay, max_retries=1)
    assert client.poll() == 0
    assert client.stats.windows_aborted == 1
    assert client.checkpoint == 0
    # consumer recovers; window is redelivered (at-least-once)
    consumer._fail_windows = 0
    assert client.poll() == 1
    assert consumer.windows == [1]


def test_scn_monotonic_and_gap_free(pipeline):
    db, relay, capture, _ = pipeline
    for member_id in range(20):
        insert_member(db, member_id)
    capture.poll()
    consumer = RecordingConsumer()
    DatabusClient(consumer, relay).run_to_head()
    assert consumer.windows == list(range(1, 21))


def test_switchover_to_bootstrap_delta_and_back(pipeline):
    db, relay, capture, bootstrap = pipeline
    relay._buffers["default"] = EventBuffer(max_events=5)
    consumer = RecordingConsumer()
    client = DatabusClient(consumer, relay, bootstrap)
    # client consumes the first event, then falls far behind
    insert_member(db, 0)
    capture.poll()
    wire_bootstrap(relay, bootstrap)
    client.poll()
    assert client.checkpoint == 1
    for member_id in range(1, 15):
        insert_member(db, member_id)
        capture.poll()
        wire_bootstrap(relay, bootstrap)
    # relay evicted SCN 2..9; poll must bootstrap then resume from relay
    delivered = client.run_to_head()
    assert client.stats.bootstraps == 1
    assert client.stats.delta_bootstraps == 1
    assert client.checkpoint == 15
    # every member seen exactly once despite the switchover
    seen = {e.key for e in consumer.events}
    assert seen == {(i,) for i in range(15)}


def test_new_client_bootstraps_with_snapshot(pipeline):
    db, relay, capture, bootstrap = pipeline
    relay._buffers["default"] = EventBuffer(max_events=3)
    for member_id in range(10):
        insert_member(db, member_id)
        capture.poll()
        wire_bootstrap(relay, bootstrap)
    consumer = RecordingConsumer()
    client = DatabusClient(consumer, relay, bootstrap)  # checkpoint 0, evicted
    client.run_to_head()
    assert client.stats.snapshot_bootstraps == 1
    keys = ({e.key for e in consumer.snapshot_rows}
            | {e.key for e in consumer.events})
    assert keys == {(i,) for i in range(10)}
    assert client.checkpoint == 10


def test_no_bootstrap_configured_raises(pipeline):
    db, relay, capture, _ = pipeline
    relay._buffers["default"] = EventBuffer(max_events=2)
    for member_id in range(8):
        insert_member(db, member_id)
    capture.poll()
    client = DatabusClient(RecordingConsumer(), relay)
    with pytest.raises(SCNGoneError):
        client.poll()


def test_partitioned_consumer_group_covers_stream(pipeline):
    db, relay, capture, _ = pipeline
    for member_id in range(30):
        insert_member(db, member_id)
    capture.poll()
    consumers = [RecordingConsumer() for _ in range(3)]
    clients = [DatabusClient(c, relay, event_filter=partition_filter(3, i))
               for i, c in enumerate(consumers)]
    for client in clients:
        client.run_to_head()
    all_keys = [e.key for c in consumers for e in c.events]
    assert sorted(all_keys) == sorted((i,) for i in range(30))
    # partitioning is real: no consumer saw everything
    assert all(0 < len(c.events) < 30 for c in consumers)


def test_consolidated_delta_after_lag_is_fast_playback(pipeline):
    db, relay, capture, bootstrap = pipeline
    relay._buffers["default"] = EventBuffer(max_events=4)
    insert_member(db, 1)
    capture.poll()
    wire_bootstrap(relay, bootstrap)
    consumer = RecordingConsumer()
    client = DatabusClient(consumer, relay, bootstrap)
    client.poll()
    # the same row updated many times while the client lags
    for i in range(20):
        update_member(db, 1, name=f"rev-{i}")
        capture.poll()
        wire_bootstrap(relay, bootstrap)
    client.run_to_head()
    # far fewer than 20 deliveries thanks to consolidation
    assert len(consumer.events) < 10
    assert client.checkpoint == 21
