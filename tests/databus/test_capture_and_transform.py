"""Trigger capture, relay chaining, and declarative transformations."""

import pytest

from repro.common.errors import ConfigurationError, SCNGoneError
from repro.databus import DatabusClient, Relay, capture_from_binlog
from repro.databus.capture import RelayChain, TriggerCapture
from repro.databus.relay import EventBuffer
from repro.databus.transform import (
    DeclarativeTransform,
    TransformingConsumer,
)
from repro.sqlstore import Column, SqlDatabase, TableSchema
from repro.common.clock import SimClock

MEMBER = TableSchema(
    "member",
    (Column("member_id", int), Column("headline", str), Column("industry", str)),
    primary_key=("member_id",))


@pytest.fixture
def db():
    database = SqlDatabase("src", clock=SimClock())
    database.create_table(MEMBER)
    return database


def commit_member(db, member_id, headline="engineer", industry="tech"):
    txn = db.begin()
    txn.upsert("member", {"member_id": member_id, "headline": headline,
                          "industry": industry})
    txn.commit()


class TestTriggerCapture:
    def test_commits_land_in_relay_synchronously(self, db):
        relay = Relay()
        capture = TriggerCapture(db, relay)
        commit_member(db, 1)
        assert len(relay.stream_from(0)) == 1  # no poll needed
        commit_member(db, 2)
        assert len(relay.stream_from(0)) == 2
        assert capture.transactions_captured == 2

    def test_detach_stops_capture(self, db):
        relay = Relay()
        capture = TriggerCapture(db, relay)
        commit_member(db, 1)
        capture.detach()
        commit_member(db, 2)
        assert len(relay.stream_from(0)) == 1

    def test_trigger_and_log_capture_agree(self, db):
        trigger_relay = Relay("trigger")
        TriggerCapture(db, trigger_relay)
        log_relay = Relay("log")
        puller = capture_from_binlog(db, log_relay)
        for member_id in range(5):
            commit_member(db, member_id)
        puller.poll()
        trigger_events = trigger_relay.stream_from(0)
        log_events = log_relay.stream_from(0)
        assert [(e.scn, e.key) for e in trigger_events] == \
            [(e.scn, e.key) for e in log_events]
        assert [e.payload for e in trigger_events] == \
            [e.payload for e in log_events]


class TestRelayChain:
    def test_chain_serves_same_windows(self, db):
        upstream = Relay("up")
        capture = capture_from_binlog(db, upstream)
        downstream = Relay("down")
        chain = RelayChain(upstream, downstream)
        for member_id in range(6):
            commit_member(db, member_id)
        capture.poll()
        assert chain.poll() == 6
        up_events = upstream.stream_from(0)
        down_events = downstream.stream_from(0)
        assert [(e.scn, e.key, e.payload) for e in up_events] == \
            [(e.scn, e.key, e.payload) for e in down_events]

    def test_chain_poll_is_incremental(self, db):
        upstream = Relay("up")
        capture = capture_from_binlog(db, upstream)
        chain = RelayChain(upstream, Relay("down"))
        commit_member(db, 1)
        capture.poll()
        assert chain.poll() == 1
        assert chain.poll() == 0
        commit_member(db, 2)
        capture.poll()
        assert chain.poll() == 1

    def test_self_chain_rejected(self):
        relay = Relay()
        with pytest.raises(ConfigurationError):
            RelayChain(relay, relay)

    def test_clients_can_consume_from_downstream(self, db):
        upstream = Relay("up")
        capture = capture_from_binlog(db, upstream)
        downstream = Relay("down")
        chain = RelayChain(upstream, downstream)
        for member_id in range(4):
            commit_member(db, member_id)
        capture.poll()
        chain.poll()
        transform = DeclarativeTransform.from_spec({"project": ["member_id"]})
        consumer = TransformingConsumer(downstream, transform)
        DatabusClient(consumer, downstream).run_to_head()
        assert [r.row for r in consumer.rows] == [{"member_id": i}
                                                  for i in range(4)]

    def test_lagging_chain_hits_scn_gone(self, db):
        upstream = Relay("up")
        upstream._buffers["default"] = EventBuffer(max_events=2)
        capture = capture_from_binlog(db, upstream)
        chain = RelayChain(upstream, Relay("down"))
        for member_id in range(8):
            commit_member(db, member_id)
        capture.poll()
        with pytest.raises(SCNGoneError):
            chain.poll()

    def test_fanout_on_chain_never_touches_upstream_after_copy(self, db):
        upstream = Relay("up")
        capture = capture_from_binlog(db, upstream)
        downstream = Relay("down")
        chain = RelayChain(upstream, downstream)
        commit_member(db, 1)
        capture.poll()
        chain.poll()
        served_before = upstream.requests_served
        for _ in range(50):
            downstream.stream_from(0)
        assert upstream.requests_served == served_before


class TestDeclarativeTransform:
    def run(self, db, spec):
        relay = Relay()
        capture = capture_from_binlog(db, relay)
        consumer = TransformingConsumer(
            relay, DeclarativeTransform.from_spec(spec))
        commit_member(db, 1, headline="Kafka engineer", industry="tech")
        commit_member(db, 2, headline="Recruiter", industry="hr")
        commit_member(db, 3, headline="Espresso engineer", industry="tech")
        capture.poll()
        DatabusClient(consumer, relay).run_to_head()
        return consumer

    def test_projection(self, db):
        consumer = self.run(db, {"project": ["member_id"]})
        assert [r.row for r in consumer.rows] == [
            {"member_id": 1}, {"member_id": 2}, {"member_id": 3}]

    def test_where_filter(self, db):
        consumer = self.run(db, {"where": ["industry", "==", "tech"],
                                 "project": ["member_id"]})
        assert [r.row["member_id"] for r in consumer.rows] == [1, 3]
        assert consumer.events_seen == 3
        assert consumer.rows_delivered == 2

    def test_contains_predicate(self, db):
        consumer = self.run(db, {"where": ["headline", "contains", "engineer"],
                                 "project": ["member_id"]})
        assert [r.row["member_id"] for r in consumer.rows] == [1, 3]

    def test_rename_and_compute(self, db):
        consumer = self.run(db, {
            "project": ["member_id", "headline"],
            "rename": {"headline": "title"},
            "compute": {"shard": ["member_id", "%", 2]},
        })
        first = consumer.rows[0].row
        assert set(first) == {"member_id", "title", "shard"}
        assert first["shard"] == 1

    def test_source_scoping(self, db):
        consumer = self.run(db, {"source": "position",
                                 "project": ["member_id"]})
        assert consumer.rows == []

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            DeclarativeTransform.from_spec({"bogus": 1})
        with pytest.raises(ConfigurationError):
            DeclarativeTransform.from_spec({"where": ["f", "~=", 1]})
        with pytest.raises(ConfigurationError):
            DeclarativeTransform.from_spec({"compute": {"x": ["f", "^", 2]}})

    def test_compute_missing_field_raises(self, db):
        relay = Relay()
        capture = capture_from_binlog(db, relay)
        consumer = TransformingConsumer(relay, DeclarativeTransform.from_spec(
            {"compute": {"x": ["ghost", "+", 1]}}))
        commit_member(db, 1)
        capture.poll()
        client = DatabusClient(consumer, relay, max_retries=0)
        assert client.poll() == 0  # window aborted
        assert client.stats.windows_aborted == 1

    def test_callback_delivery(self, db):
        relay = Relay()
        capture = capture_from_binlog(db, relay)
        seen = []
        consumer = TransformingConsumer(
            relay, DeclarativeTransform.from_spec({"project": ["member_id"]}),
            on_row=lambda r: seen.append(r.row["member_id"]))
        commit_member(db, 7)
        capture.poll()
        DatabusClient(consumer, relay).run_to_head()
        assert seen == [7]
