"""Relay admission control and consumer backpressure: catch-up
consumers classify themselves as bulk, shed to the bootstrap server,
and never starve tailing consumers."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError, ServerOverloadedError
from repro.common.overload import (
    PRIORITY_BULK,
    PRIORITY_LIVE,
    AdmissionController,
)
from repro.databus import BootstrapServer, DatabusClient, DatabusConsumer, Relay

from tests.databus.conftest import insert_member


class CountingConsumer(DatabusConsumer):
    def __init__(self):
        self.events = []
        self.snapshot_rows = []

    def on_data_event(self, event):
        self.events.append(event)

    def on_snapshot_row(self, event):
        self.snapshot_rows.append(event)


def build_pipeline(source_db, clock, rate=10.0, burst=10.0, events=8):
    relay = Relay("relay-1", admission=AdmissionController(
        clock, rate=rate, burst=burst))
    from repro.databus import capture_from_binlog
    capture = capture_from_binlog(source_db, relay)
    for member in range(1, events + 1):
        insert_member(source_db, member)
    capture.poll()
    bootstrap = BootstrapServer()
    bootstrap.on_events(relay.stream_from(bootstrap.high_watermark))
    return relay, bootstrap


def drain(admission, tokens_left=0.0):
    while admission.bucket.available > tokens_left:
        assert admission.try_admit(PRIORITY_LIVE)


def test_relay_sheds_bulk_before_live(source_db):
    clock = SimClock()
    relay, _ = build_pipeline(source_db, clock)
    # 2 tokens left: below the bulk floor (0.4 * 10 = 4)
    drain(relay.admission, tokens_left=2.0)
    with pytest.raises(ServerOverloadedError):
        relay.stream_from(0, priority=PRIORITY_BULK)
    assert relay.stream_from(0, priority=PRIORITY_LIVE)


def test_client_classifies_polls_by_lag(source_db):
    clock = SimClock()
    relay, _ = build_pipeline(source_db, clock, events=8)
    consumer = CountingConsumer()
    client = DatabusClient(consumer, relay, clock=clock, bulk_lag_scns=3)
    assert client._poll_priority() == PRIORITY_BULK   # 8 SCNs behind
    client.poll()
    assert client._poll_priority() == PRIORITY_LIVE   # caught up


def test_bulk_lag_validation(source_db):
    relay = Relay()
    with pytest.raises(ConfigurationError):
        DatabusClient(CountingConsumer(), relay, bulk_lag_scns=0)


def test_tailing_client_backs_off_on_shed_without_tight_retry(source_db):
    clock = SimClock()
    relay, _ = build_pipeline(source_db, clock, events=2)
    consumer = CountingConsumer()
    client = DatabusClient(consumer, relay, clock=clock, bulk_lag_scns=100)
    drain(relay.admission)     # even live-class polls shed now
    requests_before = relay.requests_served
    before = clock.now()
    assert client.poll() == 0
    assert client.stats.polls_shed == 1
    assert clock.now() > before             # slept the Retry-After hint
    assert relay.requests_served == requests_before  # no hammering
    # the backoff let the bucket refill: the next poll delivers
    assert client.poll() > 0
    assert len(consumer.events) == 2


def test_lagging_client_takes_catchup_to_bootstrap(source_db):
    clock = SimClock()
    relay, bootstrap = build_pipeline(source_db, clock, events=8)
    consumer = CountingConsumer()
    client = DatabusClient(consumer, relay, bootstrap=bootstrap,
                           clock=clock, bulk_lag_scns=3)
    # 2 tokens left: the client's bulk-class poll sheds, but instead of
    # sleeping it catches up from the bootstrap server
    drain(relay.admission, tokens_left=2.0)
    delivered = client.poll()
    assert delivered > 0
    assert client.stats.polls_shed == 1
    assert client.stats.bootstraps == 1   # catch-up went to bootstrap
    # a tailing (live-class) consumer was never starved meanwhile
    tailing = DatabusClient(CountingConsumer(), relay, clock=clock,
                            checkpoint=relay.newest_scn() - 1)
    assert tailing.poll() == 1
