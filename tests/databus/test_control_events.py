"""Control (watermark) events through the Databus pipeline: capture,
filters, bootstrap log compaction, delta/replay, and durable recovery.

Regression suite for the migration's one hard dependency on Databus:
a consumer — however it is served, relay or bootstrap — must see every
watermark, or it cannot bracket a DBLog chunk against the live stream.
"""

import pytest

from repro.databus import (
    BootstrapServer,
    DatabusClient,
    DatabusConsumer,
    Relay,
    capture_from_binlog,
    partition_filter,
    source_filter,
    watermark_label,
)
from repro.common.clock import SimClock
from repro.simnet.disk import SimDisk
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Column, TableSchema

SCHEMA = TableSchema("member", (Column("id", int), Column("name", str)),
                     ("id",))


def make_db(rows=3):
    db = SqlDatabase("source")
    db.create_table(SCHEMA)
    for i in range(rows):
        db.autocommit("member", {"id": i, "name": f"n{i}"})
    return db


def captured_events(db):
    relay = Relay()
    capture_from_binlog(db, relay).poll()
    return relay.stream_from(0)


class Collector(DatabusConsumer):
    def __init__(self):
        self.events = []

    def on_data_event(self, event):
        self.events.append(event)


class TestCaptureAndFilters:
    def test_watermark_flows_through_capture(self):
        db = make_db(1)
        db.write_watermark("chunk-low:member")
        events = captured_events(db)
        controls = [e for e in events if e.is_control]
        assert len(controls) == 1
        assert controls[0].scn == 2
        assert controls[0].end_of_window
        assert watermark_label(controls[0]) == "chunk-low:member"

    def test_watermark_label_rejects_data_events(self):
        db = make_db(1)
        (event,) = captured_events(db)
        with pytest.raises(ValueError):
            watermark_label(event)

    def test_source_filter_passes_control_events(self):
        db = make_db(1)
        db.write_watermark("mark")
        keep = source_filter("some_other_table")
        kept = [e for e in captured_events(db) if keep(e)]
        assert [e.is_control for e in kept] == [True]

    def test_partition_filter_passes_control_to_every_partition(self):
        db = make_db(0)
        db.write_watermark("mark")
        (control,) = captured_events(db)
        assert all(partition_filter(4, p)(control) for p in range(4))


class TestBootstrapCompaction:
    def _server_fed_with(self, db, disk=None):
        server = BootstrapServer(disk=disk)
        server.on_events(captured_events(db))
        return server

    def test_compaction_never_merges_watermarks(self):
        """Log folding keeps only the last event per row key — but every
        watermark is its own key, so all four brackets survive."""
        db = make_db(1)
        for _ in range(2):
            low = db.write_watermark("chunk-low:member")
            db.write_watermark(f"chunk-high:member:{low}")
        server = self._server_fed_with(db)
        delta, _ = server.consolidated_delta(0)
        controls = [e for e in delta if e.is_control]
        assert len(controls) == 4
        # repeated same-label lows both survive (unique (label, scn) keys)
        lows = [e for e in controls
                if watermark_label(e) == "chunk-low:member"]
        assert len(lows) == 2

    def test_row_updates_still_fold_around_watermarks(self):
        db = make_db(1)
        db.write_watermark("mark")
        db.autocommit("member", {"id": 0, "name": "v2"},
                      kind=ChangeKind.UPDATE)
        db.autocommit("member", {"id": 0, "name": "v3"},
                      kind=ChangeKind.UPDATE)
        server = self._server_fed_with(db)
        delta, _ = server.consolidated_delta(0)
        row_events = [e for e in delta if not e.is_control]
        assert len(row_events) == 1      # v2 folded away, v3 kept
        assert len([e for e in delta if e.is_control]) == 1

    def test_full_replay_preserves_stream_positions(self):
        db = make_db(2)
        db.write_watermark("mark")
        server = self._server_fed_with(db)
        replay, _ = server.full_replay(0)
        assert [e.scn for e in replay] == [1, 2, 3]
        assert replay[-1].is_control

    def test_watermarks_survive_durable_checkpoint_and_recovery(self):
        disk = SimDisk(clock=SimClock(), seed=3)
        db = make_db(1)
        db.write_watermark("chunk-low:member")
        server = self._server_fed_with(db, disk=disk.scope("bootstrap"))
        server.checkpoint()              # fold into snapshot storage
        disk.crash_node("bootstrap")
        recovered = BootstrapServer(disk=disk.scope("bootstrap"))
        delta, _ = recovered.consolidated_delta(0)
        controls = [e for e in delta if e.is_control]
        assert len(controls) == 1
        assert watermark_label(controls[0]) == "chunk-low:member"
        assert controls[0].kind is ChangeKind.WATERMARK


class TestClientDelivery:
    def test_client_delivers_watermarks_from_relay(self):
        db = make_db(2)
        db.write_watermark("mark")
        relay = Relay()
        capture_from_binlog(db, relay).poll()
        collector = Collector()
        client = DatabusClient(collector, relay)
        client.run_to_head()
        assert [e.scn for e in collector.events] == [1, 2, 3]
        assert collector.events[-1].is_control
        assert client.checkpoint == 3    # checkpointed past the watermark

    def test_client_delivers_watermarks_from_bootstrap_delta(self):
        """A lagging consumer served by the bootstrap still sees the
        brackets: eviction must not turn watermarks into gaps."""
        db = make_db(1)
        db.write_watermark("mark")
        for i in range(5, 9):
            db.autocommit("member", {"id": i, "name": f"n{i}"})
        relay = Relay(max_events_per_buffer=2)   # evicted the watermark
        capture_from_binlog(db, relay).poll()
        bootstrap = BootstrapServer()
        bootstrap.on_events(captured_events(db))  # long-term storage has all
        collector = Collector()
        client = DatabusClient(collector, relay, bootstrap=bootstrap)
        client.run_to_head()
        assert client.stats.bootstraps >= 1
        assert any(e.is_control for e in collector.events)