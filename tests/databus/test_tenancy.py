"""Multi-tenant relay quotas (§III.E future work)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.databus import Relay, capture_from_binlog
from repro.databus.tenancy import MultiTenantRelay, QuotaExceededError, TenantQuota
from repro.sqlstore import Column, SqlDatabase, TableSchema

SCHEMA = TableSchema("t", (Column("id", int), Column("v", str)),
                     primary_key=("id",))


@pytest.fixture
def setup():
    clock = SimClock()
    db = SqlDatabase("src", clock=clock)
    db.create_table(SCHEMA)
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    for i in range(50):
        txn = db.begin()
        txn.insert("t", {"id": i, "v": "x"})
        txn.commit()
    capture.poll()
    tenant_relay = MultiTenantRelay(relay, clock=clock)
    return clock, tenant_relay


def test_quota_validation():
    with pytest.raises(ConfigurationError):
        TenantQuota(0)
    with pytest.raises(ConfigurationError):
        TenantQuota(10, interval_seconds=0)


def test_unknown_and_duplicate_tenants(setup):
    _, relay = setup
    with pytest.raises(ConfigurationError):
        relay.stream_from("ghost", 0)
    relay.register_tenant("a", TenantQuota(10))
    with pytest.raises(ConfigurationError):
        relay.register_tenant("a", TenantQuota(10))


def test_poll_bounded_by_quota(setup):
    _, relay = setup
    relay.register_tenant("small", TenantQuota(10, interval_seconds=1.0))
    events = relay.stream_from("small", 0)
    assert len(events) == 10


def test_exhausted_tenant_throttled_with_retry_hint(setup):
    clock, relay = setup
    relay.register_tenant("small", TenantQuota(10, interval_seconds=1.0))
    relay.stream_from("small", 0)
    with pytest.raises(QuotaExceededError) as excinfo:
        relay.stream_from("small", 10)
    assert excinfo.value.retry_after > 0
    assert relay.usage("small")["throttled"] == 1


def test_bucket_refills_over_time(setup):
    clock, relay = setup
    relay.register_tenant("small", TenantQuota(10, interval_seconds=1.0))
    first = relay.stream_from("small", 0)
    clock.advance(0.5)  # half the interval -> ~5 tokens
    second = relay.stream_from("small", first[-1].scn)
    assert 1 <= len(second) <= 5
    clock.advance(5.0)  # fully refilled (and capped)
    third = relay.stream_from("small", second[-1].scn)
    assert len(third) == 10


def test_tenants_are_isolated(setup):
    clock, relay = setup
    relay.register_tenant("greedy", TenantQuota(10, interval_seconds=100.0))
    relay.register_tenant("other", TenantQuota(40, interval_seconds=1.0))
    relay.stream_from("greedy", 0)
    with pytest.raises(QuotaExceededError):
        relay.stream_from("greedy", 10)
    # the other tenant is unaffected by greedy's exhaustion
    events = relay.stream_from("other", 0)
    assert len(events) == 40


def test_full_stream_consumable_across_polls(setup):
    clock, relay = setup
    relay.register_tenant("steady", TenantQuota(10, interval_seconds=1.0))
    seen = 0
    checkpoint = 0
    while seen < 50:
        try:
            events = relay.stream_from("steady", checkpoint)
        except QuotaExceededError as exc:
            clock.advance(exc.retry_after + 0.01)
            continue
        if not events:
            break
        seen += len(events)
        checkpoint = events[-1].scn
    assert seen == 50
    assert relay.usage("steady")["events_served"] == 50


def test_usage_reporting(setup):
    _, relay = setup
    relay.register_tenant("a", TenantQuota(100))
    relay.stream_from("a", 0)
    usage = relay.usage("a")
    assert usage["events_served"] == 50
    assert usage["polls"] == 1
    assert relay.tenants() == ["a"]
