"""Shared Databus test fixtures: a source database wired to a relay."""

import pytest

from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.sqlstore import Column, SqlDatabase, TableSchema

MEMBER_SCHEMA = TableSchema(
    "member",
    (Column("member_id", int), Column("name", str), Column("headline", str)),
    primary_key=("member_id",),
)
POSITION_SCHEMA = TableSchema(
    "position",
    (Column("member_id", int), Column("company", str), Column("title", str)),
    primary_key=("member_id", "company"),
)


@pytest.fixture
def source_db():
    db = SqlDatabase("profiles", clock=SimClock())
    db.create_table(MEMBER_SCHEMA)
    db.create_table(POSITION_SCHEMA)
    return db


@pytest.fixture
def relay():
    return Relay("relay-1")


@pytest.fixture
def capture(source_db, relay):
    return capture_from_binlog(source_db, relay)


def insert_member(db, member_id, name="x", headline="h"):
    txn = db.begin()
    txn.insert("member", {"member_id": member_id, "name": name,
                          "headline": headline})
    return txn.commit()


def update_member(db, member_id, name="x", headline="h"):
    txn = db.begin()
    txn.update("member", {"member_id": member_id, "name": name,
                          "headline": headline})
    return txn.commit()
