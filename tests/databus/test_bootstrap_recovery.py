"""Bootstrap durability: log WAL, checkpoints, and exact-once recovery."""

import pytest

from repro.common.clock import SimClock
from repro.databus import BootstrapServer
from repro.databus.events import DatabusEvent
from repro.simnet.disk import SimDisk
from repro.sqlstore.binlog import ChangeKind


def event(scn, key=(1,), end=True, source="member", payload=b"p",
          kind=ChangeKind.UPDATE):
    return DatabusEvent(scn, source, kind, key, payload, end_of_window=end)


@pytest.fixture
def disk():
    return SimDisk(clock=SimClock(), seed=9)


def make_server(disk):
    return BootstrapServer("bootstrap-1", disk=disk.scope("bootstrap-1"))


class TestLogDurability:
    def test_acked_events_survive_crash(self, disk):
        server = make_server(disk)
        for scn in range(1, 6):
            server.on_events([event(scn, key=(scn,))])
        disk.crash_node("bootstrap-1")

        recovered = make_server(disk)
        assert recovered.recovered_events == 5
        assert recovered.high_watermark == 5
        assert recovered.snapshot_rows == 5
        delta, watermark = recovered.consolidated_delta(since_scn=0)
        assert watermark == 5
        assert {e.scn for e in delta} == {1, 2, 3, 4, 5}

    def test_event_fields_roundtrip(self, disk):
        server = make_server(disk)
        original = DatabusEvent(1, "position", ChangeKind.DELETE,
                                (7, "linkedin"), b"\x00\x01payload",
                                schema_version=3, end_of_window=True,
                                timestamp=12.5)
        server.on_events([original])
        disk.crash_node("bootstrap-1")

        recovered = make_server(disk)
        (got,) = recovered.consolidated_delta(since_scn=0)[0]
        assert got == original

    def test_open_window_preserved_not_applied(self, disk):
        server = make_server(disk)
        server.on_events([event(1, key=(1,), end=True)])
        server.on_events([event(2, key=(2,), end=False)])  # window open
        assert server.high_watermark == 1
        disk.crash_node("bootstrap-1")

        recovered = make_server(disk)
        assert recovered.log_length == 2     # the logged row is durable...
        assert recovered.high_watermark == 1  # ...but still not applied
        recovered.on_events([event(2, key=(3,), end=True)])
        assert recovered.high_watermark == 2

    def test_torn_tail_truncated(self, disk):
        server = make_server(disk)
        server.on_events([event(1, key=(1,))])
        # stage an event below the durability line, then tear it
        server._log_wal.append(b"never-fsynced-garbage")
        disk.arm_torn_write("bootstrap-1", path="bootstrap.wal", keep_bytes=4)
        disk.crash_node("bootstrap-1")

        recovered = make_server(disk)
        assert recovered.recovered_events == 1
        assert recovered.high_watermark == 1


class TestCheckpoint:
    def test_checkpoint_compacts_log(self, disk):
        server = make_server(disk)
        for scn in range(1, 11):
            server.on_events([event(scn, key=(1,))])  # one hot row
        reclaimed = server.checkpoint()
        assert reclaimed > 0

        disk.crash_node("bootstrap-1")
        recovered = make_server(disk)
        # the checkpoint replaced 10 log rows with 1 snapshot row
        assert recovered.log_length == 0
        assert recovered.snapshot_rows == 1
        assert recovered.high_watermark == 10

    def test_no_double_apply_after_checkpoint(self, disk):
        server = make_server(disk)
        server.on_events([event(1, key=(1,), payload=b"v1")])
        server.checkpoint()
        server.on_events([event(2, key=(1,), payload=b"v2")])
        disk.crash_node("bootstrap-1")

        recovered = make_server(disk)
        assert recovered.recovered_events == 1  # only the post-checkpoint row
        assert recovered.high_watermark == 2
        (got,) = recovered.consolidated_delta(since_scn=0)[0]
        assert got.payload == b"v2"

    def test_serving_continues_after_recovery(self, disk):
        server = make_server(disk)
        for scn in range(1, 4):
            server.on_events([event(scn, key=(scn,))])
        server.checkpoint()
        disk.crash_node("bootstrap-1")

        recovered = make_server(disk)
        recovered.on_events([event(4, key=(4,))])
        items = list(recovered.consistent_snapshot())
        rows = [e for tag, e in items if tag == "row"]
        assert {e.key for e in rows} == {(1,), (2,), (3,), (4,)}
        assert items[-1] == ("scn", 4)

    def test_checkpoint_without_disk_is_noop(self):
        server = BootstrapServer()
        server.on_events([event(1)])
        assert server.checkpoint() == 0
