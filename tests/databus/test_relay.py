"""Relay: capture, circular buffering, SCN-indexed serving, filters."""

import pytest

from repro.common.errors import ConfigurationError, SCNGoneError
from repro.common.serialization import decode_record
from repro.databus import Relay, partition_filter, source_filter
from repro.databus.relay import EventBuffer
from repro.databus.events import DatabusEvent
from repro.sqlstore.binlog import ChangeKind

from tests.databus.conftest import insert_member, update_member


def make_event(scn, source="member", key=(1,), end=True, payload=b"x"):
    return DatabusEvent(scn, source, ChangeKind.INSERT, key, payload,
                        end_of_window=end)


class TestEventBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            EventBuffer(max_events=0)

    def test_windows_must_be_well_formed(self):
        buffer = EventBuffer()
        with pytest.raises(ConfigurationError):
            buffer.append_window([make_event(1, end=False)])
        with pytest.raises(ConfigurationError):
            buffer.append_window([make_event(1, end=False), make_event(2)])

    def test_scn_order_enforced(self):
        buffer = EventBuffer()
        buffer.append_window([make_event(5)])
        with pytest.raises(ConfigurationError):
            buffer.append_window([make_event(5)])
        with pytest.raises(ConfigurationError):
            buffer.append_window([make_event(4)])

    def test_events_since(self):
        buffer = EventBuffer()
        for scn in (1, 2, 3):
            buffer.append_window([make_event(scn)])
        assert [e.scn for e in buffer.events_since(1)] == [2, 3]
        assert buffer.events_since(3) == []

    def test_eviction_by_event_count(self):
        buffer = EventBuffer(max_events=4)
        for scn in range(1, 8):
            buffer.append_window([make_event(scn)])
        assert buffer.oldest_scn == 4
        with pytest.raises(SCNGoneError) as excinfo:
            buffer.events_since(0)
        assert excinfo.value.oldest_retained == 4
        # a reader already past the eviction point is fine
        assert [e.scn for e in buffer.events_since(5)] == [6, 7]

    def test_eviction_by_bytes(self):
        buffer = EventBuffer(max_bytes=400)
        for scn in range(1, 10):
            buffer.append_window([make_event(scn, payload=b"z" * 100)])
        assert buffer.size_bytes <= 400
        assert buffer.oldest_scn > 1

    def test_eviction_is_whole_windows(self):
        buffer = EventBuffer(max_events=3)
        buffer.append_window([make_event(1, end=False), make_event(1)])
        buffer.append_window([make_event(2, end=False), make_event(2)])
        # window 1 fully evicted (never half-retained), window 2 intact
        with pytest.raises(SCNGoneError):
            buffer.events_since(0)
        scns = {e.scn for e in buffer.events_since(1)}
        assert scns == {2}

    def test_max_events_stops_at_window_boundary(self):
        buffer = EventBuffer()
        buffer.append_window([make_event(1, end=False),
                              make_event(1, end=False), make_event(1)])
        buffer.append_window([make_event(2)])
        out = buffer.events_since(0, max_events=2)
        assert [e.scn for e in out] == [1, 1, 1]  # whole window despite cap
        assert out[-1].end_of_window


class TestRelayCapture:
    def test_capture_serializes_with_avro(self, source_db, relay, capture):
        insert_member(source_db, 7, name="Reid", headline="founder")
        assert capture.poll() == 1
        events = relay.stream_from(0)
        assert len(events) == 1
        schema = relay.schemas.get("member", events[0].schema_version)
        row = decode_record(schema, events[0].payload)
        assert row == {"member_id": 7, "name": "Reid", "headline": "founder"}

    def test_transaction_boundaries_preserved(self, source_db, relay, capture):
        txn = source_db.begin()
        txn.insert("member", {"member_id": 1, "name": "a", "headline": "h"})
        txn.insert("position", {"member_id": 1, "company": "li", "title": "ceo"})
        txn.commit()
        capture.poll()
        events = relay.stream_from(0)
        assert len(events) == 2
        assert not events[0].end_of_window
        assert events[1].end_of_window
        assert events[0].scn == events[1].scn

    def test_poll_is_incremental(self, source_db, relay, capture):
        insert_member(source_db, 1)
        assert capture.poll() == 1
        assert capture.poll() == 0
        insert_member(source_db, 2)
        assert capture.poll() == 1
        assert len(relay.stream_from(0)) == 2

    def test_relay_restart_resumes_from_buffer(self, source_db, relay, capture):
        from repro.databus import capture_from_binlog
        insert_member(source_db, 1)
        capture.poll()
        # a new capture adapter (relay restart) does not duplicate
        fresh = capture_from_binlog(source_db, relay)
        assert fresh.poll() == 0
        insert_member(source_db, 2)
        assert fresh.poll() == 1

    def test_unregistered_source_rejected(self, relay):
        from repro.sqlstore.binlog import BinlogTransaction, ChangeEvent
        txn = BinlogTransaction(1, (ChangeEvent("ghost", ChangeKind.INSERT,
                                                (1,), {"a": 1}),))
        with pytest.raises(ConfigurationError):
            relay.capture_transaction(txn)


class TestRelayServing:
    def test_source_filter(self, source_db, relay, capture):
        insert_member(source_db, 1)
        txn = source_db.begin()
        txn.insert("position", {"member_id": 1, "company": "li", "title": "x"})
        txn.commit()
        capture.poll()
        members = relay.stream_from(0, event_filter=source_filter("member"))
        assert {e.source for e in members} == {"member"}

    def test_partition_filter_partitions_completely(self, source_db, relay,
                                                    capture):
        for member_id in range(40):
            insert_member(source_db, member_id)
        capture.poll()
        seen = set()
        for partition in range(4):
            events = relay.stream_from(
                0, event_filter=partition_filter(4, partition))
            for event in events:
                assert event.key not in seen
                seen.add(event.key)
        assert len(seen) == 40

    def test_partition_filter_validation(self):
        with pytest.raises(ValueError):
            partition_filter(4, 4)

    def test_sharded_capture_one_buffer_per_partition(self, source_db):
        relay = Relay("sharded")
        from repro.databus import capture_from_binlog

        def route(event):
            return f"p{event.key[0] % 2}"

        capture = capture_from_binlog(source_db, relay, route=route)
        for member_id in range(6):
            insert_member(source_db, member_id)
        capture.poll()
        assert relay.buffer_names() == ["p0", "p1"]
        p0 = relay.stream_from(0, buffer_name="p0")
        p1 = relay.stream_from(0, buffer_name="p1")
        assert len(p0) == 3 and len(p1) == 3
        assert all(e.end_of_window for e in p0 + p1)

    def test_fanout_does_not_touch_source(self, source_db, relay, capture):
        insert_member(source_db, 1)
        capture.poll()
        commits_before = source_db.commits
        for _ in range(100):
            relay.stream_from(0)
        assert source_db.commits == commits_before
        assert relay.requests_served == 100


def test_updates_capture_new_row_image(source_db, relay, capture):
    insert_member(source_db, 1, name="before")
    update_member(source_db, 1, name="after")
    capture.poll()
    events = relay.stream_from(0)
    assert events[0].kind is ChangeKind.INSERT
    assert events[1].kind is ChangeKind.UPDATE
    schema = relay.schemas.latest("member")
    assert decode_record(schema, events[1].payload)["name"] == "after"
