"""Property-based invariants of the relay's circular event buffer."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.common.errors import SCNGoneError
from repro.databus.events import DatabusEvent
from repro.databus.relay import EventBuffer
from repro.sqlstore.binlog import ChangeKind


def window(scn: int, size: int) -> list[DatabusEvent]:
    return [DatabusEvent(scn, "t", ChangeKind.UPDATE, (i,), b"p" * 16,
                         end_of_window=(i == size - 1))
            for i in range(size)]


window_sizes = st.lists(st.integers(1, 4), min_size=1, max_size=40)


@settings(max_examples=60, deadline=None)
@given(window_sizes, st.integers(4, 30))
def test_retained_suffix_is_contiguous_and_complete(sizes, capacity):
    buffer = EventBuffer(max_events=capacity)
    for scn, size in enumerate(sizes, start=1):
        buffer.append_window(window(scn, size))
    # whatever is retained: read it all from the oldest position
    oldest = buffer.oldest_scn
    if oldest is None:
        return
    events = buffer.events_since(oldest - 1)
    # 1. SCNs are non-decreasing and gap-free across windows
    scns = sorted({e.scn for e in events})
    assert scns == list(range(scns[0], scns[-1] + 1))
    # 2. every retained window is complete
    by_scn: dict[int, list[DatabusEvent]] = {}
    for event in events:
        by_scn.setdefault(event.scn, []).append(event)
    for scn, events_of_window in by_scn.items():
        assert len(events_of_window) == sizes[scn - 1]
        assert events_of_window[-1].end_of_window
    # 3. the newest window is always retained
    assert scns[-1] == len(sizes)


@settings(max_examples=60, deadline=None)
@given(window_sizes, st.integers(4, 30), st.integers(0, 45))
def test_reads_are_exact_suffixes_or_scngone(sizes, capacity, from_scn):
    buffer = EventBuffer(max_events=capacity)
    for scn, size in enumerate(sizes, start=1):
        buffer.append_window(window(scn, size))
    evicted_through = buffer._evicted_through
    if from_scn < evicted_through:
        with pytest.raises(SCNGoneError):
            buffer.events_since(from_scn)
        return
    events = buffer.events_since(from_scn)
    expected = [scn for scn in range(max(from_scn + 1, 1), len(sizes) + 1)]
    assert sorted({e.scn for e in events}) == expected


@settings(max_examples=40, deadline=None)
@given(window_sizes)
def test_capacity_never_exceeded_by_more_than_last_window(sizes):
    capacity = 6
    buffer = EventBuffer(max_events=capacity)
    for scn, size in enumerate(sizes, start=1):
        buffer.append_window(window(scn, size))
        # eviction may leave up to capacity events, plus however many a
        # single (oversized) window needs
        assert len(buffer) <= max(capacity, size)
