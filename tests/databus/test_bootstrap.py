"""Bootstrap server: log/snapshot storage, deltas, consistent snapshots."""

import pytest

from repro.common.errors import ConfigurationError
from repro.databus import BootstrapServer
from repro.databus.events import DatabusEvent
from repro.sqlstore.binlog import ChangeKind


def event(scn, key=(1,), end=True, source="member", payload=b"p"):
    return DatabusEvent(scn, source, ChangeKind.UPDATE, key, payload,
                        end_of_window=end)


@pytest.fixture
def bootstrap():
    return BootstrapServer()


def feed(bootstrap, *scn_key_pairs):
    for scn, key in scn_key_pairs:
        bootstrap.on_events([event(scn, key=key)])


def test_log_and_snapshot_grow(bootstrap):
    feed(bootstrap, (1, (1,)), (2, (2,)), (3, (1,)))
    assert bootstrap.log_length == 3
    assert bootstrap.snapshot_rows == 2  # key (1,) folded
    assert bootstrap.high_watermark == 3


def test_out_of_order_rejected(bootstrap):
    feed(bootstrap, (5, (1,)))
    with pytest.raises(ConfigurationError):
        bootstrap.on_events([event(3)])


def test_consolidated_delta_folds_hot_rows(bootstrap):
    # 10 updates to one hot row, 1 update to another
    for scn in range(1, 11):
        bootstrap.on_events([event(scn, key=(1,))])
    bootstrap.on_events([event(11, key=(2,))])
    delta, watermark = bootstrap.consolidated_delta(since_scn=0)
    assert watermark == 11
    assert len(delta) == 2  # one per row, not eleven
    assert {e.key for e in delta} == {(1,), (2,)}
    assert max(e.scn for e in delta) == 11


def test_full_replay_returns_everything(bootstrap):
    for scn in range(1, 11):
        bootstrap.on_events([event(scn, key=(1,))])
    replay, _ = bootstrap.full_replay(since_scn=0)
    assert len(replay) == 10


def test_delta_respects_since_scn(bootstrap):
    feed(bootstrap, (1, (1,)), (2, (2,)), (3, (3,)))
    delta, _ = bootstrap.consolidated_delta(since_scn=2)
    assert [e.key for e in delta] == [(3,)]


def test_delta_with_filter(bootstrap):
    from repro.databus import source_filter
    bootstrap.on_events([event(1, key=(1,), source="member")])
    bootstrap.on_events([event(2, key=(1,), source="position")])
    delta, _ = bootstrap.consolidated_delta(0, source_filter("position"))
    assert [e.source for e in delta] == ["position"]


def test_partial_window_not_applied_until_closed(bootstrap):
    bootstrap.on_events([event(1, key=(1,), end=False)])
    assert bootstrap.snapshot_rows == 0
    assert bootstrap.high_watermark == 0
    bootstrap.on_events([event(1, key=(2,), end=True)])
    assert bootstrap.snapshot_rows == 2
    assert bootstrap.high_watermark == 1


def test_consistent_snapshot_basic(bootstrap):
    feed(bootstrap, (1, (1,)), (2, (2,)))
    items = list(bootstrap.consistent_snapshot())
    rows = [i for kind, i in items if kind == "row"]
    assert {e.key for e in rows} == {(1,), (2,)}
    assert items[-1] == ("scn", 2)


def test_consistent_snapshot_replays_concurrent_writes(bootstrap):
    feed(bootstrap, (1, (1,)), (2, (2,)))
    stream = bootstrap.consistent_snapshot()
    kind, first_row = next(stream)
    assert kind == "row"
    # a write lands while the snapshot is being served
    bootstrap.on_events([event(3, key=(9,))])
    rest = list(stream)
    replays = [i for kind, i in rest if kind == "replay"]
    assert [e.key for e in replays] == [(9,)]
    assert rest[-1] == ("scn", 3)


def test_snapshot_with_filter(bootstrap):
    from repro.databus import source_filter
    bootstrap.on_events([event(1, key=(1,), source="member")])
    bootstrap.on_events([event(2, key=(1,), source="position")])
    items = list(bootstrap.consistent_snapshot(source_filter("member")))
    rows = [i for kind, i in items if kind == "row"]
    assert len(rows) == 1
    assert rows[0].source == "member"


def test_delta_playback_factor_grows_with_skew(bootstrap):
    """The 'fast playback' effect: skewed updates make the delta much
    smaller than the log."""
    hot_updates = 200
    for scn in range(1, hot_updates + 1):
        bootstrap.on_events([event(scn, key=(scn % 5,))])
    delta, _ = bootstrap.consolidated_delta(0)
    replay, _ = bootstrap.full_replay(0)
    assert len(replay) == hot_updates
    assert len(delta) == 5
    assert len(replay) / len(delta) == 40
