"""Property-based tests: sqlstore is a faithful replicated state machine."""

from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.sqlstore import Column, SqlDatabase, TableSchema

SCHEMA = TableSchema("kv", (Column("k", int), Column("v", int)),
                     primary_key=("k",))


def fresh_db(name="db"):
    db = SqlDatabase(name, clock=SimClock())
    db.create_table(SCHEMA)
    return db


operations = st.lists(
    st.tuples(st.sampled_from(["upsert", "delete"]),
              st.integers(0, 8), st.integers(0, 100)),
    max_size=60)


def apply_ops(db, ops):
    """Apply ops, skipping statements invalid at their point in time."""
    model: dict[int, int] = {}
    for op, key, value in ops:
        txn = db.begin()
        try:
            if op == "upsert":
                txn.upsert("kv", {"k": key, "v": value})
                txn.commit()
                model[key] = value
            else:
                if key in model:
                    txn.delete("kv", (key,))
                    txn.commit()
                    del model[key]
                else:
                    txn.rollback()
        except Exception:
            txn.rollback()
            raise
    return model


@settings(max_examples=80, deadline=None)
@given(operations)
def test_table_state_matches_model(ops):
    db = fresh_db()
    model = apply_ops(db, ops)
    table_state = {row["k"]: row["v"] for row in db.table("kv").scan()}
    assert table_state == model


@settings(max_examples=60, deadline=None)
@given(operations)
def test_binlog_replay_rebuilds_identical_state(ops):
    """The replication property Databus/Espresso rely on: replaying
    the binlog in SCN order reproduces the primary's exact state."""
    primary = fresh_db("primary")
    apply_ops(primary, ops)
    replica = fresh_db("replica")
    for txn in primary.binlog.read_from(0):
        replica.apply_replicated(txn)
    assert replica.table("kv").snapshot() == primary.table("kv").snapshot()
    assert replica.last_committed_scn == primary.last_committed_scn


@settings(max_examples=40, deadline=None)
@given(operations, st.integers(0, 30))
def test_snapshot_plus_catchup_equals_full_replay(ops, split):
    """The bootstrap property (Figure III.3 / Espresso expansion):
    snapshot at SCN S + replay of (S, head] == full replay."""
    primary = fresh_db("primary")
    apply_ops(primary, ops)
    head = primary.last_committed_scn
    split_scn = min(split, head)

    # replica A: full replay
    full = fresh_db("full")
    for txn in primary.binlog.read_from(0):
        full.apply_replicated(txn)

    # replica B: rebuild state at split_scn, then restore + catch up
    at_split = fresh_db("at-split")
    for txn in primary.binlog.read_from(0):
        if txn.scn > split_scn:
            break
        at_split.apply_replicated(txn)
    bootstrapped = fresh_db("bootstrapped")
    bootstrapped.restore({"kv": at_split.table("kv").snapshot()}, split_scn)
    for txn in primary.binlog.read_from(split_scn):
        bootstrapped.apply_replicated(txn)

    assert bootstrapped.table("kv").snapshot() == full.table("kv").snapshot()


@settings(max_examples=40, deadline=None)
@given(operations)
def test_scns_dense_and_binlog_length_matches(ops):
    db = fresh_db()
    apply_ops(db, ops)
    scns = [txn.scn for txn in db.binlog.read_from(0)]
    assert scns == list(range(1, len(scns) + 1))
    assert db.last_committed_scn == len(scns)
