"""Table storage: schemas, keys, ordered scans."""

import pytest

from repro.common.errors import ConfigurationError, KeyNotFoundError
from repro.sqlstore import Column, Table, TableSchema

SONG_SCHEMA = TableSchema(
    name="Song",
    columns=(
        Column("artist", str),
        Column("album", str),
        Column("song", str),
        Column("timestamp", int),
        Column("etag", str),
        Column("val", bytes, nullable=True),
        Column("schema_version", int),
    ),
    primary_key=("artist", "album", "song"),
)


def song_row(artist="Etta_James", album="Gold", song="At_Last", **extra):
    row = {"artist": artist, "album": album, "song": song,
           "timestamp": 1, "etag": "e1", "val": b"doc", "schema_version": 1}
    row.update(extra)
    return row


def test_schema_validation():
    with pytest.raises(ConfigurationError):
        TableSchema("T", (Column("a", str), Column("a", str)), ("a",))
    with pytest.raises(ConfigurationError):
        TableSchema("T", (Column("a", str),), ("missing",))
    with pytest.raises(ConfigurationError):
        TableSchema("T", (Column("a", str),), ())


def test_insert_get_roundtrip():
    table = Table(SONG_SCHEMA)
    key = table.insert(song_row())
    assert key == ("Etta_James", "Gold", "At_Last")
    assert table.get(key)["val"] == b"doc"


def test_insert_duplicate_rejected():
    table = Table(SONG_SCHEMA)
    table.insert(song_row())
    with pytest.raises(ValueError):
        table.insert(song_row())


def test_not_null_enforced():
    table = Table(SONG_SCHEMA)
    with pytest.raises(ValueError):
        table.insert(song_row(etag=None))


def test_nullable_column_accepts_none():
    table = Table(SONG_SCHEMA)
    table.insert(song_row(val=None))


def test_type_checking():
    table = Table(SONG_SCHEMA)
    with pytest.raises(ValueError):
        table.insert(song_row(timestamp="not-an-int"))


def test_unknown_column_rejected():
    table = Table(SONG_SCHEMA)
    with pytest.raises(ValueError):
        table.insert(song_row(bogus=1))


def test_update_requires_existing():
    table = Table(SONG_SCHEMA)
    with pytest.raises(KeyNotFoundError):
        table.update(song_row())
    table.insert(song_row())
    table.update(song_row(etag="e2"))
    assert table.get(("Etta_James", "Gold", "At_Last"))["etag"] == "e2"


def test_upsert_reports_insert_vs_replace():
    table = Table(SONG_SCHEMA)
    _, was_insert = table.upsert(song_row())
    assert was_insert
    _, was_insert = table.upsert(song_row(etag="e2"))
    assert not was_insert


def test_delete_returns_old_row():
    table = Table(SONG_SCHEMA)
    table.insert(song_row())
    old = table.delete(("Etta_James", "Gold", "At_Last"))
    assert old["etag"] == "e1"
    with pytest.raises(KeyNotFoundError):
        table.delete(("Etta_James", "Gold", "At_Last"))


def test_rows_are_copied_in_and_out():
    table = Table(SONG_SCHEMA)
    row = song_row()
    table.insert(row)
    row["etag"] = "mutated"
    fetched = table.get(("Etta_James", "Gold", "At_Last"))
    assert fetched["etag"] == "e1"
    fetched["etag"] = "mutated-again"
    assert table.get(("Etta_James", "Gold", "At_Last"))["etag"] == "e1"


def test_prefix_scan_in_key_order():
    table = Table(SONG_SCHEMA)
    table.insert(song_row("The_Beatles", "Sgt_Pepper", "Lucy"))
    table.insert(song_row("Etta_James", "Her_Best", "At_Last"))
    table.insert(song_row("Etta_James", "Gold", "At_Last"))
    etta = list(table.scan(("Etta_James",)))
    assert [r["album"] for r in etta] == ["Gold", "Her_Best"]
    everything = list(table.scan())
    assert len(everything) == 3
    assert everything[0]["artist"] == "Etta_James"


def test_snapshot_restore_roundtrip():
    table = Table(SONG_SCHEMA)
    table.insert(song_row())
    table.insert(song_row(album="Her_Best"))
    copy = Table(SONG_SCHEMA)
    copy.restore(table.snapshot())
    assert copy.keys() == table.keys()
    assert len(copy) == 2
