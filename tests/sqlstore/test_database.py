"""Transactions, binlog ordering, and semi-sync commit."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import KeyNotFoundError, TransactionAbortedError
from repro.sqlstore import (
    ChangeKind,
    Column,
    SemiSyncTimeoutError,
    SqlDatabase,
    TableSchema,
)

FOLLOW_SCHEMA = TableSchema(
    "follows",
    (Column("member", int), Column("company", int), Column("since", int)),
    primary_key=("member", "company"),
)
COUNT_SCHEMA = TableSchema(
    "counts",
    (Column("company", int), Column("n", int)),
    primary_key=("company",),
)


@pytest.fixture
def db():
    database = SqlDatabase("social", clock=SimClock())
    database.create_table(FOLLOW_SCHEMA)
    database.create_table(COUNT_SCHEMA)
    return database


def test_commit_applies_atomically(db):
    txn = db.begin()
    txn.insert("follows", {"member": 1, "company": 10, "since": 0})
    txn.insert("counts", {"company": 10, "n": 1})
    scn = txn.commit()
    assert scn == 1
    assert db.table("follows").get((1, 10))["since"] == 0
    assert db.table("counts").get((10,))["n"] == 1


def test_rollback_discards_everything(db):
    txn = db.begin()
    txn.insert("follows", {"member": 1, "company": 10, "since": 0})
    txn.rollback()
    assert len(db.table("follows")) == 0
    assert db.binlog.last_scn == 0


def test_transaction_reuse_rejected(db):
    txn = db.begin()
    txn.commit()
    with pytest.raises(TransactionAbortedError):
        txn.insert("follows", {"member": 1, "company": 1, "since": 0})


def test_empty_commit_assigns_no_scn(db):
    assert db.begin().commit() == 0
    assert db.last_committed_scn == 0


def test_read_your_writes_within_transaction(db):
    txn = db.begin()
    txn.insert("counts", {"company": 10, "n": 1})
    assert txn.get("counts", (10,))["n"] == 1
    txn.update("counts", {"company": 10, "n": 2})
    assert txn.get("counts", (10,))["n"] == 2
    txn.delete("counts", (10,))
    with pytest.raises(KeyNotFoundError):
        txn.get("counts", (10,))
    txn.commit()
    assert len(db.table("counts")) == 0


def test_scns_are_dense_and_ordered(db):
    for member in range(5):
        txn = db.begin()
        txn.insert("follows", {"member": member, "company": 1, "since": 0})
        txn.commit()
    scns = [t.scn for t in db.binlog.read_from(0)]
    assert scns == [1, 2, 3, 4, 5]


def test_binlog_records_full_transactions(db):
    txn = db.begin()
    txn.insert("follows", {"member": 1, "company": 10, "since": 0})
    txn.insert("counts", {"company": 10, "n": 1})
    txn.commit()
    entries = list(db.binlog.read_from(0))
    assert len(entries) == 1
    assert entries[0].tables_touched() == {"follows", "counts"}
    kinds = [c.kind for c in entries[0].changes]
    assert kinds == [ChangeKind.INSERT, ChangeKind.INSERT]


def test_binlog_read_from_midpoint(db):
    for member in range(4):
        db.autocommit("follows", {"member": member, "company": 1, "since": 0})
    tail = [t.scn for t in db.binlog.read_from(2)]
    assert tail == [3, 4]


def test_delete_records_preimage(db):
    db.autocommit("counts", {"company": 5, "n": 9})
    txn = db.begin()
    txn.delete("counts", (5,))
    txn.commit()
    delete_event = list(db.binlog.read_from(1))[0].changes[0]
    assert delete_event.kind is ChangeKind.DELETE
    assert delete_event.row["n"] == 9


def test_semisync_refusal_aborts_commit(db):
    db.set_semisync_listener(lambda txn: False)
    txn = db.begin()
    txn.insert("counts", {"company": 1, "n": 1})
    with pytest.raises(SemiSyncTimeoutError):
        txn.commit()
    assert len(db.table("counts")) == 0
    assert db.binlog.last_scn == 0
    assert db.aborts == 1


def test_semisync_ack_allows_commit(db):
    acked = []
    db.set_semisync_listener(lambda txn: acked.append(txn.scn) or True)
    db.autocommit("counts", {"company": 1, "n": 1})
    assert acked == [1]
    assert db.table("counts").get((1,))["n"] == 1


def test_semisync_exception_aborts(db):
    def explode(txn):
        raise RuntimeError("relay down")
    db.set_semisync_listener(explode)
    txn = db.begin()
    txn.insert("counts", {"company": 1, "n": 1})
    with pytest.raises(SemiSyncTimeoutError):
        txn.commit()


def test_snapshot_restore_and_scn(db):
    for member in range(3):
        db.autocommit("follows", {"member": member, "company": 7, "since": 0})
    scn, tables = db.snapshot()
    assert scn == 3
    replica = SqlDatabase("replica", clock=SimClock())
    replica.create_table(FOLLOW_SCHEMA)
    replica.create_table(COUNT_SCHEMA)
    replica.restore(tables, scn)
    assert len(replica.table("follows")) == 3
    assert replica.last_committed_scn == 3


def test_apply_replicated_enforces_order(db):
    master = db
    replica = SqlDatabase("replica", clock=SimClock())
    replica.create_table(FOLLOW_SCHEMA)
    replica.create_table(COUNT_SCHEMA)
    for member in range(3):
        master.autocommit("follows", {"member": member, "company": 1, "since": 0})
    txns = list(master.binlog.read_from(0))
    replica.apply_replicated(txns[0])
    with pytest.raises(ValueError):
        replica.apply_replicated(txns[2])  # gap
    replica.apply_replicated(txns[1])
    replica.apply_replicated(txns[1])  # duplicate is a no-op
    replica.apply_replicated(txns[2])
    assert replica.last_committed_scn == 3
    assert len(replica.table("follows")) == 3


def test_binlog_subscription_push(db):
    seen = []
    db.binlog.subscribe(lambda txn: seen.append(txn.scn))
    db.autocommit("counts", {"company": 1, "n": 1})
    db.autocommit("counts", {"company": 2, "n": 1})
    assert seen == [1, 2]
