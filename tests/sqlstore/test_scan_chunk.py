"""Keyed chunk pagination and watermark commits — the sqlstore surface
the migration backfill stands on."""

import pytest

from repro.common.errors import ConfigurationError
from repro.sqlstore import WATERMARK_TABLE
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Column, Table, TableSchema

SCHEMA = TableSchema(
    "songs",
    (Column("artist", str), Column("album", str), Column("plays", int)),
    ("artist", "album"))


def make_table(rows=12):
    table = Table(SCHEMA)
    for i in range(rows):
        table.insert({"artist": f"a{i % 3}", "album": f"b{i:02d}",
                      "plays": i})
    return table


def all_keys(table):
    return [SCHEMA.key_of(r) for r in table.scan()]


class TestScanChunk:
    def test_pagination_covers_every_row_exactly_once(self):
        table = make_table(12)
        seen = []
        after = None
        while True:
            chunk = table.scan_chunk(after, 5)
            if not chunk:
                break
            seen.extend(SCHEMA.key_of(r) for r in chunk)
            after = SCHEMA.key_of(chunk[-1])
            if len(chunk) < 5:
                break
        assert seen == all_keys(table)
        assert len(seen) == len(set(seen))

    def test_after_key_is_exclusive(self):
        table = make_table(6)
        first = table.scan_chunk(None, 3)
        boundary = SCHEMA.key_of(first[-1])
        second = table.scan_chunk(boundary, 3)
        assert boundary not in [SCHEMA.key_of(r) for r in second]

    def test_chunks_are_key_ordered(self):
        table = make_table(10)
        chunk = table.scan_chunk(None, 10)
        keys = [SCHEMA.key_of(r) for r in chunk]
        assert keys == sorted(keys)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            make_table(1).scan_chunk(None, 0)

    def test_returned_rows_are_deep_copies(self):
        table = make_table(3)
        chunk = table.scan_chunk(None, 1)
        chunk[0]["plays"] = 999_999
        assert table.scan_chunk(None, 1)[0]["plays"] != 999_999

    def test_snapshot_rows_are_deep_copies(self):
        table = make_table(3)
        snapshot = table.snapshot()
        snapshot[0]["plays"] = 999_999
        assert table.snapshot()[0]["plays"] != 999_999

    def test_database_level_scan_chunk(self):
        db = SqlDatabase("music")
        db.create_table(SCHEMA)
        db.autocommit("songs", {"artist": "x", "album": "y", "plays": 1})
        assert len(db.scan_chunk("songs", None, 10)) == 1
        with pytest.raises(ConfigurationError):
            db.scan_chunk("nope", None, 10)


class TestWatermarks:
    def test_watermark_occupies_a_commit_position(self):
        db = SqlDatabase("music")
        db.create_table(SCHEMA)
        db.autocommit("songs", {"artist": "x", "album": "y", "plays": 1})
        scn = db.write_watermark("chunk-low:songs")
        assert scn == 2
        # the next real commit lands after it, SCNs stay dense
        assert db.autocommit("songs", {"artist": "x", "album": "z",
                                       "plays": 2}) == 3

    def test_watermark_touches_no_table(self):
        db = SqlDatabase("music")
        db.create_table(SCHEMA)
        db.write_watermark("mark")
        assert len(db.table("songs")) == 0

    def test_watermark_keys_are_unique_even_with_equal_labels(self):
        db = SqlDatabase("music")
        db.create_table(SCHEMA)
        db.write_watermark("same-label")
        db.write_watermark("same-label")
        keys = [txn.changes[0].key for txn in db.binlog.read_from(0)]
        assert len(keys) == len(set(keys))

    def test_watermark_label_required(self):
        db = SqlDatabase("music")
        with pytest.raises(ConfigurationError):
            db.write_watermark("")

    def test_replica_apply_skips_watermarks(self):
        primary = SqlDatabase("primary")
        primary.create_table(SCHEMA)
        replica = SqlDatabase("replica")
        replica.create_table(SCHEMA)
        primary.autocommit("songs", {"artist": "x", "album": "y", "plays": 1})
        primary.write_watermark("mark")
        primary.autocommit("songs", {"artist": "x", "album": "z", "plays": 2})
        for txn in primary.binlog.read_from(0):
            replica.apply_replicated(txn)
        assert len(replica.table("songs")) == 2
        assert replica.binlog.last_scn == 3   # the SCN position is kept
        marks = [c for txn in replica.binlog.read_from(0)
                 for c in txn.changes if c.kind is ChangeKind.WATERMARK]
        assert len(marks) == 1
        assert marks[0].table == WATERMARK_TABLE