"""The central workflow scheduler: DAGs, retries, recurring runs."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.hadoop.scheduler import (
    JobStatus,
    Workflow,
    WorkflowJob,
    WorkflowScheduler,
)


def ok(name, depends_on=(), result=None):
    return WorkflowJob(name, lambda ctx: result or name, depends_on)


class TestWorkflowValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Workflow("w", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Workflow("w", [ok("a"), ok("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ConfigurationError):
            Workflow("w", [WorkflowJob("a", lambda c: None, ("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            Workflow("w", [
                WorkflowJob("a", lambda c: None, ("b",)),
                WorkflowJob("b", lambda c: None, ("a",)),
            ])

    def test_topological_order_respects_dependencies(self):
        workflow = Workflow("w", [
            WorkflowJob("load", lambda c: None, ("score", "extract")),
            ok("extract"),
            WorkflowJob("score", lambda c: None, ("extract",)),
        ])
        order = workflow.order
        assert order.index("extract") < order.index("score") < order.index("load")


class TestExecution:
    def test_results_flow_through_context(self):
        trace = []
        workflow = Workflow("w", [
            WorkflowJob("extract", lambda c: [1, 2, 3]),
            WorkflowJob("score", lambda c: sum(c["extract"]), ("extract",)),
        ])
        run = WorkflowScheduler().run_workflow(workflow)
        assert run.succeeded
        assert run.job_runs["score"].result == 6

    def test_failure_skips_dependents(self):
        def boom(ctx):
            raise RuntimeError("bad data")

        workflow = Workflow("w", [
            WorkflowJob("extract", boom),
            WorkflowJob("score", lambda c: 1, ("extract",)),
            ok("independent"),
        ])
        run = WorkflowScheduler().run_workflow(workflow)
        assert not run.succeeded
        assert run.status_of("extract") is JobStatus.FAILED
        assert run.status_of("score") is JobStatus.SKIPPED
        assert run.status_of("independent") is JobStatus.SUCCEEDED
        assert "bad data" in run.job_runs["extract"].error

    def test_retries(self):
        attempts = {"n": 0}

        def flaky(ctx):
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise RuntimeError("transient")
            return "done"

        workflow = Workflow("w", [WorkflowJob("flaky", flaky, max_retries=3)])
        run = WorkflowScheduler().run_workflow(workflow)
        assert run.succeeded
        assert run.job_runs["flaky"].attempts == 3

    def test_retries_exhausted(self):
        def always(ctx):
            raise RuntimeError("permanent")

        workflow = Workflow("w", [WorkflowJob("j", always, max_retries=2)])
        run = WorkflowScheduler().run_workflow(workflow)
        assert run.status_of("j") is JobStatus.FAILED
        assert run.job_runs["j"].attempts == 3


class TestSchedule:
    def test_recurring_runs(self):
        clock = SimClock()
        scheduler = WorkflowScheduler(clock)
        workflow = Workflow("hourly", [ok("job")])
        scheduler.schedule(workflow, every_seconds=3600)
        clock.advance(3 * 3600 + 1)
        assert len(scheduler.runs_of("hourly")) == 3
        assert [r.started_at for r in scheduler.runs_of("hourly")] == \
            [3600.0, 7200.0, 10800.0]

    def test_unschedule_stops_runs(self):
        clock = SimClock()
        scheduler = WorkflowScheduler(clock)
        workflow = Workflow("daily", [ok("job")])
        scheduler.schedule(workflow, every_seconds=10)
        clock.advance(25)
        scheduler.unschedule("daily")
        clock.advance(100)
        assert len(scheduler.runs_of("daily")) == 2

    def test_double_schedule_rejected(self):
        scheduler = WorkflowScheduler(SimClock())
        workflow = Workflow("w", [ok("j")])
        scheduler.schedule(workflow, 10)
        with pytest.raises(ConfigurationError):
            scheduler.schedule(workflow, 20)

    def test_interval_validation(self):
        scheduler = WorkflowScheduler(SimClock())
        with pytest.raises(ConfigurationError):
            scheduler.schedule(Workflow("w", [ok("j")]), 0)

    def test_context_factory_per_run(self):
        clock = SimClock()
        scheduler = WorkflowScheduler(clock)
        counter = {"n": 0}

        def fresh_context():
            counter["n"] += 1
            return {"run_number": counter["n"]}

        workflow = Workflow("w", [
            WorkflowJob("read", lambda c: c["run_number"])])
        scheduler.schedule(workflow, 10, context_factory=fresh_context)
        clock.advance(25)
        results = [r.job_runs["read"].result for r in scheduler.runs_of("w")]
        assert results == [1, 2]


def test_pymk_refresh_workflow_integration(tmp_path):
    """The production shape: a scheduled workflow that rescoren PYMK
    and redeploys the read-only store every 'day'."""
    from repro.hadoop import MiniHDFS
    from repro.recommendations import PymkPipeline
    from repro.socialgraph import PartitionedSocialGraph
    from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster

    clock = SimClock()
    cluster = VoldemortCluster(num_nodes=2, partitions_per_node=4,
                               clock=clock, data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", 1, 1, 1, engine_type="read-only"))
    pipeline = PymkPipeline(cluster, MiniHDFS(), k=5)
    graph = PartitionedSocialGraph(4)
    graph.connect(1, 2)
    graph.connect(1, 3)

    workflow = Workflow("pymk-refresh", [
        WorkflowJob("score-and-deploy", lambda ctx: pipeline.run(graph))])
    scheduler = WorkflowScheduler(clock)
    scheduler.schedule(workflow, every_seconds=86_400)
    clock.advance(86_400 + 1)
    assert pipeline.runs == 1
    routed = RoutedStore(cluster, "pymk")
    assert pipeline.recommendations_for(routed, 2)
    # the graph grows; the next day's run picks it up
    graph.connect(1, 4)
    clock.advance(86_400)
    assert pipeline.runs == 2
    assert {c for c, _ in pipeline.recommendations_for(routed, 2)} == {3, 4}
