"""MiniHDFS write-once namespace semantics."""

import pytest

from repro.hadoop import FileAlreadyExistsError, FileNotFoundInHDFSError, MiniHDFS


@pytest.fixture
def hdfs():
    return MiniHDFS()


def test_create_and_read(hdfs):
    hdfs.create("/data/x", b"hello")
    assert hdfs.read("/data/x") == b"hello"
    assert hdfs.size("/data/x") == 5


def test_files_are_write_once(hdfs):
    hdfs.create("/x", b"a")
    with pytest.raises(FileAlreadyExistsError):
        hdfs.create("/x", b"b")


def test_missing_file_raises(hdfs):
    with pytest.raises(FileNotFoundInHDFSError):
        hdfs.read("/nope")
    with pytest.raises(FileNotFoundInHDFSError):
        hdfs.size("/nope")


def test_relative_paths_rejected(hdfs):
    with pytest.raises(ValueError):
        hdfs.create("relative", b"")


def test_path_normalization(hdfs):
    hdfs.create("/a//b/", b"x")
    assert hdfs.read("/a/b") == b"x"


def test_listdir_shows_files_and_subdirs(hdfs):
    hdfs.create("/out/part-00000", b"")
    hdfs.create("/out/part-00001", b"")
    hdfs.create("/out/sub/inner", b"")
    assert hdfs.listdir("/out") == ["part-00000", "part-00001", "sub"]


def test_listdir_missing_directory(hdfs):
    with pytest.raises(FileNotFoundInHDFSError):
        hdfs.listdir("/ghost")


def test_glob_files_recursive(hdfs):
    hdfs.create("/j/a", b"")
    hdfs.create("/j/sub/b", b"")
    hdfs.create("/other", b"")
    assert hdfs.glob_files("/j") == ["/j/a", "/j/sub/b"]


def test_read_chunks_reassembles(hdfs):
    payload = bytes(range(256)) * 40
    hdfs.create("/big", payload)
    chunks = list(hdfs.read_chunks("/big", chunk_size=1000))
    assert b"".join(chunks) == payload
    assert all(len(c) <= 1000 for c in chunks)
    with pytest.raises(ValueError):
        list(hdfs.read_chunks("/big", chunk_size=0))


def test_delete_file_and_subtree(hdfs):
    hdfs.create("/d/x", b"")
    hdfs.create("/d/y", b"")
    assert hdfs.delete("/d/x") == 1
    assert hdfs.delete("/d", recursive=True) == 1
    with pytest.raises(FileNotFoundInHDFSError):
        hdfs.delete("/d/x")


def test_io_accounting(hdfs):
    hdfs.create("/x", b"12345")
    hdfs.read("/x")
    assert hdfs.bytes_written == 5
    assert hdfs.bytes_read == 5
    assert hdfs.total_bytes() == 5
