"""MapReduce runner: partitioning, sort order, determinism."""

import pytest

from repro.common.errors import ConfigurationError
from repro.hadoop import MapReduceJob, MiniHDFS, run_job


def word_count_job(num_reducers=2):
    def mapper(line):
        for word in line.split():
            yield word.encode(), b"1"

    def reducer(key, values):
        yield key + b"\t" + str(len(values)).encode() + b"\n"

    return MapReduceJob("wordcount", mapper, reducer, num_reducers)


def test_word_count_end_to_end():
    hdfs = MiniHDFS()
    counters = run_job(word_count_job(), ["a b a", "b c"], hdfs, "/out")
    assert counters.map_input_records == 2
    assert counters.map_output_records == 5
    assert counters.reduce_input_groups == 3
    merged = b"".join(hdfs.read(p) for p in hdfs.glob_files("/out"))
    rows = dict(line.split(b"\t") for line in merged.splitlines())
    assert rows == {b"a": b"2", b"b": b"2", b"c": b"1"}


def test_one_part_file_per_reducer():
    hdfs = MiniHDFS()
    run_job(word_count_job(num_reducers=4), ["x"], hdfs, "/out")
    assert hdfs.listdir("/out") == [f"part-{i:05d}" for i in range(4)]


def test_reducer_sees_keys_in_sorted_order():
    hdfs = MiniHDFS()
    seen = []

    def mapper(record):
        yield record, b""

    def reducer(key, values):
        seen.append(key)
        return []

    job = MapReduceJob("sortcheck", mapper, reducer, num_reducers=1)
    run_job(job, [b"zebra", b"apple", b"mango"], hdfs, "/out")
    assert seen == sorted(seen)


def test_partitioner_routes_keys():
    hdfs = MiniHDFS()

    def mapper(record):
        yield record, b"v"

    def reducer(key, values):
        yield key + b"\n"

    def by_first_byte(key, n):
        return key[0] % n

    job = MapReduceJob("route", mapper, reducer, num_reducers=2,
                       partitioner=by_first_byte)
    run_job(job, [b"\x00even", b"\x01odd", b"\x02even2"], hdfs, "/out")
    assert hdfs.read("/out/part-00000") == b"\x00even\n\x02even2\n"
    assert hdfs.read("/out/part-00001") == b"\x01odd\n"


def test_bad_partitioner_detected():
    hdfs = MiniHDFS()
    job = MapReduceJob("bad", lambda r: [(b"k", b"v")],
                       lambda k, v: [], num_reducers=2,
                       partitioner=lambda key, n: 5)
    with pytest.raises(ConfigurationError):
        run_job(job, [1], hdfs, "/out")


def test_mapper_type_errors_detected():
    hdfs = MiniHDFS()
    job = MapReduceJob("bad", lambda r: [("str", b"v")], lambda k, v: [])
    with pytest.raises(TypeError):
        run_job(job, [1], hdfs, "/out")


def test_reducer_type_errors_detected():
    hdfs = MiniHDFS()
    job = MapReduceJob("bad", lambda r: [(b"k", b"v")], lambda k, v: ["str"])
    with pytest.raises(TypeError):
        run_job(job, [1], hdfs, "/out")


def test_zero_reducers_rejected():
    with pytest.raises(ConfigurationError):
        MapReduceJob("bad", lambda r: [], lambda k, v: [], num_reducers=0)


def test_deterministic_output():
    def run_once():
        hdfs = MiniHDFS()
        run_job(word_count_job(3), ["the quick brown fox", "the lazy dog"],
                hdfs, "/out")
        return [hdfs.read(p) for p in hdfs.glob_files("/out")]

    assert run_once() == run_once()
