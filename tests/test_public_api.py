"""Package-surface smoke tests: every public module imports and every
``__all__`` name resolves.  Guards the library against broken exports —
the first thing a downstream adopter would hit."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro.common",
    "repro.simnet",
    "repro.zookeeper",
    "repro.helix",
    "repro.hadoop",
    "repro.sqlstore",
    "repro.voldemort",
    "repro.voldemort.engines",
    "repro.databus",
    "repro.espresso",
    "repro.migration",
    "repro.kafka",
    "repro.streams",
    "repro.workloads",
    "repro.socialgraph",
    "repro.search",
    "repro.recommendations",
]

MODULES = [
    "repro.voldemort.chord",
    "repro.voldemort.admin",
    "repro.voldemort.slop",
    "repro.voldemort.server_routing",
    "repro.voldemort.readonly_pipeline",
    "repro.voldemort.transforms",
    "repro.databus.bootstrap",
    "repro.databus.capture",
    "repro.databus.transform",
    "repro.databus.tenancy",
    "repro.espresso.global_index",
    "repro.espresso.router",
    "repro.kafka.replication",
    "repro.kafka.mirror",
    "repro.kafka.audit",
    "repro.helix.health",
    "repro.hadoop.scheduler",
    "repro.streams.apps",
    "repro.workloads.day_in_the_life",
]


def test_version():
    assert repro.__version__


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_all_resolves(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} declares no __all__"
    for exported in module.__all__:
        assert hasattr(module, exported), f"{name}.{exported} missing"


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


def test_no_circular_import_from_cold_start():
    """Import the deepest cross-system module first; circular imports
    would explode here."""
    import subprocess
    import sys
    code = "import repro.espresso.global_index; print('ok')"
    result = subprocess.run([sys.executable, "-c", code],
                            capture_output=True, text=True)
    assert result.stdout.strip() == "ok", result.stderr
