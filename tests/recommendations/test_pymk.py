"""PYMK link prediction: scoring semantics and the full pipeline."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.hadoop import MiniHDFS
from repro.recommendations import PymkPipeline, score_common_neighbors
from repro.recommendations.pymk import top_k
from repro.socialgraph import PartitionedSocialGraph
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster


def triangle_graph():
    """1-2, 1-3: members 2 and 3 should be recommended to each other."""
    graph = PartitionedSocialGraph(4)
    graph.connect(1, 2)
    graph.connect(1, 3)
    return graph


def test_friends_of_friends_scored():
    scores = score_common_neighbors(triangle_graph(), MiniHDFS())
    assert 3 in scores[2]
    assert 2 in scores[3]
    assert scores[2][3] == scores[3][2] > 0


def test_direct_connections_excluded():
    graph = triangle_graph()
    graph.connect(2, 3)  # close the triangle
    scores = score_common_neighbors(graph, MiniHDFS())
    assert 3 not in scores.get(2, {})
    assert 2 not in scores.get(3, {})


def test_more_common_neighbors_scores_higher():
    graph = PartitionedSocialGraph(4)
    # 10 and 20 share two connections; 10 and 30 share one
    for shared in (1, 2):
        graph.connect(10, shared)
        graph.connect(20, shared)
    graph.connect(10, 3)
    graph.connect(30, 3)
    scores = score_common_neighbors(graph, MiniHDFS())
    assert scores[10][20] > scores[10][30]


def test_hub_connections_weigh_less():
    """Adamic/Adar: a shared hub is weaker evidence than a shared
    low-degree contact."""
    graph = PartitionedSocialGraph(4)
    # hub member 100 knows everyone
    for member in range(1, 12):
        graph.connect(100, member)
    # members 1 and 2 also share the selective member 200
    graph.connect(200, 1)
    graph.connect(200, 2)
    # members 3 and 4 share only the hub
    scores = score_common_neighbors(graph, MiniHDFS())
    assert scores[1][2] > scores[3][4]


def test_top_k_orders_and_truncates():
    scores = {1: {10: 0.5, 11: 0.9, 12: 0.7, 13: 0.1}}
    pairs = top_k(scores, k=2)
    assert pairs[0][0] == b"member-1"
    assert json.loads(pairs[0][1]) == [[11, 0.9], [12, 0.7]]


def test_pipeline_end_to_end(tmp_path):
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", 2, 1, 1, engine_type="read-only"))
    pipeline = PymkPipeline(cluster, MiniHDFS(), k=5)
    graph = PartitionedSocialGraph(8)
    for member in range(0, 20, 2):
        graph.connect(member, member + 1)
        graph.connect(member + 1, (member + 2) % 20)
    build = pipeline.run(graph)
    assert build.version == 1
    routed = RoutedStore(cluster, "pymk")
    recommendations = pipeline.recommendations_for(routed, 0)
    assert recommendations
    assert all(isinstance(c, int) and s > 0 for c, s in recommendations)
    # scores sorted descending
    assert [s for _, s in recommendations] == \
        sorted((s for _, s in recommendations), reverse=True)


def test_pipeline_rerun_replaces_scores(tmp_path):
    cluster = VoldemortCluster(num_nodes=2, partitions_per_node=4,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", 1, 1, 1, engine_type="read-only"))
    pipeline = PymkPipeline(cluster, MiniHDFS(), k=5)
    graph = triangle_graph()
    pipeline.run(graph)
    routed = RoutedStore(cluster, "pymk")
    first = pipeline.recommendations_for(routed, 2)
    # the graph evolves: member 2 gains shared connections with 4
    graph.connect(1, 4)
    pipeline.run(graph)
    second = pipeline.recommendations_for(routed, 2)
    assert {c for c, _ in second} > {c for c, _ in first}
    # rollback restores the previous run (§II.C instant rollback)
    pipeline.controller.rollback()
    assert pipeline.recommendations_for(routed, 2) == first


def test_unknown_member_gets_empty_list(tmp_path):
    cluster = VoldemortCluster(num_nodes=2, partitions_per_node=4,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", 1, 1, 1, engine_type="read-only"))
    pipeline = PymkPipeline(cluster, MiniHDFS())
    pipeline.run(triangle_graph())
    routed = RoutedStore(cluster, "pymk")
    assert pipeline.recommendations_for(routed, 999) == []


def test_k_validation(tmp_path):
    cluster = VoldemortCluster(num_nodes=2, partitions_per_node=4,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", 1, 1, 1, engine_type="read-only"))
    with pytest.raises(ConfigurationError):
        PymkPipeline(cluster, MiniHDFS(), k=0)
