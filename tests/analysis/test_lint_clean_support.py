"""Path anchors for the lint gate (kept separate so the gate test
reads as pure policy)."""

from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"
