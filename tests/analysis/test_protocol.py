"""The declarative typestate engine, exercised with a minimal spec."""

import ast
import re
import textwrap

from repro.analysis.protocol import ProtocolSpec, check_protocol

SPEC = ProtocolSpec(
    name="test-lock",
    receiver=re.compile(r"lock"),
    method_events=(
        (re.compile(r"^acquire$"), "acquire"),
        (re.compile(r"^release$"), "release"),
        (re.compile(r"^publish$"), "publish"),
    ),
    obligation="acquire",
    discharge=frozenset({"release"}),
    forbidden_events=frozenset({"publish"}),
    exit_message="{recv} escapes without release",
    forbidden_event_message="publish while {recv} held",
)

GATED = ProtocolSpec(
    name="test-gate",
    receiver=re.compile(r"gate"),
    method_events=(
        (re.compile(r"^enter$"), "enter"),
        (re.compile(r"^leave$"), "leave"),
    ),
    obligation="enter",
    discharge=frozenset({"leave"}),
    exit_message="{recv} admitted without leave",
    gate=True,
)


def violations(source: str, spec=SPEC):
    tree = ast.parse(textwrap.dedent(source))
    return list(check_protocol(tree, spec))


def test_obligation_escaping_to_exit_is_reported_once():
    found = violations("""
        def f(self):
            self.lock.acquire()
            if self.a:
                return 1
            if self.b:
                return 2
            return 3
    """)
    # three distinct escaping returns, one finding at the obligation
    assert len(found) == 1
    assert found[0].node.lineno == 3
    assert "lock escapes" in found[0].message


def test_discharge_on_every_path_is_clean():
    assert violations("""
        def f(self):
            self.lock.acquire()
            if self.a:
                self.lock.release()
                return 1
            self.lock.release()
            return 2
    """) == []


def test_discharge_must_be_same_receiver():
    found = violations("""
        def f(self):
            self.read_lock.acquire()
            self.write_lock.release()
    """)
    assert len(found) == 1
    assert "read_lock" in found[0].message


def test_forbidden_event_anchored_at_the_event():
    found = violations("""
        def f(self):
            self.lock.acquire()
            self.publish()
            self.lock.release()
    """)
    assert len(found) == 1
    assert found[0].node.lineno == 4
    assert "publish while lock held" in found[0].message


def test_uncaught_exception_path_is_excused():
    assert violations("""
        def f(self):
            self.lock.acquire()
            if self.bad:
                raise RuntimeError()
            self.lock.release()
    """) == []


def test_handler_that_returns_is_not_excused():
    found = violations("""
        def f(self):
            try:
                self.lock.acquire()
                self.work()
            except KeyError:
                return None
            self.lock.release()
    """)
    assert len(found) == 1


def test_gated_obligation_opens_on_admitted_edge_only():
    assert violations("""
        def f(self):
            if not self.gate.enter():
                return None
            self.work()
            self.gate.leave()
    """, GATED) == []
    found = violations("""
        def f(self):
            if not self.gate.enter():
                return None
            if self.hurry:
                return None
            self.gate.leave()
    """, GATED)
    assert len(found) == 1
    assert found[0].node.lineno == 3


def test_gated_positive_test_obligates_true_branch():
    found = violations("""
        def f(self):
            if self.gate.enter():
                self.work()
            return None
    """, GATED)
    assert len(found) == 1
    assert violations("""
        def f(self):
            if self.gate.enter():
                self.gate.leave()
            return None
    """, GATED) == []


def test_ungated_call_result_obligates_conservatively():
    # result stored, not branched on: both continuations must leave
    found = violations("""
        def f(self):
            admitted = self.gate.enter()
            return admitted
    """, GATED)
    assert len(found) == 1
