"""Effect-summary semantics: may-raise, blocks, and deadline threading."""

from tests.analysis.conftest import project_of


def summary(project, qualname):
    return project.summaries[qualname]


def test_callee_raise_propagates_with_chain():
    project = project_of({
        "src/repro/pkg/mod.py": """
            def helper(d, k):
                if k not in d:
                    raise KeyError(k)
                return d[k]

            def entry(d, k):
                return helper(d, k)
        """,
    })
    raises = summary(project, "repro.pkg.mod.entry").raises
    assert "KeyError" in raises
    chain = raises["KeyError"]
    assert chain[0].caller == "repro.pkg.mod.entry"
    assert chain[-1].caller == "repro.pkg.mod.helper"


def test_handler_at_call_site_catches_callee_raise():
    project = project_of({
        "src/repro/pkg/mod.py": """
            def helper(k):
                raise KeyError(k)

            def entry(k):
                try:
                    return helper(k)
                except LookupError:
                    return None
        """,
    })
    # except LookupError catches KeyError through the real builtin MRO
    assert "KeyError" not in summary(project, "repro.pkg.mod.entry").raises


def test_scanned_hierarchy_and_reraise():
    project = project_of({
        "src/repro/pkg/errors.py": """
            class PkgError(Exception):
                pass

            class SubError(PkgError):
                pass
        """,
        "src/repro/pkg/mod.py": """
            from repro.pkg.errors import PkgError, SubError

            def helper():
                raise SubError("boom")

            def caught():
                try:
                    return helper()
                except PkgError:
                    return None

            def rethrown():
                try:
                    return helper()
                except PkgError as exc:
                    raise exc
        """,
    })
    assert "repro.pkg.errors.SubError" not in \
        summary(project, "repro.pkg.mod.caught").raises
    # ``raise exc`` re-raises the handler's static catch set
    assert any(name.endswith("PkgError") for name in
               summary(project, "repro.pkg.mod.rethrown").raises)


def test_blocks_propagate_transitively():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Client:
                def __init__(self, network):
                    self.network = network

                def _push(self, key):
                    return self.network.invoke(key)

                def flush(self, keys):
                    for key in keys:
                        self._push(key)
        """,
    })
    blocks = summary(project, "repro.pkg.mod.Client.flush").blocks
    assert "rpc" in blocks
    assert blocks["rpc"][0].callee == "repro.pkg.mod.Client._push"


def test_forwarded_deadline_is_not_a_drop():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Client:
                def __init__(self, network):
                    self.network = network

                def _push(self, key, deadline):
                    timeout = deadline.clamp(1.0)
                    return self.network.invoke(key, timeout=timeout)

                def flush(self, keys, deadline):
                    for key in keys:
                        self._push(key, deadline)
        """,
    })
    assert summary(project, "repro.pkg.mod.Client.flush") \
        .drops_deadline == ()
    assert summary(project, "repro.pkg.mod.Client._push") \
        .drops_deadline == ()


def test_dropped_deadline_yields_witness_chain():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Client:
                def __init__(self, network):
                    self.network = network

                def _push(self, key):
                    return self.network.invoke(key)

                def flush(self, keys, deadline):
                    deadline.check()
                    for key in keys:
                        self._push(key)
        """,
    })
    drops = summary(project, "repro.pkg.mod.Client.flush").drops_deadline
    assert len(drops) == 1
    chain = drops[0]
    assert chain[0].callee == "repro.pkg.mod.Client._push"
    assert chain[-1].callee == "<invoke>"


def test_taint_flows_through_local_assignment():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Client:
                def __init__(self, network):
                    self.network = network

                def fetch(self, key, deadline):
                    timeout = deadline.clamp(0.5)
                    return self.network.invoke(key, timeout=timeout)
        """,
    })
    assert summary(project, "repro.pkg.mod.Client.fetch") \
        .drops_deadline == ()


def test_constructed_deadline_counts_as_held():
    project = project_of({
        "src/repro/pkg/mod.py": """
            from repro.common.resilience import Deadline

            class Client:
                def __init__(self, network, clock):
                    self.network = network
                    self.clock = clock

                def _push(self, key):
                    return self.network.invoke(key)

                def flush(self, keys):
                    deadline = Deadline(self.clock, 1.0)
                    deadline.check()
                    for key in keys:
                        self._push(key)
        """,
    })
    drops = summary(project, "repro.pkg.mod.Client.flush").drops_deadline
    assert len(drops) == 1


def test_recursive_function_summaries_converge():
    project = project_of({
        "src/repro/pkg/mod.py": """
            def walk(node):
                if node is None:
                    raise ValueError("empty")
                for child in node.children:
                    walk(child)

            def entry(node):
                return walk(node)
        """,
    })
    assert "ValueError" in summary(project, "repro.pkg.mod.walk").raises
    assert "ValueError" in summary(project, "repro.pkg.mod.entry").raises


def test_public_boundary_is_init_reexports():
    project = project_of({
        "src/repro/pkg/__init__.py": """
            from repro.pkg.mod import Client, helper
        """,
        "src/repro/pkg/mod.py": """
            class Client:
                def fetch(self, key):
                    return key

                def _internal(self):
                    return None

            class Hidden:
                def visible_method(self):
                    return None

            def helper():
                return 1

            def unexported():
                return 2
        """,
    })
    from repro.analysis.summaries import iter_public_boundary
    boundary = {fn.qualname for fn in iter_public_boundary(project)}
    assert "repro.pkg.mod.Client.fetch" in boundary
    assert "repro.pkg.mod.helper" in boundary
    assert "repro.pkg.mod.Client._internal" not in boundary
    assert "repro.pkg.mod.Hidden.visible_method" not in boundary
    assert "repro.pkg.mod.unexported" not in boundary
