"""The known-bad / known-good fixture corpus, one directory per rule.

Each fixture under ``fixtures/<dir>/`` declares its rule in a
``# rule:`` header (and optionally a ``# path:`` header, since the
layering rule keys off the scanned file's package).  Lines that must
be flagged end in ``# BAD``; everything else must stay silent.  Good
twins (``good_*.py``) carry no markers at all, so every bad fixture
ships with evidence that its fix pattern passes.

One parametrized test drives the whole corpus: the expected finding
lines are exactly the marked lines, no more, no fewer.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.core import Analyzer, all_rules

FIXTURES = Path(__file__).parent / "fixtures"
_RULE_HEADER = re.compile(r"^#\s*rule:\s*(\S+)", re.MULTILINE)
_PATH_HEADER = re.compile(r"^#\s*path:\s*(\S+)", re.MULTILINE)
DEFAULT_REL_PATH = "src/repro/pkg/mod.py"


def fixture_files() -> list[Path]:
    files = sorted(FIXTURES.glob("*/*.py"))
    assert files, "fixture corpus is missing"
    return files


def _fixture_id(path: Path) -> str:
    return f"{path.parent.name}/{path.stem}"


@pytest.mark.parametrize("fixture", fixture_files(), ids=_fixture_id)
def test_fixture(fixture: Path):
    source = fixture.read_text(encoding="utf-8")
    header = _RULE_HEADER.search(source)
    assert header, f"{fixture}: missing '# rule:' header"
    rule_name = header.group(1)
    path_header = _PATH_HEADER.search(source)
    rel_path = path_header.group(1) if path_header else DEFAULT_REL_PATH

    rules = [rule for rule in all_rules() if rule.name == rule_name]
    assert rules, f"{fixture}: unknown rule {rule_name!r}"
    findings = Analyzer(rules=rules).check_source(source, rel_path)

    expected = sorted(
        lineno for lineno, text in enumerate(source.splitlines(), start=1)
        if text.rstrip().endswith("# BAD"))
    actual = sorted(finding.line for finding in findings)

    if fixture.name.startswith("bad_"):
        assert expected, f"{fixture}: bad fixture has no '# BAD' markers"
    else:
        assert not expected, f"{fixture}: good fixture carries '# BAD' markers"
    assert actual == expected, (
        f"{fixture}: expected findings on lines {expected}, got {actual}: "
        + "; ".join(f"{f.line}: {f.message}" for f in findings))


def test_every_flow_rule_has_fixtures():
    dirs = {path.name for path in FIXTURES.iterdir() if path.is_dir()}
    assert {"durability", "breaker", "staleread", "layering",
            "atomicity"} <= dirs
    for directory in sorted(dirs):
        names = [p.name for p in (FIXTURES / directory).glob("*.py")]
        assert any(n.startswith("bad_") for n in names), directory
        assert any(n.startswith("good_") for n in names), directory
