"""durability-unsynced-ack rule: positives, negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "durability-unsynced-ack"


def test_wal_append_without_fsync_flagged():
    findings = lint("""
        def store_hint(self, hint):
            self._slop_wal.append(encode(hint))
            self.hints.append(hint)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert findings[0].line == 3


def test_disk_write_without_fsync_flagged():
    findings = lint("""
        def save(self, disk, payload):
            disk.write(payload)
    """, RULE)
    assert len(findings) == 1


def test_append_then_fsync_is_clean():
    findings = lint("""
        def store_hint(self, hint):
            self._slop_wal.append(encode(hint))
            self._slop_wal.fsync()
            self.hints.append(hint)
    """, RULE)
    assert findings == []


def test_batched_appends_single_fsync_is_clean():
    # one fsync after a batch of appends covers all of them
    findings = lint("""
        def on_events(self, events):
            for event in events:
                self._log_wal.append(encode(event))
            self._log_wal.fsync()
    """, RULE)
    assert findings == []


def test_in_memory_append_is_clean():
    # plain lists are not durable channels; no fsync expected
    findings = lint("""
        def buffer(self, event):
            self._log.append(event)
            self.pending.append(event)
    """, RULE)
    assert findings == []


def test_walrus_like_receiver_names_match():
    findings = lint("""
        def compact(self):
            new_wal = self.open_wal()
            new_wal.append(b"frame")
    """, RULE)
    assert len(findings) == 1


def test_nested_function_cannot_borrow_parent_fsync():
    findings = lint("""
        def outer(self):
            def stage(payload):
                self._commit_wal.append(payload)
            stage(b"x")
            self._commit_wal.fsync()
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_fsync_before_write_does_not_count():
    findings = lint("""
        def wrong_order(self):
            self._commit_wal.fsync()
            self._commit_wal.append(b"frame")
    """, RULE)
    assert len(findings) == 1


def test_pragma_suppresses():
    findings = lint("""
        def stage_only(self):
            self._log_wal.append(b"frame")  # repro-lint: disable=durability-unsynced-ack
    """, RULE)
    assert findings == []


# -- flow sensitivity: what the PR 3 line heuristic got wrong -----------------


def test_cross_branch_fsync_is_caught():
    # the fsync is lexically after the append, which satisfied the old
    # "an fsync at or after this line" heuristic — but it only runs on
    # the urgent branch; the other branch returns unsynced
    findings = lint("""
        def commit(self, record, urgent):
            self.wal.append(record)
            if urgent:
                self.wal.fsync()
            return True
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 3


def test_fsync_on_every_branch_is_clean():
    findings = lint("""
        def commit(self, record, urgent):
            self.wal.append(record)
            if urgent:
                self.wal.fsync()
            else:
                self.wal.fsync()
            return True
    """, RULE)
    assert findings == []


def test_loop_carried_fsync_is_not_a_false_positive():
    # the fsync is lexically *before* the append (a loop header), which
    # tripped the old heuristic; on the CFG every path from the append
    # passes the fsync before the while-True loop's (nonexistent) exit
    findings = lint("""
        def run_forever(self):
            while True:
                batch = self.take()
                self.wal.fsync()
                self.ack(batch)
                for record in batch:
                    self.wal.append(record)
    """, RULE)
    assert findings == []


def test_exceptional_exit_is_excused():
    findings = lint("""
        def stage(self, record):
            self.wal.append(record)
            if not self.valid(record):
                raise ValueError(record)
            self.wal.fsync()
    """, RULE)
    assert findings == []


def test_handler_converting_raise_to_return_is_flagged():
    findings = lint("""
        def ingest(self, record):
            try:
                self.wal.append(record)
                self.index.update(record)
            except KeyError:
                return False
            self.wal.fsync()
            return True
    """, RULE)
    assert len(findings) == 1


def test_ack_before_fsync_is_flagged_at_the_ack():
    findings = lint("""
        def commit(self, record):
            self.wal.append(record)
            self.send_ack(record)
            self.wal.fsync()
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_watermark_advance_while_dirty_is_flagged():
    findings = lint("""
        def apply(self, window):
            self.commit_wal.append(window.data)
            self.partition_watermark[window.partition] = window.scn
            self.commit_wal.fsync()
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_disk_opened_handle_is_tracked_by_dataflow():
    findings = lint("""
        def checkpoint(self, state):
            handle = self.disk.open("tmp", "wb")
            handle.write(state)
            handle.close()
            return True
    """, RULE)
    assert len(findings) == 1

    clean = lint("""
        def checkpoint(self, state):
            with self.disk.open("tmp", "wb") as handle:
                handle.write(state)
                handle.fsync()
            self.disk.replace("tmp", "real")
    """, RULE)
    assert clean == []
