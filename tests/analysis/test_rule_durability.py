"""durability-unsynced-ack rule: positives, negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "durability-unsynced-ack"


def test_wal_append_without_fsync_flagged():
    findings = lint("""
        def store_hint(self, hint):
            self._slop_wal.append(encode(hint))
            self.hints.append(hint)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert findings[0].line == 3


def test_disk_write_without_fsync_flagged():
    findings = lint("""
        def save(self, disk, payload):
            disk.write(payload)
    """, RULE)
    assert len(findings) == 1


def test_append_then_fsync_is_clean():
    findings = lint("""
        def store_hint(self, hint):
            self._slop_wal.append(encode(hint))
            self._slop_wal.fsync()
            self.hints.append(hint)
    """, RULE)
    assert findings == []


def test_batched_appends_single_fsync_is_clean():
    # one fsync after a batch of appends covers all of them
    findings = lint("""
        def on_events(self, events):
            for event in events:
                self._log_wal.append(encode(event))
            self._log_wal.fsync()
    """, RULE)
    assert findings == []


def test_in_memory_append_is_clean():
    # plain lists are not durable channels; no fsync expected
    findings = lint("""
        def buffer(self, event):
            self._log.append(event)
            self.pending.append(event)
    """, RULE)
    assert findings == []


def test_walrus_like_receiver_names_match():
    findings = lint("""
        def compact(self):
            new_wal = self.open_wal()
            new_wal.append(b"frame")
    """, RULE)
    assert len(findings) == 1


def test_nested_function_cannot_borrow_parent_fsync():
    findings = lint("""
        def outer(self):
            def stage(payload):
                self._commit_wal.append(payload)
            stage(b"x")
            self._commit_wal.fsync()
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_fsync_before_write_does_not_count():
    findings = lint("""
        def wrong_order(self):
            self._commit_wal.fsync()
            self._commit_wal.append(b"frame")
    """, RULE)
    assert len(findings) == 1


def test_pragma_suppresses():
    findings = lint("""
        def stage_only(self):
            self._log_wal.append(b"frame")  # repro-lint: disable=durability-unsynced-ack
    """, RULE)
    assert findings == []
