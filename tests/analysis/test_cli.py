"""CLI contract: exit codes, JSON output, baseline workflow."""

import json

from repro.analysis.cli import main

VIOLATION = "import time\n\n\ndef wait():\n    time.sleep(1)\n"
CLEAN = "def wait(clock):\n    clock.sleep(1)\n"


def _write_pkg(tmp_path, source):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "mod.py").write_text(source)
    return pkg


def test_clean_tree_exits_zero(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--root", str(tmp_path)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_violation_exits_one_with_human_report(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "1 new finding(s)" in out
    assert "wall-clock" in out
    assert "pkg/mod.py" in out


def test_json_report_shape(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--json", "--root", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["files_scanned"] == 1
    [finding] = payload["new"]
    assert finding["rule"] == "wall-clock"
    assert finding["path"] == "pkg/mod.py"
    assert finding["line"] == 5
    assert payload["counters"]["lint.findings.wall-clock"] == 1


def test_write_then_gate_with_baseline(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    baseline = tmp_path / "baseline.json"
    assert main([str(pkg), "--root", str(tmp_path),
                 "--write-baseline", str(baseline)]) == 0
    # grandfathered: the same tree now gates clean
    assert main([str(pkg), "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # a *new* violation still fails the gate
    (pkg / "mod2.py").write_text(VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 1


def test_disable_rule(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--disable", "wall-clock"]) == 0


def test_usage_errors_exit_two(tmp_path, capsys):
    assert main(["--disable", "no-such-rule", str(tmp_path)]) == 2
    assert main([str(tmp_path / "missing")]) == 2
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--baseline", str(tmp_path / "nope.json")]) == 2


def test_list_rules_names_the_full_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wall-clock", "unseeded-random", "set-iteration",
                 "swallowed-transport-error", "retry-without-backoff",
                 "deadline-dropped", "durability-unsynced-ack",
                 "breaker-unrecorded-outcome", "stale-read-across-rpc",
                 "layering-contract"):
        assert rule in out


def test_parse_error_exits_one(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, "def broken(:\n")
    assert main([str(pkg), "--root", str(tmp_path)]) == 1
    assert "parse error" in capsys.readouterr().out


def test_rule_filter_runs_only_that_rule(tmp_path, capsys):
    # the tree violates wall-clock, but the run is scoped to another rule
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--rule", "unseeded-random"]) == 0
    assert main([str(pkg), "--root", str(tmp_path),
                 "--rule", "wall-clock"]) == 1
    assert main([str(pkg), "--rule", "no-such-rule"]) == 2


def test_stats_reports_per_rule_timing(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path), "--stats"]) == 1
    out = capsys.readouterr().out
    assert "per-rule stats" in out
    assert "wall-clock" in out and "ms" in out


def test_stats_in_json_payload(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--json", "--stats"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["wall-clock"]["findings"] == 1
    assert payload["stats"]["wall-clock"]["ms"] >= 0.0


def test_update_baseline_shrinks_but_never_grows(tmp_path, capsys):
    two = VIOLATION + "time.sleep(1)\n"
    pkg = _write_pkg(tmp_path, two)
    baseline = tmp_path / "baseline.json"
    assert main([str(pkg), "--root", str(tmp_path),
                 "--write-baseline", str(baseline)]) == 0

    # fixing one of the two identical findings: the ratchet shrinks the
    # allowance and the gate passes
    (pkg / "mod.py").write_text(VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--update-baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "ratcheted down by 1" in out
    contents = json.loads(baseline.read_text())
    assert sum(e["count"] for e in contents["findings"].values()) == 1

    # reintroducing the second copy is NOT absorbed: the shrunken
    # baseline holds and the new occurrence gates
    (pkg / "mod.py").write_text(two)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--update-baseline", str(baseline)]) == 1

    # a brand-new violation is never added by --update-baseline
    (pkg / "mod2.py").write_text(VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--update-baseline", str(baseline)]) == 1
    contents = json.loads(baseline.read_text())
    assert all("mod2" not in entry["where"]
               for entry in contents["findings"].values())


def test_update_baseline_drops_fixed_entries(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    baseline = tmp_path / "baseline.json"
    assert main([str(pkg), "--root", str(tmp_path),
                 "--write-baseline", str(baseline)]) == 0
    (pkg / "mod.py").write_text(CLEAN)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--update-baseline", str(baseline)]) == 0
    assert json.loads(baseline.read_text())["findings"] == {}


def test_write_and_update_baseline_are_exclusive(tmp_path):
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--write-baseline", "--update-baseline"]) == 2


def test_github_format_emits_annotations(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--format=github", "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=pkg/mod.py,line=5,")
    assert "title=repro-lint wall-clock::" in out


def test_github_format_is_silent_when_clean(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--format=github", "--root", str(tmp_path)]) == 0
    assert capsys.readouterr().out == ""


def test_json_flag_conflicts_with_other_formats(tmp_path):
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--json", "--format=github"]) == 2


def test_graph_dump(tmp_path, capsys):
    pkg = tmp_path / "src" / "repro" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(
        "def callee():\n    return 1\n\n\ndef caller():\n"
        "    return callee()\n")
    assert main([str(tmp_path), "--graph", "--root", str(tmp_path)]) == 0
    dot = capsys.readouterr().out
    assert '"repro.pkg.mod.caller" -> "repro.pkg.mod.callee"' in dot
    assert main([str(tmp_path), "--graph=json",
                 "--root", str(tmp_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert any(edge["caller"] == "repro.pkg.mod.caller"
               for edge in payload["edges"])


def test_sarif_report_shape(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--format=sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    [run] = payload["runs"]
    results = run["results"]
    assert any(r["ruleId"] == "wall-clock" for r in results)
    uris = {r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in results}
    assert uris == {"pkg/mod.py"}
    assert all(r["baselineState"] == "new" for r in results)


def test_json_flag_conflicts_with_sarif_format(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--json", "--format=sarif"]) == 2
