"""CLI contract: exit codes, JSON output, baseline workflow."""

import json

from repro.analysis.cli import main

VIOLATION = "import time\n\n\ndef wait():\n    time.sleep(1)\n"
CLEAN = "def wait(clock):\n    clock.sleep(1)\n"


def _write_pkg(tmp_path, source):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "mod.py").write_text(source)
    return pkg


def test_clean_tree_exits_zero(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--root", str(tmp_path)]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_violation_exits_one_with_human_report(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "1 new finding(s)" in out
    assert "wall-clock" in out
    assert "pkg/mod.py" in out


def test_json_report_shape(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--json", "--root", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["files_scanned"] == 1
    [finding] = payload["new"]
    assert finding["rule"] == "wall-clock"
    assert finding["path"] == "pkg/mod.py"
    assert finding["line"] == 5
    assert payload["counters"]["lint.findings.wall-clock"] == 1


def test_write_then_gate_with_baseline(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    baseline = tmp_path / "baseline.json"
    assert main([str(pkg), "--root", str(tmp_path),
                 "--write-baseline", str(baseline)]) == 0
    # grandfathered: the same tree now gates clean
    assert main([str(pkg), "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out
    # a *new* violation still fails the gate
    (pkg / "mod2.py").write_text(VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--baseline", str(baseline)]) == 1


def test_disable_rule(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, VIOLATION)
    assert main([str(pkg), "--root", str(tmp_path),
                 "--disable", "wall-clock"]) == 0


def test_usage_errors_exit_two(tmp_path, capsys):
    assert main(["--disable", "no-such-rule", str(tmp_path)]) == 2
    assert main([str(tmp_path / "missing")]) == 2
    pkg = _write_pkg(tmp_path, CLEAN)
    assert main([str(pkg), "--baseline", str(tmp_path / "nope.json")]) == 2


def test_list_rules_names_all_six(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("wall-clock", "unseeded-random", "set-iteration",
                 "swallowed-transport-error", "retry-without-backoff",
                 "deadline-dropped"):
        assert rule in out


def test_parse_error_exits_one(tmp_path, capsys):
    pkg = _write_pkg(tmp_path, "def broken(:\n")
    assert main([str(pkg), "--root", str(tmp_path)]) == 1
    assert "parse error" in capsys.readouterr().out
