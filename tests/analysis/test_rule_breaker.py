"""breaker-unrecorded-outcome: gated admission, discharge, exemptions."""

from tests.analysis.conftest import lint

RULE = "breaker-unrecorded-outcome"


def test_admitted_then_early_return_flagged():
    findings = lint("""
        def call(self, node_id):
            breaker = self.breaker_for(node_id)
            if not breaker.allow():
                return None
            if self.deadline_expired():
                return None
            result = self.do_call(node_id)
            breaker.record_success()
            return result
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert findings[0].line == 4   # anchored at the allow() call


def test_rejected_path_carries_no_obligation():
    findings = lint("""
        def call(self, node_id):
            if not self.breaker.allow():
                return None
            self.breaker.record_success()
            return True
    """, RULE)
    assert findings == []


def test_success_and_failure_arms_are_clean():
    findings = lint("""
        def call(self):
            if not self.breaker.allow():
                return None
            try:
                result = self.invoke_remote()
            except ConnectionError:
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            return result
    """, RULE)
    assert findings == []


def test_failure_arm_swallowing_without_record_flagged():
    findings = lint("""
        def call(self):
            if not self.breaker.allow():
                return None
            try:
                result = self.invoke_remote()
            except ConnectionError:
                return None
            self.breaker.record_success()
            return result
    """, RULE)
    assert len(findings) == 1


def test_breakers_are_matched_per_instance():
    # recording on a different breaker does not discharge
    findings = lint("""
        def call(self):
            if not self.read_breaker.allow():
                return None
            self.write_breaker.record_success()
            return True
    """, RULE)
    assert len(findings) == 1


def test_resilience_module_is_exempt():
    findings = lint("""
        def allow(self):
            if not self.breaker.allow():
                return False
            return True
    """, RULE, rel_path="src/repro/common/resilience.py")
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        def probe(self):
            if self.breaker.allow():  # repro-lint: disable=breaker-unrecorded-outcome
                self.do_probe()
            return None
    """, RULE)
    assert findings == []
