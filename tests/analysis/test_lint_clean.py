"""The CI gate: ``src/repro`` must stay repro-lint clean.

This test is what turns repro-lint from advice into an invariant —
``PYTHONPATH=src python -m pytest`` fails the moment someone lands a
wall-clock call, an unseeded RNG, a hash-order fan-out, a swallowed
transport error, an unpaced retry loop, or a dropped deadline that is
not either fixed, pragma-justified in place, or consciously
grandfathered into ``lint-baseline.json``.
"""

import shutil

from repro.analysis import Analyzer, Baseline
from repro.analysis.baseline import DEFAULT_BASELINE_NAME
from tests.analysis.test_lint_clean_support import REPO_ROOT, SRC_REPRO


def _load_baseline() -> Baseline:
    path = REPO_ROOT / DEFAULT_BASELINE_NAME
    return Baseline.load(path) if path.exists() else Baseline()


def test_src_repro_has_no_new_findings():
    analyzer = Analyzer(root=REPO_ROOT)
    report = analyzer.run([SRC_REPRO])
    assert report.files_scanned > 80  # the scan really covered the tree
    assert not report.parse_errors, report.parse_errors
    new, _ = _load_baseline().split(report.findings)
    assert not new, "new repro-lint findings (fix, pragma, or baseline):\n" \
        + "\n".join(f.render() for f in new)


def test_baseline_stays_near_empty():
    # grandfathering is for adoption, not a dumping ground: the
    # committed baseline must not quietly accumulate debt
    allowance = sum(_load_baseline().allowances.values())
    assert allowance <= 5, (
        f"lint-baseline.json grandfathers {allowance} findings; "
        "fix some before adding more")


def test_analysis_package_passes_its_own_lint():
    """The analyzer is scanned by its own rules — the linter must meet
    the determinism bar it enforces (its two perf_counter timing reads
    are pragma-justified in place, which this test also exercises).
    The auditor rides in the same gate: one project, so call chains
    crossing between the two packages resolve instead of dangling."""
    analyzer = Analyzer(root=REPO_ROOT)
    report = analyzer.run([SRC_REPRO / "analysis", SRC_REPRO / "audit"])
    assert report.files_scanned >= 16
    assert not report.parse_errors, report.parse_errors
    new, _ = _load_baseline().split(report.findings)
    assert not new, "\n".join(f.render() for f in new)
    assert report.suppressed >= 2   # the justified perf_counter reads


def test_migration_package_is_lint_clean():
    """The migration subsystem post-dates the linter, so it gets no
    grandfathering at all: zero findings, not zero *new* findings."""
    analyzer = Analyzer(root=REPO_ROOT)
    report = analyzer.run([SRC_REPRO / "migration"])
    assert report.files_scanned >= 6
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, "\n".join(f.render() for f in report.findings)


def test_audit_package_is_lint_clean():
    """The consistency auditor post-dates the linter too: zero findings
    — and implicitly, its LAYER_CONTRACT row (no simnet, no migration)
    holds for every import in the package."""
    analyzer = Analyzer(root=REPO_ROOT)
    report = analyzer.run([SRC_REPRO / "audit"])
    assert report.files_scanned >= 6
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, "\n".join(f.render() for f in report.findings)


def test_streams_package_is_lint_clean():
    """The stream-processing tier post-dates the linter: zero findings
    — and implicitly, its LAYER_CONTRACT row (kafka/helix/zookeeper
    only, never simnet) holds for every import in the package.  Its two
    single-writer offset updates in the poll loop are pragma-justified
    in place, which this gate also exercises."""
    analyzer = Analyzer(root=REPO_ROOT)
    report = analyzer.run([SRC_REPRO / "streams"])
    assert report.files_scanned >= 7
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, "\n".join(f.render() for f in report.findings)
    assert report.suppressed >= 1   # the justified poll-loop writes


def test_layering_contract_matches_reality():
    """The committed contract and the actual import graph agree —
    checked whole-repo, not per file, so a contract row nobody uses
    anymore is at least visible here while debugging."""
    import ast
    from repro.analysis.architecture import (
        build_import_graph, contract_violations)
    sources = []
    for path in sorted(SRC_REPRO.rglob("*.py")):
        rel = path.relative_to(REPO_ROOT).as_posix()
        sources.append((rel, ast.parse(path.read_text(encoding="utf-8"))))
    graph = build_import_graph(sources)
    assert len(graph) >= 10   # the sweep covered the packages
    assert contract_violations(graph) == []


def test_gate_catches_a_seeded_violation(tmp_path):
    """Prove the gate has teeth: plant a ``time.sleep`` in a copy of
    ``src/repro/kafka`` and watch the same analysis fail it."""
    seeded = tmp_path / "kafka"
    shutil.copytree(SRC_REPRO / "kafka", seeded)
    broker = seeded / "broker.py"
    broker.write_text(
        broker.read_text(encoding="utf-8")
        + "\n\nimport time\n\n\ndef _throttle():\n    time.sleep(0.01)\n",
        encoding="utf-8")
    report = Analyzer(root=tmp_path).run([seeded])
    new, _ = _load_baseline().split(report.findings)
    assert any(f.rule == "wall-clock" and f.path.endswith("broker.py")
               for f in new)
