"""``escaped-internal-error``: the taxonomy at the public boundary."""

TAXONOMY = """
    class ReproError(Exception):
        pass

    class KeyNotFoundError(ReproError, KeyError):
        pass
"""


def findings_of(files, tmp_path):
    from tests.analysis.conftest import lint_project
    return lint_project(files, "escaped-internal-error", tmp_path)


def test_builtin_escaping_exported_api_is_flagged(tmp_path):
    files = {
        "src/repro/pkg/__init__.py": "from repro.pkg.mod import Server\n",
        "src/repro/pkg/mod.py": """
            class Server:
                def get(self, store, key):
                    if key not in store:
                        raise KeyError(key)
                    return store[key]
        """,
    }
    findings = findings_of(files, tmp_path)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "escaped-internal-error"
    assert "KeyError" in finding.message
    assert "Server.get" in finding.message
    # anchored at the raise site, where the fix lands
    assert finding.path == "src/repro/pkg/mod.py"
    assert "raise KeyError" in finding.snippet


def test_taxonomy_error_passes(tmp_path):
    files = {
        "src/repro/pkg/errors.py": TAXONOMY,
        "src/repro/pkg/__init__.py": "from repro.pkg.mod import Server\n",
        "src/repro/pkg/mod.py": """
            from repro.pkg.errors import KeyNotFoundError

            class Server:
                def get(self, store, key):
                    if key not in store:
                        raise KeyNotFoundError(key)
                    return store[key]
        """,
    }
    assert findings_of(files, tmp_path) == []


def test_raise_escaping_through_a_private_helper(tmp_path):
    # the raise lives three frames down in unexported helpers; only the
    # boundary function makes it a contract violation
    files = {
        "src/repro/pkg/__init__.py": "from repro.pkg.mod import api\n",
        "src/repro/pkg/mod.py": """
            def _parse(raw):
                if not raw:
                    raise ValueError("empty")
                return raw

            def _load(raw):
                return _parse(raw)

            def api(raw):
                return _load(raw)
        """,
    }
    findings = findings_of(files, tmp_path)
    assert len(findings) == 1
    chain = findings[0].chain
    assert chain[0].caller.endswith(".api")
    assert chain[-1].caller.endswith("._parse")


def test_unexported_module_may_raise_builtins(tmp_path):
    files = {
        "src/repro/pkg/mod.py": """
            def internal(raw):
                if not raw:
                    raise ValueError("empty")
                return raw
        """,
    }
    assert findings_of(files, tmp_path) == []


def test_handled_builtin_does_not_escape(tmp_path):
    files = {
        "src/repro/pkg/__init__.py": "from repro.pkg.mod import api\n",
        "src/repro/pkg/mod.py": """
            def _parse(raw):
                if not raw:
                    raise ValueError("empty")
                return raw

            def api(raw):
                try:
                    return _parse(raw)
                except ValueError:
                    return None
        """,
    }
    assert findings_of(files, tmp_path) == []


def test_allowed_escapes_pass(tmp_path):
    files = {
        "src/repro/pkg/__init__.py": "from repro.pkg.mod import Proto\n",
        "src/repro/pkg/mod.py": """
            class Proto:
                def encode(self, datum):
                    raise NotImplementedError
        """,
    }
    assert findings_of(files, tmp_path) == []


def test_pragma_at_raise_site_suppresses(tmp_path):
    files = {
        "src/repro/pkg/__init__.py": "from repro.pkg.mod import api\n",
        "src/repro/pkg/mod.py": """
            def api(raw):
                if not raw:
                    # the raw builtin IS the contract here
                    raise ValueError("empty")  \
# repro-lint: disable=escaped-internal-error
                return raw
        """,
    }
    assert findings_of(files, tmp_path) == []
