"""Shared helpers for the repro-lint test suite."""

import textwrap

from repro.analysis import Analyzer, all_rules


def lint(source: str, rule: str | None = None,
         rel_path: str = "src/repro/pkg/mod.py") -> list:
    """Run the analyzer over a synthetic source string.

    ``rule`` restricts the run to one rule (the per-rule unit tests);
    None runs the full registry (the integration-style tests).
    """
    rules = all_rules()
    if rule is not None:
        rules = [r for r in rules if r.name == rule]
        assert rules, f"unknown rule {rule!r}"
    analyzer = Analyzer(rules=rules)
    return analyzer.check_source(textwrap.dedent(source), rel_path)
