"""Shared helpers for the repro-lint test suite."""

import textwrap

from repro.analysis import Analyzer, all_rules
from repro.analysis.callgraph import Project
from repro.analysis.core import FileContext


def lint(source: str, rule: str | None = None,
         rel_path: str = "src/repro/pkg/mod.py") -> list:
    """Run the analyzer over a synthetic source string.

    ``rule`` restricts the run to one rule (the per-rule unit tests);
    None runs the full registry (the integration-style tests).
    """
    rules = all_rules()
    if rule is not None:
        rules = [r for r in rules if r.name == rule]
        assert rules, f"unknown rule {rule!r}"
    analyzer = Analyzer(rules=rules)
    return analyzer.check_source(textwrap.dedent(source), rel_path)


def project_of(files: dict[str, str]) -> Project:
    """Build a :class:`Project` from ``rel_path -> source`` pairs."""
    contexts = [FileContext.parse(textwrap.dedent(source), rel_path)
                for rel_path, source in files.items()]
    return Project(contexts)


def lint_project(files: dict[str, str], rule: str, tmp_path) -> list:
    """End-to-end analyzer run over synthetic files on disk, restricted
    to one project rule (exercises the pragma/suppression path)."""
    for rel_path, source in files.items():
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [r for r in all_rules() if r.name == rule]
    assert rules, f"unknown rule {rule!r}"
    analyzer = Analyzer(rules=rules, root=tmp_path)
    return analyzer.run([tmp_path]).findings
