"""layering-contract: the committed layer map governs imports."""

from tests.analysis.conftest import lint
from repro.analysis.architecture import (
    LAYER_CONTRACT,
    allowed_imports,
    build_import_graph,
    contract_violations,
    package_of,
)

RULE = "layering-contract"


def test_cross_system_import_flagged():
    findings = lint(
        "from repro.voldemort.server import VoldemortServer\n",
        RULE, rel_path="src/repro/kafka/bridge.py")
    assert [f.rule for f in findings] == [RULE]
    assert "kafka" in findings[0].message
    assert "repro.voldemort" in findings[0].message


def test_relative_import_resolves_to_package():
    findings = lint(
        "from ..voldemort.server import VoldemortServer\n",
        RULE, rel_path="src/repro/kafka/bridge.py")
    assert len(findings) == 1


def test_plain_import_statement_flagged():
    findings = lint(
        "import repro.kafka.broker\n",
        RULE, rel_path="src/repro/simnet/hooks.py")
    assert len(findings) == 1


def test_paper_edges_are_legal():
    findings = lint(
        "from repro.databus.relay import DatabusRelay\n"
        "from repro.helix.controller import HelixController\n"
        "from repro.common.errors import NodeUnavailableError\n",
        RULE, rel_path="src/repro/espresso/replication.py")
    assert findings == []


def test_own_package_and_common_always_legal():
    findings = lint(
        "from repro.kafka.log import PartitionLog\n"
        "from repro.common.clock import Clock\n"
        "from .broker import Broker\n",
        RULE, rel_path="src/repro/kafka/consumer.py")
    assert findings == []


def test_type_checking_imports_exempt():
    findings = lint("""
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from repro.voldemort.server import VoldemortServer
    """, RULE, rel_path="src/repro/kafka/types.py")
    assert findings == []


def test_files_outside_a_package_are_skipped():
    findings = lint(
        "from repro.voldemort.server import VoldemortServer\n",
        RULE, rel_path="tests/conftest.py")
    assert findings == []


def test_package_of_path_shapes():
    assert package_of("src/repro/kafka/log.py") == "kafka"
    assert package_of("repro/kafka/log.py") == "kafka"
    assert package_of("src/repro/__init__.py") is None
    assert package_of("scripts/run.py") is None


def test_contract_is_closed_over_known_packages():
    # every package named in a contract row is itself a contract key
    for package, allowed in LAYER_CONTRACT.items():
        for target in allowed:
            assert target in LAYER_CONTRACT, (package, target)
    assert "common" in allowed_imports("kafka")
    assert "kafka" in allowed_imports("kafka")
    assert "voldemort" not in allowed_imports("kafka")


def test_import_graph_and_violation_helper():
    import ast
    sources = [
        ("src/repro/kafka/a.py",
         ast.parse("from repro.voldemort.server import S\n")),
        ("src/repro/espresso/b.py",
         ast.parse("from repro.databus.relay import R\n")),
    ]
    graph = build_import_graph(sources)
    assert graph["kafka"]["voldemort"] == 1
    assert contract_violations(graph) == [("kafka", "voldemort", 1)]
