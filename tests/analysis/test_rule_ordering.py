"""set-iteration rule: true positives, true negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "set-iteration"


def test_for_over_set_literal_flagged():
    findings = lint("""
        for node in {"a", "b", "c"}:
            send(node)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]


def test_for_over_set_call_flagged():
    findings = lint("""
        def fan_out(replicas):
            for node in set(replicas):
                send(node)
    """, RULE)
    assert len(findings) == 1


def test_for_over_set_bound_name_flagged():
    findings = lint("""
        def fan_out(current, target):
            pending = set(current) | set(target)
            for node in pending:
                send(node)
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_list_comp_and_list_call_flagged():
    findings = lint("""
        def snapshot(members):
            alive = {m for m in members}
            ordered = [m.name for m in alive]
            copy = list(alive)
            return ordered, copy
    """, RULE)
    assert len(findings) == 2


def test_sorted_iteration_is_clean():
    findings = lint("""
        def fan_out(current, target):
            pending = set(current) | set(target)
            for node in sorted(pending):
                send(node)
            ordered = sorted([n for n in range(3)])
    """, RULE)
    assert findings == []


def test_sorted_wrapping_is_clean():
    findings = lint("""
        def snapshot(members):
            alive = set(members)
            return sorted(list(alive)), sorted([m for m in alive])
    """, RULE)
    assert findings == []


def test_membership_and_rebinding_are_clean():
    findings = lint("""
        def route(replicas, down):
            down_set = set(down)
            if replicas[0] in down_set:
                return None
            order = set(replicas)
            order = sorted(order)  # rebound to a list: defined order
            for node in order:
                send(node)
    """, RULE)
    assert findings == []


def test_nested_scopes_do_not_leak_bindings():
    # `s` is a set only in outer(); inner()'s s is a list
    findings = lint("""
        def outer(xs):
            s = set(xs)
            def inner(s):
                for x in s:
                    use(x)
            return inner
    """, RULE)
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        def fan_out(replicas):
            for node in set(replicas):  # repro-lint: disable=set-iteration
                send(node)
    """, RULE)
    assert findings == []
