"""unseeded-random rule: true positives, true negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "unseeded-random"


def test_module_level_call_flagged():
    findings = lint("""
        import random
        x = random.random()
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "global" in findings[0].message


def test_module_level_choice_and_shuffle_flagged():
    findings = lint("""
        import random
        random.shuffle(items)
        y = random.choice(items)
        z = random.randint(0, 10)
    """, RULE)
    assert len(findings) == 3


def test_unseeded_random_instance_flagged():
    findings = lint("""
        import random
        rng = random.Random()
    """, RULE)
    assert len(findings) == 1
    assert "seed" in findings[0].message


def test_system_random_flagged():
    findings = lint("""
        import random
        rng = random.SystemRandom()
    """, RULE)
    assert len(findings) == 1


def test_from_import_resolved():
    findings = lint("""
        from random import randint
        n = randint(1, 6)
    """, RULE)
    assert len(findings) == 1


def test_seeded_instance_is_clean():
    findings = lint("""
        import random
        rng = random.Random(42)
        other = random.Random(seed)
        kw = random.Random(x=1)
    """, RULE)
    assert findings == []


def test_instance_method_calls_are_clean():
    # calls on a local variable are not the module-level RNG; the
    # linter cannot know the type and must not guess
    findings = lint("""
        def jitter(self):
            return self._rng.random() * rng.uniform(0, 1)
    """, RULE)
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        import random
        x = random.random()  # repro-lint: disable=unseeded-random
    """, RULE)
    assert findings == []
