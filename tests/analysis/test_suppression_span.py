"""Pragma suppression over multi-line statements.

A finding anchors on its node's *first* line, but a trailing pragma
comment naturally lands on whatever line the statement ends on — so
suppression checks the whole node span, not just the anchor line.
"""

from tests.analysis.conftest import lint


def test_pragma_on_last_line_of_multiline_call_suppresses():
    findings = lint("""
        import time

        def slow(self):
            time.sleep(
                self.interval,
            )  # repro-lint: disable=wall-clock
    """)
    assert [f for f in findings if f.rule == "wall-clock"] == []


def test_pragma_on_anchor_line_still_works():
    findings = lint("""
        import time

        def slow(self):
            time.sleep(  # repro-lint: disable=wall-clock
                self.interval,
            )
    """)
    assert [f for f in findings if f.rule == "wall-clock"] == []


def test_pragma_on_middle_line_of_span_suppresses():
    findings = lint("""
        import time

        def slow(self):
            time.sleep(
                self.interval,  # repro-lint: disable=wall-clock
            )
    """)
    assert [f for f in findings if f.rule == "wall-clock"] == []


def test_pragma_outside_the_span_does_not_suppress():
    findings = lint("""
        import time

        def slow(self):
            # repro-lint: disable=wall-clock
            time.sleep(self.interval)
    """)
    assert [f.rule for f in findings if f.rule == "wall-clock"] == ["wall-clock"]


def test_pragma_for_a_different_rule_does_not_suppress():
    findings = lint("""
        import time

        def slow(self):
            time.sleep(
                self.interval,
            )  # repro-lint: disable=unseeded-random
    """)
    assert [f.rule for f in findings if f.rule == "wall-clock"] == ["wall-clock"]


def test_multiline_import_pragma_suppresses_layering():
    findings = lint("""
        from repro.voldemort.server import (
            VoldemortServer,
        )  # repro-lint: disable=layering-contract
    """, rel_path="src/repro/kafka/bridge.py")
    assert [f for f in findings if f.rule == "layering-contract"] == []


def test_finding_records_its_span():
    findings = lint("""
        import time

        def slow(self):
            time.sleep(
                self.interval,
            )
    """)
    [finding] = [f for f in findings if f.rule == "wall-clock"]
    assert finding.end_line >= finding.line + 2
