# rule: durability-unsynced-ack
# Advancing a recovery watermark is an ack in disguise: after a crash,
# recovery trusts the watermark, but the log frames backing it were
# never forced to disk.


def apply_window(self, window):
    self.commit_wal.append(encode(window))
    self.partition_watermark[window.partition] = window.scn  # BAD
    self.commit_wal.fsync()
