# rule: durability-unsynced-ack
# An exception between append and fsync is fine if it propagates — but
# this handler converts it into a *normal return*, which the caller
# reads as an (n)ack while the log tail is still unsynced and may be
# resurrected as garbage by a later append.


def ingest(self, record):
    try:
        self.wal.append(frame(record))  # BAD
        self.index.update(record)
    except KeyError:
        return False
    self.wal.fsync()
    return True
