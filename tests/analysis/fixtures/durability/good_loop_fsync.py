# rule: durability-unsynced-ack
# The fsync is lexically *before* the append, which tripped the PR 3
# heuristic as a false positive — but on the CFG every path from the
# append loops back through the fsync before the ack, and a while-True
# loop has no normal exit for the obligation to escape through.


def run_forever(self):
    while True:
        batch = self.take_batch()
        self.wal.fsync()
        self.acknowledge(batch)
        for record in batch:
            self.wal.append(record)
