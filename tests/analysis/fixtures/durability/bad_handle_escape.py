# rule: durability-unsynced-ack
# The handle is a local with an innocent name, but dataflow knows it
# came from disk.open(): closing without fsync leaves the checkpoint
# in the page cache while the caller is told it is durable.


def checkpoint(self, state):
    handle = self.disk.open("ckpt.tmp", "wb")
    handle.write(serialize(state))  # BAD
    handle.close()
    return True
