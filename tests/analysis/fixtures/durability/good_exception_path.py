# rule: durability-unsynced-ack
# The validation branch leaves with staged-but-unsynced bytes — by
# raising.  No ack happens on an exceptional exit, so the obligation
# is excused there; the normal path fsyncs.


def stage(self, record):
    self.wal.append(frame(record))
    if not self.validate(record):
        raise ValueError(record)
    self.wal.fsync()
