# rule: durability-unsynced-ack
# The fsync sits lexically *after* the append, so the PR 3 line-based
# heuristic accepted this function — but it only runs on the urgent
# branch.  The plain branch returns (acks) bytes still in page cache.


def commit(self, record, urgent):
    self.wal.append(frame(record))  # BAD
    if urgent:
        self.wal.fsync()
    return True
