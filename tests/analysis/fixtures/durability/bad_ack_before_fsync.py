# rule: durability-unsynced-ack
# The fsync does arrive on every path — but the ack fires first, so a
# crash in the window between them loses an acknowledged write.


def commit(self, record):
    self.wal.append(frame(record))
    self.send_ack(record)  # BAD
    self.wal.fsync()
