# rule: durability-unsynced-ack
# The good twin of bad_handle_escape: write, fsync, then publish via
# atomic rename.  The with-bound handle is tracked the same way.


def checkpoint(self, state):
    with self.disk.open("ckpt.tmp", "wb") as handle:
        handle.write(serialize(state))
        handle.fsync()
    self.disk.replace("ckpt.tmp", "ckpt")
