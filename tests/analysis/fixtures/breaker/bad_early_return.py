# rule: breaker-unrecorded-outcome
# The shape of the real bug fixed in voldemort/routing.py: the breaker
# admits the call, then a deadline check exits early.  The admitted
# slot (a half-open probe!) is consumed with no outcome ever recorded,
# so the breaker can stay open forever.


def call_node(self, node_id, deadline):
    breaker = self.breaker_for(node_id)
    if not breaker.allow():  # BAD
        return None
    timeout = self.hop_timeout(deadline)
    if timeout is not None and timeout <= 0:
        return None
    result = self.do_call(node_id, timeout)
    breaker.record_success()
    return result
