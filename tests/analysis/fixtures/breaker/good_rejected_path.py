# rule: breaker-unrecorded-outcome
# The canonical shape: the rejected return carries no obligation (the
# breaker admitted nothing), and the admitted path records on both the
# success and the failure arm.


def call_node(self, node_id):
    breaker = self.breaker_for(node_id)
    if not breaker.allow():
        return None
    try:
        result = self.do_call(node_id)
    except OSError:
        breaker.record_failure()
        raise
    breaker.record_success()
    return result
