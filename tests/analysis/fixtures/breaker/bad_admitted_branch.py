# rule: breaker-unrecorded-outcome
# Positive gate: the True branch is the admitted one, and it falls off
# the end of the function without recording what happened.


def probe(self):
    if self.breaker.allow():  # BAD
        self.do_probe()
    return None
