# rule: breaker-unrecorded-outcome
# reset() is an explicit state transition, so it discharges the
# obligation the same way record_success/record_failure do.


def probe(self):
    if self.breaker.allow():
        self.do_probe()
        self.breaker.reset()
    return None
