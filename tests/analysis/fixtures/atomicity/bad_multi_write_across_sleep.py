# rule: non-atomic-multi-write
# Two coupled stores with a yield point between them and no journal
# record: a crash during the sleep observes the first without the
# second.


class Controller:
    def __init__(self, clock):
        self.clock = clock
        self.phase = "idle"
        self.entered_at = 0.0

    def apply(self, phase, now):
        self.phase = phase
        self.clock.sleep(0.1)
        self.entered_at = now  # BAD
