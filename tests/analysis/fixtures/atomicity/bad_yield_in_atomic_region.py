# rule: yield-in-atomic-section
# A # repro-atomic region must not reach the scheduler — here the
# yield hides one call frame down.


class Node:
    def __init__(self, disk):
        self.disk = disk
        self.phase = "idle"

    def _flush(self):
        self.disk.fsync()

    def transition(self, phase):
        # repro-atomic: begin
        self.phase = phase
        self._flush()  # BAD
        # repro-atomic: end
