# rule: atomicity-violation
# The post-yield store is recomputed from mutable state read *after*
# the yield, so it is fresh — not a stale write-back.


class Log:
    def __init__(self, disk):
        self.disk = disk
        self.end = 0
        self.high = 0
        self.mark = 0

    def note(self, n):
        self.end = n

    def roll_to(self, offset):
        self.mark = offset

    def flush(self):
        self.roll_to(self.high)
        self.disk.fsync()
        self.high = self.end
