# rule: yield-in-atomic-section
# The decorator is a proof obligation: a marked function must contain
# no transitive yield point at all.

from repro.common.atomic import atomic_section


class Node:
    def __init__(self, disk):
        self.disk = disk
        self.docs = []

    @atomic_section
    def publish(self, doc):
        self.docs.append(doc)
        self.disk.fsync()  # BAD
