# rule: yield-in-atomic-section
# A marked function whose whole call tree stays on-CPU discharges the
# obligation.

from repro.common.atomic import atomic_section


class Node:
    def __init__(self):
        self.docs = []
        self.count = 0

    def _tally(self):
        self.count = len(self.docs)

    @atomic_section
    def publish(self, doc):
        self.docs.append(doc)
        self._tally()
