# rule: atomicity-violation
# Check-then-act without a stale local: the attribute is read in the
# guard, the fsync yields, and the store lands with no re-read.


class Node:
    def __init__(self, disk):
        self.disk = disk
        self.scn = 0

    def commit(self, scn):
        if self.scn != scn - 1:
            raise ValueError("gap")
        self.disk.fsync()
        self.scn = scn  # BAD
