# rule: yield-in-atomic-section
# Plain stores inside the region; the flush happens after the region
# closes.


class Node:
    def __init__(self, disk):
        self.disk = disk
        self.phase = "idle"
        self.entered_at = 0.0

    def transition(self, phase, now):
        # repro-atomic: begin
        self.phase = phase
        self.entered_at = now
        # repro-atomic: end
        self.disk.fsync()
