# rule: atomicity-violation
# A local bound from mutable self state crosses a *transitive* yield
# (the sleep is one call frame down) and is written back afterwards.


class Store:
    def __init__(self, clock):
        self.clock = clock
        self.progress = 0

    def _pump(self):
        self.clock.sleep(0.5)

    def advance(self, n):
        cur = self.progress
        self._pump()
        self.progress = cur + n  # BAD
