# rule: atomicity-violation
# Same shape as the bad twin, but the attribute is re-read after the
# yield returns: revalidation clears the path.


class Store:
    def __init__(self, clock):
        self.clock = clock
        self.progress = 0

    def _pump(self):
        self.clock.sleep(0.5)

    def advance(self, n):
        cur = self.progress
        self._pump()
        if self.progress != cur:
            return
        self.progress = cur + n
