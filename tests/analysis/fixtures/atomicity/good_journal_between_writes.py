# rule: non-atomic-multi-write
# The journal record between the writes makes the pair recoverable:
# replay restores the second write after a crash in the sleep.


class Controller:
    def __init__(self, clock, journal):
        self.clock = clock
        self.journal = journal
        self.phase = "idle"
        self.entered_at = 0.0

    def apply(self, phase, now):
        self.phase = phase
        self.journal.record(phase, now)
        self.clock.sleep(0.1)
        self.entered_at = now
