# rule: layering-contract
# path: src/repro/kafka/types.py
# TYPE_CHECKING imports are annotation-only and never execute; they
# are the sanctioned way to type against a package outside the
# contract.
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.voldemort.server import VoldemortServer
