# rule: layering-contract
# path: src/repro/kafka/bridge.py
# One system reaching into another system's internals: Kafka has no
# contract edge to Voldemort (absolute or relative spelling).
from repro.common.errors import NodeUnavailableError
from repro.voldemort.server import VoldemortServer  # BAD
from ..voldemort.cluster import VoldemortCluster  # BAD
