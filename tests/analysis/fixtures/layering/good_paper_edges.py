# rule: layering-contract
# path: src/repro/espresso/replication.py
# Every edge here is in the committed contract: Espresso replicates
# through Databus, is coordinated by Helix, and sits on common.
from repro.common.errors import NodeUnavailableError
from repro.databus.relay import DatabusRelay
from repro.helix.controller import HelixController
from repro.espresso.router import EspressoRouter
