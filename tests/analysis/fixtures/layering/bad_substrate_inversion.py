# rule: layering-contract
# path: src/repro/simnet/hooks.py
# The simulation substrate importing a system built on top of it is a
# layering inversion: simnet must be hostable by every system.
import repro.kafka.broker  # BAD
