# rule: stale-read-across-rpc
# Deciding *before* the network call is fine: nothing has had a chance
# to go stale yet.


def ping_if_leader(self):
    role = self.role
    if role == "leader":
        self.net.send(self.peer_name, "ping")
    return role
