# rule: stale-read-across-rpc
# The fix for bad_check_then_act: re-read the shared value once the
# call returns; the redefinition kills the stale path.


def advance(self):
    current = self.partition_scn
    self.net.invoke(self.relay_pull, current)
    current = self.partition_scn
    if current < self.high_water:
        self.apply(current)
