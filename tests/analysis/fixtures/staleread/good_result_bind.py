# rule: stale-read-across-rpc
# Binding the RPC *result* and branching on it is the re-read pattern,
# not the bug: the value is as fresh as it can be.


def check(self):
    status = self.net.invoke(self.peer_status)
    if status:
        self.mark_alive()
