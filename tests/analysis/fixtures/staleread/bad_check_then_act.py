# rule: stale-read-across-rpc
# Check-then-act across the network: the SCN is read before the relay
# round-trip and drives the branch after it.  Another replica may have
# advanced it while the call was in flight.


def advance(self):
    current = self.partition_scn
    self.net.invoke(self.relay_pull, current)
    if current < self.high_water:  # BAD
        self.apply(current)
