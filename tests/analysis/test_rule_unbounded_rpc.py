"""``unbounded-rpc``: interprocedural deadline-threading enforcement."""

BAD = {
    "src/repro/pkg/mod.py": """
        class Client:
            def __init__(self, network):
                self.network = network

            def _push(self, key):
                return self.network.invoke(key)

            def flush(self, keys, deadline):
                deadline.check()
                for key in keys:
                    self._push(key)
    """,
}

GOOD = {
    "src/repro/pkg/mod.py": """
        class Client:
            def __init__(self, network):
                self.network = network

            def _push(self, key, deadline):
                timeout = deadline.clamp(1.0)
                return self.network.invoke(key, timeout=timeout)

            def flush(self, keys, deadline):
                deadline.check()
                for key in keys:
                    self._push(key, deadline)
    """,
}


def findings_of(files, tmp_path):
    from tests.analysis.conftest import lint_project
    return lint_project(files, "unbounded-rpc", tmp_path)


def test_dropped_call_edge_is_flagged(tmp_path):
    findings = findings_of(BAD, tmp_path)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "unbounded-rpc"
    assert "flush" in finding.message
    assert finding.chain, "finding must carry the witness chain"
    assert finding.chain[0].callee.endswith("Client._push")
    assert finding.chain[-1].callee == "<invoke>"


def test_forwarded_deadline_is_clean(tmp_path):
    assert findings_of(GOOD, tmp_path) == []


def test_pragma_on_dropping_call_suppresses(tmp_path):
    files = {
        "src/repro/pkg/mod.py": BAD["src/repro/pkg/mod.py"].replace(
            "self._push(key)",
            "self._push(key)  # repro-lint: disable=unbounded-rpc"),
    }
    assert findings_of(files, tmp_path) == []


def test_pragma_on_chain_frame_suppresses(tmp_path):
    # suppressing at the *RPC* frame, not the anchor, also works: any
    # frame of the chain may own the exemption
    files = {
        "src/repro/pkg/mod.py": BAD["src/repro/pkg/mod.py"].replace(
            "return self.network.invoke(key)",
            "return self.network.invoke(key)"
            "  # repro-lint: disable=unbounded-rpc"),
    }
    assert findings_of(files, tmp_path) == []


def test_deadline_dropped_only_at_one_frame(tmp_path):
    # the helper forwards correctly; only the middle frame drops —
    # exactly one finding, anchored at the dropping call
    files = {
        "src/repro/pkg/mod.py": """
            class Client:
                def __init__(self, network):
                    self.network = network

                def _push(self, key, deadline):
                    timeout = deadline.clamp(1.0)
                    return self.network.invoke(key, timeout=timeout)

                def _middle(self, key, deadline):
                    return self._push(key, deadline)

                def flush(self, keys, deadline):
                    deadline.check()
                    for key in keys:
                        self._middle(key, None)
        """,
    }
    findings = findings_of(files, tmp_path)
    assert len(findings) == 1
    assert "flush" in findings[0].message
