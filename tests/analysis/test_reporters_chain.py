"""Multi-frame findings render in every reporter format."""

import json

from repro.analysis.core import Finding, Frame, LintReport
from repro.analysis.reporters import render_github, render_json, render_text
from repro.common.metrics import MetricsRegistry

CHAIN = (
    Frame(path="src/repro/pkg/mod.py", line=12,
          caller="repro.pkg.mod.Client.flush",
          callee="repro.pkg.mod.Client._push"),
    Frame(path="src/repro/pkg/mod.py", line=6,
          caller="repro.pkg.mod.Client._push", callee="<invoke>"),
)

FINDING = Finding(
    rule="unbounded-rpc", path="src/repro/pkg/mod.py", line=12, col=0,
    message="flush() holds a deadline but calls _push without it",
    snippet="self._push(key)", end_line=12, chain=CHAIN)


def report_of():
    report = LintReport()
    report.files_scanned = 1
    report.findings = [FINDING]
    return report


def test_text_reporter_renders_each_frame():
    text = render_text(report_of(), [FINDING], [])
    assert "via src/repro/pkg/mod.py:12: " \
        "repro.pkg.mod.Client.flush -> repro.pkg.mod.Client._push" in text
    assert "via src/repro/pkg/mod.py:6: " \
        "repro.pkg.mod.Client._push -> <invoke>" in text


def test_json_reporter_encodes_the_chain():
    payload = json.loads(render_json(
        report_of(), [FINDING], [], MetricsRegistry()))
    chain = payload["new"][0]["chain"]
    assert chain == [
        {"path": "src/repro/pkg/mod.py", "line": 12,
         "caller": "repro.pkg.mod.Client.flush",
         "callee": "repro.pkg.mod.Client._push"},
        {"path": "src/repro/pkg/mod.py", "line": 6,
         "caller": "repro.pkg.mod.Client._push", "callee": "<invoke>"},
    ]


def test_json_reporter_omits_empty_chains():
    plain = Finding(rule="wall-clock", path="a.py", line=1, col=0,
                    message="m", snippet="s")
    report = LintReport()
    report.files_scanned = 1
    report.findings = [plain]
    payload = json.loads(render_json(report, [plain], [],
                                     MetricsRegistry()))
    assert "chain" not in payload["new"][0]


def test_github_reporter_emits_annotations_with_chain():
    lines = render_github([FINDING]).splitlines()
    assert len(lines) == 1
    annotation = lines[0]
    assert annotation.startswith(
        "::error file=src/repro/pkg/mod.py,line=12,endLine=12,"
        "title=repro-lint unbounded-rpc::")
    # newlines in the message body use the workflow-command escape
    assert "%0Avia src/repro/pkg/mod.py:12:" in annotation
    assert "\n" not in annotation.split("::", 2)[2]


def test_github_reporter_escapes_percent():
    finding = Finding(rule="r", path="a.py", line=1, col=0,
                      message="p99 is 100% wrong", snippet="")
    assert "100%25 wrong" in render_github([finding])


def test_github_reporter_reports_parse_errors():
    out = render_github([], ["bad.py: invalid syntax (line 1)"])
    assert out == ("::error title=repro-lint parse error::"
                   "bad.py: invalid syntax (line 1)")


def test_sarif_reporter_emits_chain_as_related_locations():
    from repro.analysis.core import all_rules
    from repro.analysis.reporters import render_sarif

    payload = json.loads(render_sarif(report_of(), [FINDING], [],
                                      all_rules()))
    assert payload["version"] == "2.1.0"
    [run] = payload["runs"]
    [result] = run["results"]
    assert result["ruleId"] == "unbounded-rpc"
    assert result["level"] == "error"
    assert result["baselineState"] == "new"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12
    related = result["relatedLocations"]
    assert [r["message"]["text"] for r in related] == [
        "repro.pkg.mod.Client.flush -> repro.pkg.mod.Client._push",
        "repro.pkg.mod.Client._push -> <invoke>",
    ]
    assert [r["physicalLocation"]["region"]["startLine"]
            for r in related] == [12, 6]
    driver_rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "unbounded-rpc" in driver_rules
    assert result["ruleIndex"] == sorted(driver_rules).index("unbounded-rpc")


def test_sarif_reporter_splits_baseline_state_and_parse_errors():
    from repro.analysis.core import all_rules
    from repro.analysis.reporters import render_sarif

    report = report_of()
    report.parse_errors = ["pkg/bad.py:1: invalid syntax"]
    payload = json.loads(render_sarif(report, [], [FINDING], all_rules()))
    [run] = payload["runs"]
    [result] = run["results"]
    assert result["baselineState"] == "unchanged"
    notes = run["invocations"][0]["toolExecutionNotifications"]
    assert [n["message"]["text"] for n in notes] == report.parse_errors
    assert notes[0]["level"] == "error"
