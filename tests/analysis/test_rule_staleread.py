"""stale-read-across-rpc: reads crossing a network call must be
re-read before driving a decision."""

from tests.analysis.conftest import lint

RULE = "stale-read-across-rpc"


def test_check_then_act_across_invoke_flagged():
    findings = lint("""
        def advance(self):
            current = self.partition_scn
            self.net.invoke(self.relay_pull, current)
            if current < self.high_water:
                self.apply(current)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert findings[0].line == 5   # the stale decision, not the read
    assert "line 4" in findings[0].message   # names the crossing call


def test_send_also_counts_as_crossing():
    findings = lint("""
        def push(self):
            leader = self.current_leader
            self.network.send(self.peer, "sync")
            if leader == self.node_id:
                self.flush()
    """, RULE)
    assert len(findings) == 1


def test_reread_after_call_is_clean():
    findings = lint("""
        def advance(self):
            current = self.partition_scn
            self.net.invoke(self.relay_pull, current)
            current = self.partition_scn
            if current < self.high_water:
                self.apply(current)
    """, RULE)
    assert findings == []


def test_decision_before_the_call_is_clean():
    findings = lint("""
        def maybe_ping(self):
            role = self.role
            if role == "leader":
                self.net.send(self.peer, "ping")
            return role
    """, RULE)
    assert findings == []


def test_rpc_result_binding_is_the_reread_not_the_bug():
    findings = lint("""
        def check(self):
            status = self.net.invoke(self.peer_status)
            if status:
                self.mark_alive()
    """, RULE)
    assert findings == []


def test_locals_not_derived_from_shared_state_are_ignored():
    findings = lint("""
        def retry(self, attempts):
            budget = attempts * 2
            self.net.invoke(self.peer_status)
            if budget > 0:
                self.again()
    """, RULE)
    assert findings == []


def test_stale_read_on_loop_back_edge_flagged():
    findings = lint("""
        def drain(self):
            pending = self.queue_depth
            while pending > 0:
                self.net.invoke(self.pop_one)
    """, RULE)
    # the while test re-runs after the RPC on the back edge, still on
    # the pre-call read: this loop can never observe the drained queue
    assert len(findings) == 1
    assert findings[0].line == 4


def test_local_recompute_counts_as_redefinition():
    findings = lint("""
        def drain(self):
            pending = self.queue_depth
            while pending > 0:
                self.net.invoke(self.pop_one)
                pending = pending - 1
    """, RULE)
    # any redefinition kills the stale path, even a local recompute
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        def advance(self):
            current = self.partition_scn
            self.net.invoke(self.relay_pull, current)
            if current < self.high_water:  # repro-lint: disable=stale-read-across-rpc
                self.apply(current)
    """, RULE)
    assert findings == []
