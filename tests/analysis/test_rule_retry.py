"""retry-without-backoff rule: positives, negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "retry-without-backoff"


def test_while_true_hot_retry_flagged():
    findings = lint("""
        def fetch(net, fn):
            while True:
                try:
                    return net.invoke("c", "s", fn)
                except NodeUnavailableError:
                    continue
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert findings[0].line == 3


def test_for_range_hot_retry_flagged():
    findings = lint("""
        def fetch(net, fn):
            for attempt in range(5):
                try:
                    return net.invoke("c", "s", fn)
                except TransientNetworkError:
                    pass
    """, RULE)
    assert len(findings) == 1


def test_backoff_sleep_is_clean():
    findings = lint("""
        def fetch(self, net, fn):
            for attempt in range(1, 4):
                try:
                    return net.invoke("c", "s", fn)
                except NodeUnavailableError:
                    self.clock.sleep(self.policy.backoff(attempt, self.rng))
    """, RULE)
    assert findings == []


def test_call_with_retries_is_clean():
    findings = lint("""
        def fetch(self, fn):
            while self.pending:
                result = call_with_retries(fn, clock=self.clock,
                                           policy=self.policy)
                self.handle(result)
    """, RULE)
    assert findings == []


def test_helper_named_sleep_is_clean():
    # delegating to a pacing helper (the RoutedStore pattern) counts
    findings = lint("""
        def quorum_round(self):
            round_number = 1
            while True:
                try:
                    self.network.invoke("c", "s", self.fn)
                    return
                except NodeUnavailableError:
                    self._sleep_before_retry(round_number, "get", None)
                    round_number += 1
    """, RULE)
    assert findings == []


def test_fan_out_loop_is_clean():
    # iterating *different* targets and collecting per-node failures is
    # fan-out, not a retry of the same operation
    findings = lint("""
        def replay(self, hints):
            remaining = []
            for hint in hints:
                try:
                    self.network.invoke("c", hint.node, hint.apply)
                except NodeUnavailableError:
                    remaining.append(hint)
            return remaining
    """, RULE)
    assert findings == []


def test_handler_that_reraises_is_clean():
    findings = lint("""
        def fetch(net, fn):
            while True:
                try:
                    return net.invoke("c", "s", fn)
                except NodeUnavailableError:
                    raise
    """, RULE)
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        def fetch(net, fn):
            while True:  # repro-lint: disable=retry-without-backoff
                try:
                    return net.invoke("c", "s", fn)
                except NodeUnavailableError:
                    continue
    """, RULE)
    assert findings == []
