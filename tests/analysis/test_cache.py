"""The run cache: hit/miss semantics and cached-vs-cold identity."""

import json

from repro.analysis.cache import (
    CACHE_FORMAT,
    LintCache,
    file_manifest,
    run_digest,
)
from repro.analysis.cli import main
from repro.analysis.core import Analyzer, Finding, Frame, LintReport

VIOLATION = "import time\n\n\ndef wait():\n    time.sleep(1)\n"


def _write_pkg(tmp_path, source, name="mod.py"):
    pkg = tmp_path / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / name).write_text(source)
    return pkg


def _findings(tmp_path, capsys, *extra):
    main([str(tmp_path / "pkg"), "--root", str(tmp_path), "--json", *extra])
    payload = json.loads(capsys.readouterr().out)
    return payload["new"], payload


def test_cached_and_cold_runs_are_finding_identical(tmp_path, capsys):
    _write_pkg(tmp_path, VIOLATION)
    cold, cold_payload = _findings(tmp_path, capsys)
    assert (tmp_path / ".repro-lint-cache" / "run.json").exists()

    cached, cached_payload = _findings(tmp_path, capsys)
    assert cached == cold
    assert cached_payload["suppressed"] == cold_payload["suppressed"]
    assert cached_payload["files_scanned"] == cold_payload["files_scanned"]
    assert cached_payload["parse_errors"] == cold_payload["parse_errors"]


def test_cache_invalidated_by_any_file_change(tmp_path, capsys):
    _write_pkg(tmp_path, VIOLATION)
    cold, _ = _findings(tmp_path, capsys)
    assert len(cold) == 1
    # a new file with a second violation must not replay the stale run
    _write_pkg(tmp_path, VIOLATION, name="mod2.py")
    fresh, _ = _findings(tmp_path, capsys)
    assert len(fresh) == 2
    # ... and fixing it invalidates again
    (tmp_path / "pkg" / "mod2.py").write_text("def ok(clock):\n"
                                              "    clock.sleep(1)\n")
    refixed, _ = _findings(tmp_path, capsys)
    assert len(refixed) == 1


def test_no_cache_flag_skips_read_and_write(tmp_path, capsys):
    _write_pkg(tmp_path, VIOLATION)
    no_cache, _ = _findings(tmp_path, capsys, "--no-cache")
    assert not (tmp_path / ".repro-lint-cache").exists()
    cold, _ = _findings(tmp_path, capsys)
    assert cold == no_cache
    # poison the cache payload; --no-cache must not read it
    cache_file = tmp_path / ".repro-lint-cache" / "run.json"
    poisoned = json.loads(cache_file.read_text())
    poisoned["findings"] = []
    cache_file.write_text(json.dumps(poisoned))
    honest, _ = _findings(tmp_path, capsys, "--no-cache")
    assert honest == cold


def test_digest_covers_rules_and_content(tmp_path):
    pkg = _write_pkg(tmp_path, VIOLATION)
    analyzer = Analyzer(root=str(tmp_path))
    manifest = file_manifest(analyzer, [pkg])
    assert manifest == [("pkg/mod.py", manifest[0][1])]
    base = run_digest(manifest, ["wall-clock"])
    assert run_digest(manifest, ["wall-clock"]) == base
    assert run_digest(manifest, ["wall-clock", "other"]) != base
    (pkg / "mod.py").write_text(VIOLATION + "\n")
    assert run_digest(file_manifest(analyzer, [pkg]), ["wall-clock"]) != base


def test_report_roundtrip_preserves_chain_and_fingerprint(tmp_path):
    finding = Finding(
        rule="atomicity-violation", path="pkg/mod.py", line=7, col=4,
        message="stale read", snippet="self.x = cur", end_line=8,
        chain=(Frame(path="pkg/mod.py", line=5, caller="a.b", callee="c.d"),))
    report = LintReport()
    report.files_scanned = 3
    report.suppressed = 2
    report.parse_errors = ["pkg/bad.py: invalid syntax (line 1)"]
    report.findings = [finding]

    cache = LintCache(tmp_path / ".repro-lint-cache")
    cache.store("digest-1", report)
    loaded = cache.load("digest-1")
    assert loaded is not None
    assert loaded.findings == [finding]
    assert loaded.findings[0].fingerprint() == finding.fingerprint()
    assert (loaded.files_scanned, loaded.suppressed, loaded.parse_errors) \
        == (3, 2, report.parse_errors)
    assert cache.load("digest-2") is None  # stale digest is a miss
    payload = json.loads(cache.path.read_text())
    assert payload["format"] == CACHE_FORMAT


def test_corrupt_cache_is_a_miss(tmp_path):
    cache = LintCache(tmp_path / ".repro-lint-cache")
    cache.directory.mkdir()
    cache.path.write_text("{not json")
    assert cache.load("anything") is None
