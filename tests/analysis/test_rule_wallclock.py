"""wall-clock rule: true positives, true negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "wall-clock"


def test_time_time_flagged():
    findings = lint("""
        import time
        def stamp():
            return time.time()
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert findings[0].line == 4
    assert "time.time" in findings[0].message


def test_time_sleep_and_monotonic_flagged():
    findings = lint("""
        import time
        time.sleep(0.5)
        t = time.monotonic()
    """, RULE)
    assert len(findings) == 2


def test_from_import_alias_resolved():
    findings = lint("""
        from time import sleep as pause
        pause(1)
    """, RULE)
    assert len(findings) == 1
    assert "time.sleep" in findings[0].message


def test_datetime_now_flagged():
    findings = lint("""
        import datetime
        from datetime import datetime as dt
        a = datetime.datetime.now()
        b = dt.utcnow()
    """, RULE)
    assert len(findings) == 2


def test_injected_clock_is_clean():
    findings = lint("""
        def wait(clock, seconds):
            clock.sleep(seconds)
            return clock.now()
    """, RULE)
    assert findings == []


def test_bare_import_and_unrelated_attrs_clean():
    findings = lint("""
        import time
        DURATION = time.strptime  # parsing, not reading the clock
    """, RULE)
    assert findings == []


def test_clock_module_is_exempt():
    findings = lint("""
        import time
        def now():
            return time.monotonic()
    """, RULE, rel_path="src/repro/common/clock.py")
    assert findings == []


def test_pragma_suppresses_on_the_line():
    findings = lint("""
        import time
        t = time.time()  # repro-lint: disable=wall-clock
        u = time.time()
    """, RULE)
    assert len(findings) == 1
    assert findings[0].line == 4


def test_disable_all_pragma():
    findings = lint("""
        import time
        t = time.time()  # repro-lint: disable=all
    """, RULE)
    assert findings == []
