"""The process-pool scan is a pure optimization: byte-identical output."""

import json

from repro.analysis import Analyzer
from repro.analysis.cli import main
from tests.analysis.test_lint_clean_support import REPO_ROOT, SRC_REPRO


def signature(findings):
    return [(f.path, f.line, f.col, f.rule, f.message, f.chain)
            for f in findings]


def test_parallel_scan_matches_serial_on_common():
    serial = Analyzer(root=REPO_ROOT).run([SRC_REPRO / "common"])
    parallel = Analyzer(root=REPO_ROOT, jobs=2).run([SRC_REPRO / "common"])
    assert signature(parallel.findings) == signature(serial.findings)
    assert parallel.files_scanned == serial.files_scanned
    assert parallel.suppressed == serial.suppressed


def test_parallel_scan_finds_known_findings(tmp_path):
    bad = tmp_path / "src" / "repro" / "pkg" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef now():\n    return time.time()\n",
                   encoding="utf-8")
    serial = Analyzer(root=tmp_path).run([tmp_path])
    parallel = Analyzer(root=tmp_path, jobs=2).run([tmp_path])
    assert signature(serial.findings) == signature(parallel.findings)
    assert any(f.rule == "wall-clock" for f in parallel.findings)


def test_parallel_reports_parse_errors_once(tmp_path):
    bad = tmp_path / "src" / "repro" / "pkg" / "mod.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n", encoding="utf-8")
    report = Analyzer(root=tmp_path, jobs=2).run([tmp_path])
    assert len(report.parse_errors) == 1


def test_cli_jobs_flag(tmp_path, capsys):
    clean = tmp_path / "mod.py"
    clean.write_text("def f():\n    return 1\n", encoding="utf-8")
    code = main([str(tmp_path), "--jobs", "2", "--json",
                 "--root", str(tmp_path)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["clean"] is True


RACY = """\
class Node:
    def __init__(self, clock):
        self.clock = clock
        self.progress = 0

    def _pump(self):
        self.clock.sleep(1.0){pragma}

    def advance(self, n):
        cur = self.progress
        self._pump()
        self.progress = cur + n
"""

import pytest  # noqa: E402


@pytest.mark.parametrize("jobs", [1, 2])
def test_chain_frame_pragma_suppresses_project_finding(tmp_path, jobs):
    """A pragma on a *chain frame* line (here the yield inside the
    helper, not the store the finding anchors on) suppresses an
    interprocedural finding — identically in serial and parallel
    mode, where per-file contexts come back from worker processes."""
    mod = tmp_path / "src" / "repro" / "pkg" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text(RACY.format(pragma=""), encoding="utf-8")
    convicted = Analyzer(root=tmp_path, jobs=jobs).run([tmp_path])
    assert any(f.rule == "atomicity-violation" for f in convicted.findings)

    mod.write_text(RACY.format(
        pragma="  # repro-lint: disable=atomicity-violation"),
        encoding="utf-8")
    suppressed = Analyzer(root=tmp_path, jobs=jobs).run([tmp_path])
    assert not any(f.rule == "atomicity-violation"
                   for f in suppressed.findings)
    assert suppressed.suppressed == convicted.suppressed + 1
