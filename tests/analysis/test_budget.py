"""Performance budget: the full-repo analyzer run stays under 12 s.

The lint gate runs inside tier-1 CI on every change; the flow-based
rules build CFGs per function per rule, the interprocedural pass adds
a repo-wide call graph plus SCC-ordered effect summaries, and the
atomicity pass walks per-method CFGs against the transitive
yield-point sets on top.  This test is the backstop that keeps that
affordable.  The budget is generous (the full run with all sixteen
rules takes ~2-4 s on a laptop) so the test is a tripwire for
accidental quadratic behaviour, not a benchmark.
"""

import time

from repro.analysis import Analyzer
from tests.analysis.test_lint_clean_support import REPO_ROOT, SRC_REPRO

BUDGET_SECONDS = 12.0


def test_full_repo_run_stays_under_budget():
    analyzer = Analyzer(root=REPO_ROOT)
    started = time.perf_counter()
    report = analyzer.run([SRC_REPRO])
    elapsed = time.perf_counter() - started
    assert report.files_scanned > 80
    # the budget covers the atomicity pass, not a reduced rule set
    assert {"atomicity-violation", "non-atomic-multi-write",
            "yield-in-atomic-section"} <= set(analyzer.rule_seconds)
    assert elapsed < BUDGET_SECONDS, (
        f"full-repo lint took {elapsed:.2f}s (budget {BUDGET_SECONDS}s); "
        "per-rule timings: " + ", ".join(
            f"{name}={seconds * 1000:.0f}ms"
            for name, seconds in sorted(analyzer.rule_seconds.items())))


def test_per_rule_timings_are_recorded():
    analyzer = Analyzer(root=REPO_ROOT)
    analyzer.run([SRC_REPRO / "common"])
    assert set(analyzer.rule_seconds) == {r.name for r in analyzer.rules}
    assert all(seconds >= 0.0 for seconds in analyzer.rule_seconds.values())
    assert sum(analyzer.rule_seconds.values()) > 0.0
