"""Baseline semantics: fingerprints, counts, persistence."""

from repro.analysis import Analyzer, Baseline, Finding


def _findings(source: str) -> list[Finding]:
    return Analyzer().check_source(source, "src/repro/kafka/mod.py")


SOURCE = (
    "import time\n"
    "time.sleep(0.1)\n"
    "x = 1\n"
    "time.sleep(0.1)\n"
)


def test_fingerprint_ignores_line_numbers():
    a = Finding("wall-clock", "src/repro/m.py", 10, 0, "msg",
                snippet="time.sleep(0.1)")
    b = Finding("wall-clock", "src/repro/m.py", 99, 4, "other msg",
                snippet="time.sleep(0.1)")
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_distinguishes_rule_path_and_text():
    base = Finding("wall-clock", "src/repro/m.py", 1, 0, "m",
                   snippet="time.sleep(0.1)")
    assert base.fingerprint() != Finding(
        "unseeded-random", "src/repro/m.py", 1, 0, "m",
        snippet="time.sleep(0.1)").fingerprint()
    assert base.fingerprint() != Finding(
        "wall-clock", "src/repro/other.py", 1, 0, "m",
        snippet="time.sleep(0.1)").fingerprint()
    assert base.fingerprint() != Finding(
        "wall-clock", "src/repro/m.py", 1, 0, "m",
        snippet="time.sleep(0.2)").fingerprint()


def test_identical_lines_count_separately():
    findings = _findings(SOURCE)
    assert len(findings) == 2
    # both grandfathered: clean
    baseline = Baseline.from_findings(findings)
    new, old = baseline.split(findings)
    assert new == [] and len(old) == 2
    # only one grandfathered: the second identical line is new
    baseline = Baseline.from_findings(findings[:1])
    new, old = baseline.split(findings)
    assert len(new) == 1 and len(old) == 1


def test_line_drift_does_not_unbaseline(tmp_path):
    baseline = Baseline.from_findings(_findings(SOURCE))
    drifted = _findings("import time\n# a new comment pushes lines down\n"
                        + SOURCE.split("\n", 1)[1])
    new, old = baseline.split(drifted)
    assert new == [] and len(old) == 2


def test_save_load_roundtrip(tmp_path):
    findings = _findings(SOURCE)
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).save(path)
    loaded = Baseline.load(path)
    new, old = loaded.split(findings)
    assert new == [] and len(old) == 2
    # locators keep the entry reviewable
    assert any("wall-clock" in where for where in loaded.locators.values())


def test_fixing_a_violation_shrinks_the_allowance(tmp_path):
    baseline = Baseline.from_findings(_findings(SOURCE))
    remaining = _findings("import time\ntime.sleep(0.1)\n")
    new, old = baseline.split(remaining)
    assert new == [] and len(old) == 1


def test_regressed_count_fails_the_gate():
    # two identical violations baselined; a third copy of the same
    # line is NEW even though its fingerprint is grandfathered
    baseline = Baseline.from_findings(_findings(SOURCE))
    regressed = _findings(SOURCE + "time.sleep(0.1)\n")
    new, old = baseline.split(regressed)
    assert len(old) == 2
    assert len(new) == 1
    assert new[0].rule == "wall-clock"
