"""The retry-amplification rule: no retrying context nested inside
another — retry budgets multiply into metastable overload."""

from tests.analysis.conftest import lint

RULE = "retry-amplification"


def test_nested_call_with_retries_flagged():
    findings = lint("""
        from repro.common.resilience import call_with_retries

        def fetch(clock, node):
            return call_with_retries(
                lambda: call_with_retries(lambda: node.read(), clock=clock),
                clock=clock)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "nested call_with_retries" in findings[0].message


def test_retrying_function_passed_by_reference_flagged():
    findings = lint("""
        from repro.common.resilience import call_with_retries

        def fetch(clock, node):
            def outer():
                return call_with_retries(
                    lambda: node.read(), clock=clock)
            return call_with_retries(outer, clock=clock)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "passed as the retried function" in findings[0].message


def test_retry_loop_wrapping_call_with_retries_flagged():
    findings = lint("""
        from repro.common.errors import NodeUnavailableError
        from repro.common.resilience import call_with_retries

        def fetch(clock, node):
            for attempt in range(5):
                try:
                    return call_with_retries(
                        lambda: node.read(), clock=clock)
                except NodeUnavailableError:
                    continue
    """, RULE)
    assert [f.rule for f in findings] == [RULE]


def test_retry_loop_inside_retry_loop_flagged():
    findings = lint("""
        from repro.common.errors import NodeUnavailableError

        def fetch(clock, node, policy, rng):
            for attempt in range(3):
                try:
                    for retry in range(3):
                        try:
                            return node.read()
                        except NodeUnavailableError:
                            clock.sleep(policy.backoff(retry + 1, rng))
                except NodeUnavailableError:
                    clock.sleep(policy.backoff(attempt + 1, rng))
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "nested retry loop" in findings[0].message


def test_call_to_retrying_helper_from_retrying_context_flagged():
    findings = lint("""
        from repro.common.resilience import call_with_retries

        def read_one(clock, node):
            return call_with_retries(lambda: node.read(), clock=clock)

        def read_quorum(clock, nodes):
            return call_with_retries(
                lambda: [read_one(clock, n) for n in nodes], clock=clock)
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "read_one" in findings[0].message


def test_single_layer_retries_are_clean():
    findings = lint("""
        from repro.common.errors import NodeUnavailableError
        from repro.common.resilience import call_with_retries

        def fetch(clock, node):
            return call_with_retries(lambda: node.read(), clock=clock)

        def fetch_loop(clock, node, policy, rng):
            for attempt in range(3):
                try:
                    return node.read()
                except NodeUnavailableError:
                    clock.sleep(policy.backoff(attempt + 1, rng))
    """, RULE)
    assert findings == []


def test_fanout_loop_around_retrying_call_is_clean():
    # a fan-out over replicas is not a retry loop: each iteration is a
    # different node, not a re-attempt of the same work
    findings = lint("""
        from repro.common.resilience import call_with_retries

        def fetch_all(clock, replicas):
            out = []
            for node in replicas:
                out.append(call_with_retries(
                    lambda: node.read(), clock=clock))
            return out
    """, RULE)
    assert findings == []


def test_call_to_non_retrying_helper_is_clean():
    findings = lint("""
        from repro.common.resilience import call_with_retries

        def decode(data):
            return data.strip()

        def fetch(clock, node):
            return call_with_retries(
                lambda: decode(node.read()), clock=clock)
    """, RULE)
    assert findings == []


def test_pragma_suppression():
    findings = lint("""
        from repro.common.resilience import call_with_retries

        def fetch(clock, node):
            return call_with_retries(
                lambda: call_with_retries(lambda: node.read(), clock=clock),  # repro-lint: disable=retry-amplification
                clock=clock)
    """, RULE)
    assert findings == []
