"""Call-graph edge cases: the resolution idioms the summaries rely on.

Each test builds a tiny multi-file project and asserts on the resolved
edges, so a regression in receiver-type inference shows up here before
it silently blinds the interprocedural rules.
"""

from repro.analysis.callgraph import module_dotted

from tests.analysis.conftest import project_of


def edges(project, caller: str) -> set[tuple[str, str]]:
    return {(site.callee, site.kind)
            for site in project.graph.callees(caller)}


def test_module_dotted_strips_src_and_init():
    assert module_dotted("src/repro/voldemort/routing.py") == \
        "repro.voldemort.routing"
    assert module_dotted("src/repro/voldemort/__init__.py") == \
        "repro.voldemort"


def test_module_function_and_aliased_import():
    project = project_of({
        "src/repro/pkg/util.py": """
            def helper():
                return 1
        """,
        "src/repro/pkg/mod.py": """
            from repro.pkg.util import helper as h

            def caller():
                return h()
        """,
    })
    assert ("repro.pkg.util.helper", "call") in \
        edges(project, "repro.pkg.mod.caller")


def test_constructor_inferred_attribute_type():
    project = project_of({
        "src/repro/pkg/store.py": """
            class Store:
                def get(self, key):
                    return key
        """,
        "src/repro/pkg/mod.py": """
            from repro.pkg.store import Store

            class Client:
                def __init__(self):
                    self.store = Store()

                def fetch(self, key):
                    return self.store.get(key)
        """,
    })
    assert ("repro.pkg.store.Store.get", "call") in \
        edges(project, "repro.pkg.mod.Client.fetch")
    # the constructor call itself edges to __init__ when one exists
    assert ("repro.pkg.store.Store", "call") not in \
        edges(project, "repro.pkg.mod.Client.__init__")


def test_attribute_chain_resolves_link_by_link():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Network:
                def ping(self):
                    return True

            class Cluster:
                def __init__(self):
                    self.network = Network()

            class Client:
                def __init__(self):
                    self.cluster = Cluster()

                def probe(self):
                    return self.cluster.network.ping()
        """,
    })
    assert ("repro.pkg.mod.Network.ping", "call") in \
        edges(project, "repro.pkg.mod.Client.probe")


def test_inherited_method_resolves_through_mro():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Base:
                def run(self):
                    return self.step()

                def step(self):
                    return 0

            class Derived(Base):
                def step(self):
                    return 1
        """,
    })
    called = edges(project, "repro.pkg.mod.Base.run")
    # the static target plus every scanned override: the receiver's
    # runtime type may be any subclass
    assert ("repro.pkg.mod.Base.step", "call") in called
    assert ("repro.pkg.mod.Derived.step", "call") in called


def test_inherited_method_defined_only_on_base():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Base:
                def shared(self):
                    return 0

            class Derived(Base):
                def use(self):
                    return self.shared()
        """,
    })
    assert ("repro.pkg.mod.Base.shared", "call") in \
        edges(project, "repro.pkg.mod.Derived.use")


def test_callback_passed_by_reference_is_a_ref_edge():
    project = project_of({
        "src/repro/pkg/mod.py": """
            def retry(fn, attempts):
                for _ in range(attempts):
                    fn()

            class Client:
                def _fetch(self):
                    return 1

                def fetch(self):
                    return retry(self._fetch, 3)
        """,
    })
    called = edges(project, "repro.pkg.mod.Client.fetch")
    assert ("repro.pkg.mod.retry", "call") in called
    assert ("repro.pkg.mod.Client._fetch", "ref") in called


def test_annotated_parameter_receiver():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Engine:
                def put(self, key):
                    return key

            def write(engine: Engine, key):
                return engine.put(key)
        """,
    })
    assert ("repro.pkg.mod.Engine.put", "call") in \
        edges(project, "repro.pkg.mod.write")


def test_rpc_sleep_fsync_effect_sites():
    project = project_of({
        "src/repro/pkg/mod.py": """
            class Client:
                def __init__(self, network, clock):
                    self.network = network
                    self.clock = clock

                def fetch(self, key):
                    self.clock.sleep(0.1)
                    return self.network.invoke(key)
        """,
    })
    kinds = {site.kind for site in
             project.graph.callees("repro.pkg.mod.Client.fetch")}
    assert "rpc" in kinds
    assert "sleep" in kinds


def test_mutual_recursion_lands_in_one_scc():
    project = project_of({
        "src/repro/pkg/mod.py": """
            def even(n):
                return True if n == 0 else odd(n - 1)

            def odd(n):
                return False if n == 0 else even(n - 1)

            def entry(n):
                return even(n)
        """,
    })
    components = project.graph.sccs()
    recursive = [c for c in components if len(c) > 1]
    assert recursive == [["repro.pkg.mod.even", "repro.pkg.mod.odd"]]
    # reverse topological: the cycle is summarized before its caller
    flat = [qual for component in components for qual in component]
    assert flat.index("repro.pkg.mod.even") < \
        flat.index("repro.pkg.mod.entry")


def test_nested_defs_are_separate_nodes():
    project = project_of({
        "src/repro/pkg/mod.py": """
            def outer():
                def inner():
                    return 1
                return inner()
        """,
    })
    assert "repro.pkg.mod.outer.inner" in project.graph.functions
    assert ("repro.pkg.mod.outer.inner", "call") in \
        edges(project, "repro.pkg.mod.outer")


def test_graph_dumps_are_well_formed():
    import json

    project = project_of({
        "src/repro/pkg/mod.py": """
            def callee():
                return 1

            def caller():
                return callee()
        """,
    })
    dot = project.graph.to_dot()
    assert dot.startswith("digraph callgraph {")
    assert '"repro.pkg.mod.caller" -> "repro.pkg.mod.callee"' in dot
    payload = json.loads(project.graph.to_json())
    assert {"caller": "repro.pkg.mod.caller",
            "callee": "repro.pkg.mod.callee",
            "kind": "call"} in [
        {k: e[k] for k in ("caller", "callee", "kind")}
        for e in payload["edges"]]
