"""CFG construction and dataflow: shapes, edge labels, def-use."""

import ast
import textwrap

from repro.analysis.flow import (
    build_cfg,
    calls_in,
    definitions,
    iter_function_cfgs,
    receiver_name,
    uses,
)


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    fn = tree.body[0]
    assert isinstance(fn, ast.FunctionDef)
    return build_cfg(fn)


def edge_kinds(block):
    return sorted(edge.kind for edge in block.out_edges)


def test_straight_line_is_one_block_to_exit():
    cfg = cfg_of("""
        def f(x):
            y = x + 1
            return y
    """)
    assert len(cfg.entry.elements) == 2
    kinds = {e.kind: e.dst for e in cfg.entry.out_edges}
    assert kinds["normal"] is cfg.exit
    assert kinds["exc"] is cfg.raise_exit


def test_if_produces_true_and_false_edges_with_test():
    cfg = cfg_of("""
        def f(x):
            if x > 0:
                a = 1
            return x
    """)
    head = cfg.entry
    assert isinstance(head.elements[-1], ast.expr)   # the test element
    labelled = {e.kind: e for e in head.out_edges if e.kind in ("true", "false")}
    assert set(labelled) == {"true", "false"}
    assert labelled["true"].test is labelled["false"].test


def test_while_true_has_no_false_edge():
    cfg = cfg_of("""
        def f(self):
            while True:
                self.step()
    """)
    heads = [b for b in cfg.blocks
             if b.elements and isinstance(b.elements[0], ast.Constant)]
    assert len(heads) == 1
    assert "false" not in edge_kinds(heads[0])
    # the only way to the normal exit is through the unreachable
    # after-loop block: no path from the entry gets there
    reachable = set()
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        if block.bid in reachable:
            continue
        reachable.add(block.bid)
        stack.extend(block.successors())
    assert cfg.exit.bid not in reachable


def test_while_condition_keeps_false_edge():
    cfg = cfg_of("""
        def f(self):
            while self.running:
                self.step()
    """)
    heads = [b for b in cfg.blocks
             if b.elements and isinstance(b.elements[0], ast.Attribute)]
    assert len(heads) == 1
    assert "false" in edge_kinds(heads[0])


def test_raise_goes_to_raise_exit_not_exit():
    cfg = cfg_of("""
        def f(x):
            raise ValueError(x)
    """)
    assert all(e.dst is not cfg.exit for e in cfg.entry.out_edges)
    assert any(e.kind == "exc" and e.dst is cfg.raise_exit
               for e in cfg.entry.out_edges)


def test_try_body_has_exception_edge_into_handler():
    cfg = cfg_of("""
        def f(self):
            try:
                self.work()
            except KeyError:
                self.recover()
            return True
    """)
    body_blocks = [b for b in cfg.blocks
                   if any(isinstance(el, ast.Expr) and "work" in ast.dump(el)
                          for el in b.elements)]
    assert body_blocks
    handler_entries = [b for b in cfg.blocks
                       if any(isinstance(el, ast.ExceptHandler)
                              for el in b.elements)]
    assert len(handler_entries) == 1
    [body], [handler] = body_blocks, handler_entries
    assert any(e.kind == "exc" and e.dst is handler for e in body.out_edges)
    # the unmatched-exception path out of the try is also kept
    assert any(e.kind == "exc" and e.dst is cfg.raise_exit
               for e in body.out_edges)


def test_break_and_continue_edges():
    cfg = cfg_of("""
        def f(items):
            for item in items:
                if item is None:
                    break
                if item < 0:
                    continue
                use(item)
            return True
    """)
    breaks = [b for b in cfg.blocks
              if any(isinstance(el, ast.Break) for el in b.elements)]
    continues = [b for b in cfg.blocks
                 if any(isinstance(el, ast.Continue) for el in b.elements)]
    heads = [b for b in cfg.blocks
             if any(isinstance(el, ast.For) for el in b.elements)]
    assert breaks and continues and heads
    # continue jumps to the loop head; break jumps past it
    assert any(e.dst is heads[0] for e in continues[0].out_edges)
    assert all(e.dst is not heads[0] or e.kind == "exc"
               for e in breaks[0].out_edges)


def test_nested_functions_get_their_own_cfgs():
    tree = ast.parse(textwrap.dedent("""
        def outer():
            def inner():
                return 1
            return inner
    """))
    names = [cfg.fn.name for cfg in iter_function_cfgs(tree)]
    assert sorted(names) == ["inner", "outer"]


def test_reaching_definitions_sees_both_branch_defs():
    cfg = cfg_of("""
        def f(flag):
            if flag:
                x = 1
            else:
                x = 2
            return x
    """)
    reaching = cfg.reaching_definitions()
    return_points = [(block.bid, i)
                     for block, i, el in cfg.elements()
                     if isinstance(el, ast.Return)]
    [point] = return_points
    assert len(reaching[point]["x"]) == 2          # both defs may reach
    assert reaching[point]["flag"] == {(-1, -1)}   # argument pseudo-def


def test_redefinition_kills_previous_def():
    cfg = cfg_of("""
        def f():
            x = 1
            x = 2
            return x
    """)
    reaching = cfg.reaching_definitions()
    [point] = [(b.bid, i) for b, i, el in cfg.elements()
               if isinstance(el, ast.Return)]
    assert len(reaching[point]["x"]) == 1


def test_definitions_and_uses_helpers():
    stmt = ast.parse("a, b = self.pair(c)").body[0]
    assert sorted(definitions(stmt)) == ["a", "b"]
    assert "c" in uses(stmt) and "a" not in uses(stmt)

    with_stmt = ast.parse("with disk.open(p) as f:\n    f.write(x)\n").body[0]
    assert definitions(with_stmt) == ["f"]
    # only the header is the With element's reads; the body is elsewhere
    assert uses(with_stmt) == {"disk", "p"}
    [call] = list(calls_in(with_stmt))
    assert receiver_name(call.func) == "disk"

    walrus = ast.parse("if (n := count()) > 0:\n    pass\n").body[0].test
    assert definitions(walrus) == ["n"]
