"""swallowed-transport-error rule: positives, negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "swallowed-transport-error"


def test_pass_only_transport_handler_flagged():
    findings = lint("""
        def repair(network, fn):
            try:
                network.invoke("client", "node-1", fn)
            except NodeUnavailableError:
                pass
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "NodeUnavailableError" in findings[0].message


def test_transport_name_in_tuple_flagged():
    findings = lint("""
        try:
            push(value)
        except (ObsoleteVersionError, NodeUnavailableError):
            pass
    """, RULE)
    assert len(findings) == 1


def test_ellipsis_body_flagged():
    findings = lint("""
        try:
            push(value)
        except RequestTimeoutError:
            ...
    """, RULE)
    assert len(findings) == 1


def test_broad_except_around_network_call_flagged():
    findings = lint("""
        def fire_and_forget(net, msg):
            try:
                net.send("a", "b", msg)
            except Exception:
                pass
    """, RULE)
    assert len(findings) == 1
    assert "broad except" in findings[0].message


def test_recorded_outcome_is_clean():
    findings = lint("""
        def repair(self, network, fn):
            try:
                network.invoke("client", "node-1", fn)
            except NodeUnavailableError:
                self.metrics.counter("read_repair.failures").increment()
    """, RULE)
    assert findings == []


def test_non_transport_pass_is_clean():
    findings = lint("""
        try:
            cache.pop(key)
        except KeyError:
            pass
    """, RULE)
    assert findings == []


def test_broad_except_without_network_call_is_clean():
    findings = lint("""
        try:
            parse(blob)
        except Exception:
            pass
    """, RULE)
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        try:
            network.invoke("a", "b", fn)
        except NodeUnavailableError:  # repro-lint: disable=swallowed-transport-error
            pass
    """, RULE)
    assert findings == []
