"""deadline-dropped rule: positives, negatives, suppression."""

from tests.analysis.conftest import lint

RULE = "deadline-dropped"


def test_dropped_deadline_param_flagged():
    findings = lint("""
        def fetch(self, key, deadline=None):
            result, _ = self.network.invoke("c", "s", self.fn, key)
            return result
    """, RULE)
    assert [f.rule for f in findings] == [RULE]
    assert "fetch" in findings[0].message


def test_annotated_deadline_param_flagged():
    findings = lint("""
        def fetch(self, key, budget: Deadline):
            return call_with_retries(lambda: self.do(key), clock=self.clock)
    """, RULE)
    assert len(findings) == 1
    assert "budget" in findings[0].message


def test_clamped_deadline_is_clean():
    findings = lint("""
        def fetch(self, key, deadline=None):
            timeout = None if deadline is None else deadline.clamp(0.5)
            result, _ = self.network.invoke("c", "s", self.fn, key,
                                            timeout=timeout)
            return result
    """, RULE)
    assert findings == []


def test_forwarded_deadline_is_clean():
    findings = lint("""
        def fetch(self, key, deadline=None):
            return self.network.invoke("c", "s", self.inner, key,
                                       deadline=deadline)
    """, RULE)
    assert findings == []


def test_no_network_work_is_clean():
    # interface-conformance parameter with purely local work
    findings = lint("""
        def resolve(self, versions, deadline=None):
            return max(versions, key=lambda v: v.clock)
    """, RULE)
    assert findings == []


def test_deadline_read_in_nested_scope_is_clean():
    findings = lint("""
        def fetch(self, key, deadline=None):
            def attempt():
                deadline.check("fetch")
                return self.store.get(key)
            return call_with_retries(attempt, clock=self.clock)
    """, RULE)
    assert findings == []


def test_pragma_suppresses():
    findings = lint("""
        def fetch(self, key, deadline=None):  # repro-lint: disable=deadline-dropped
            result, _ = self.network.invoke("c", "s", self.fn, key)
            return result
    """, RULE)
    assert findings == []
