"""SimDisk semantics: fsync boundary, crashes, torn writes, bit flips."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.simnet.disk import LocalDisk, SimDisk


@pytest.fixture
def disk():
    return SimDisk(clock=SimClock(), seed=42)


class TestBasicFiles:
    def test_write_read_roundtrip(self, disk):
        with disk.open("n/a.log", "ab") as f:
            f.write(b"hello")
        with disk.open("n/a.log", "rb") as f:
            assert f.read() == b"hello"

    def test_missing_file_raises(self, disk):
        with pytest.raises(FileNotFoundError):
            disk.open("n/missing", "rb")

    def test_wb_truncates(self, disk):
        with disk.open("n/f", "ab") as f:
            f.write(b"old")
        with disk.open("n/f", "wb") as f:
            f.write(b"new")
        with disk.open("n/f", "rb") as f:
            assert f.read() == b"new"

    def test_append_mode_always_writes_at_end(self, disk):
        f = disk.open("n/f", "ab+")
        f.write(b"abc")
        f.seek(0)
        f.write(b"XY")
        f.seek(0)
        assert f.read() == b"abcXY"

    def test_listdir_and_getsize(self, disk):
        disk.open("n/dir/b", "ab").write(b"22")
        disk.open("n/dir/a", "ab").write(b"1")
        assert disk.listdir("n/dir") == ["a", "b"]
        assert disk.getsize("n/dir/a") == 1

    def test_closed_handle_raises(self, disk):
        f = disk.open("n/f", "ab")
        f.close()
        with pytest.raises(ValueError):
            f.write(b"x")

    def test_scope_namespaces_paths(self, disk):
        scope = disk.scope("node-0")
        scope.open("data/f", "ab").write(b"x")
        assert disk.exists("node-0/data/f")
        assert scope.exists("data/f")


class TestCrashSemantics:
    def test_unsynced_bytes_lost_on_crash(self, disk):
        f = disk.open("n/f", "ab")
        f.write(b"durable")
        f.fsync()
        f.write(b"at-risk")
        assert disk.unsynced_bytes("n") == 7
        lost = disk.crash_node("n")
        assert lost == 7
        with disk.open("n/f", "rb") as g:
            assert g.read() == b"durable"

    def test_crash_invalidates_handles(self, disk):
        f = disk.open("n/f", "ab")
        f.write(b"x")
        disk.crash_node("n")
        assert f.closed
        with pytest.raises(ValueError):
            f.write(b"y")

    def test_crash_is_per_node(self, disk):
        fa = disk.open("a/f", "ab")
        fb = disk.open("b/f", "ab")
        fa.write(b"aaa")
        fb.write(b"bbb")
        disk.crash_node("a")
        assert not fb.closed
        with disk.open("b/f", "rb") as g:
            assert g.read() == b"bbb"

    def test_fsynced_then_truncated_then_crash(self, disk):
        # a durable truncation (truncate + fsync) must survive the crash
        f = disk.open("n/f", "ab+")
        f.write(b"0123456789")
        f.fsync()
        f.truncate(4)
        f.fsync()
        disk.crash_node("n")
        with disk.open("n/f", "rb") as g:
            assert g.read() == b"0123"


class TestTornWrites:
    def test_torn_write_keeps_prefix(self, disk):
        f = disk.open("n/f", "ab")
        f.write(b"durable|")
        f.fsync()
        f.write(b"unsynced-tail")
        disk.arm_torn_write("n", path="f", keep_bytes=3)
        disk.crash_node("n")
        with disk.open("n/f", "rb") as g:
            assert g.read() == b"durable|uns"

    def test_torn_write_random_cut_is_seeded(self):
        def run(seed):
            d = SimDisk(clock=SimClock(), seed=seed)
            f = d.open("n/f", "ab")
            f.write(b"x" * 100)
            d.arm_torn_write("n")
            d.crash_node("n")
            with d.open("n/f", "rb") as g:
                return len(g.read())

        assert run(7) == run(7)
        lengths = {run(seed) for seed in range(12)}
        assert len(lengths) > 1  # the cut actually varies by seed
        assert all(1 <= n <= 100 for n in lengths)

    def test_torn_write_targets_largest_unsynced_file(self, disk):
        small = disk.open("n/small", "ab")
        big = disk.open("n/big", "ab")
        small.write(b"ab")
        big.write(b"c" * 50)
        disk.arm_torn_write("n", keep_bytes=5)
        disk.crash_node("n")
        with disk.open("n/big", "rb") as g:
            assert g.read() == b"c" * 5
        with disk.open("n/small", "rb") as g:
            assert g.read() == b""  # clean loss, no tear


class TestBitFlips:
    def test_flip_changes_exactly_one_bit(self, disk):
        f = disk.open("n/f", "ab")
        f.write(b"\x00" * 8)
        f.fsync()
        offset = disk.flip_bit("n", "f", offset=3, bit=1)
        assert offset == 3
        with disk.open("n/f", "rb") as g:
            data = g.read()
        assert data[3] == 0x02
        assert sum(data) == 0x02

    def test_flip_survives_crash(self, disk):
        f = disk.open("n/f", "ab")
        f.write(b"\x00" * 8)
        f.fsync()
        disk.flip_bit("n", "f", offset=0, bit=7)
        disk.crash_node("n")
        with disk.open("n/f", "rb") as g:
            assert g.read()[0] == 0x80

    def test_flip_empty_file_rejected(self, disk):
        disk.open("n/f", "ab")
        with pytest.raises(ConfigurationError):
            disk.flip_bit("n", "f")


class TestReplace:
    def test_replace_is_durable(self, disk):
        with disk.open("n/f.tmp", "ab") as f:
            f.write(b"compacted")
        disk.replace("n/f.tmp", "n/f")
        disk.crash_node("n")
        with disk.open("n/f", "rb") as g:
            assert g.read() == b"compacted"
        assert not disk.exists("n/f.tmp")


class TestTrace:
    def test_trace_requires_start(self, disk):
        with pytest.raises(ValueError):
            disk.trace_bytes()

    def test_identical_runs_identical_traces(self):
        def run():
            d = SimDisk(clock=SimClock(), seed=5)
            d.start_trace()
            f = d.open("n/f", "ab")
            f.write(b"payload")
            f.fsync()
            f.write(b"tail")
            d.arm_torn_write("n")
            d.crash_node("n")
            d.restart_node("n")
            return d.trace_bytes()

        assert run() == run()

    def test_counters(self, disk):
        f = disk.open("n/f", "ab")
        f.write(b"a")
        f.write(b"b")
        f.fsync()
        disk.crash_node("n")
        assert disk.writes == 2
        assert disk.fsyncs == 1
        assert disk.crashes == 1
        assert disk.bytes_lost == 0


class TestLocalDisk:
    def test_roundtrip_on_real_fs(self, tmp_path):
        disk = LocalDisk()
        disk.makedirs(str(tmp_path / "d"))
        path = str(tmp_path / "d" / "f")
        with disk.open(path, "ab") as f:
            f.write(b"bytes")
            f.fsync()
        assert disk.exists(path)
        assert disk.getsize(path) == 5
        assert disk.listdir(str(tmp_path / "d")) == ["f"]
        with disk.open(path, "rb") as f:
            assert f.read() == b"bytes"
