"""Gray failures and server capacity in SimNetwork: bounded queues,
limping nodes, per-link overrides, asymmetric partitions, and the
trace accounting that makes overload chaos runs byte-comparable."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    NodeUnavailableError,
    RequestTimeoutError,
    ServerOverloadedError,
    TransientNetworkError,
)
from repro.simnet import SimNetwork, fixed_latency
from repro.simnet.network import ServerQueue


def ping():
    return "pong"


# -- ServerQueue ----------------------------------------------------------


def test_server_queue_books_service_time_in_sequence():
    network = SimNetwork()
    queue = ServerQueue(network.clock, service_time=0.01, capacity=4)
    assert queue.admit(0.01) == 0.0          # idle server: no wait
    assert queue.admit(0.01) == pytest.approx(0.01)   # behind one
    assert queue.admit(0.01) == pytest.approx(0.02)   # behind two
    assert queue.depth() == 3


def test_server_queue_drains_as_the_clock_advances():
    network = SimNetwork()
    queue = ServerQueue(network.clock, service_time=0.01, capacity=4)
    for _ in range(3):
        queue.admit(0.01)
    network.clock.advance(0.02)
    assert queue.depth() == 1
    assert queue.admit(0.01) == pytest.approx(0.01)


def test_server_queue_fast_rejects_beyond_capacity():
    network = SimNetwork()
    queue = ServerQueue(network.clock, service_time=0.01, capacity=2)
    assert queue.admit(0.01) is not None
    assert queue.admit(0.01) is not None
    assert queue.admit(0.01) is None     # full: no capacity consumed
    assert queue.rejected == 1
    before = queue.busy_until
    queue.admit(0.01)
    assert queue.busy_until == before    # the rejection booked nothing


def test_server_queue_validation():
    clock = SimNetwork().clock
    with pytest.raises(ConfigurationError):
        ServerQueue(clock, service_time=0.0, capacity=1)
    with pytest.raises(ConfigurationError):
        ServerQueue(clock, service_time=0.01, capacity=0)


# -- invoke through a server queue ---------------------------------------


def test_invoke_adds_queueing_delay_and_service_time():
    network = SimNetwork(latency_model=fixed_latency(0.001))
    network.add_server_queue("srv", service_time=0.01, capacity=10)
    _, first = network.invoke("cli", "srv", ping)
    assert first == pytest.approx(0.002 + 0.01)          # rtt + service
    _, second = network.invoke("cli", "srv", ping)
    assert second == pytest.approx(0.002 + 0.01 + 0.01)  # + queue wait


def test_invoke_sheds_when_queue_full_with_retry_after():
    network = SimNetwork(latency_model=fixed_latency(0.001))
    network.add_server_queue("srv", service_time=0.01, capacity=2)
    network.invoke("cli", "srv", ping)
    network.invoke("cli", "srv", ping)
    with pytest.raises(ServerOverloadedError) as exc_info:
        network.invoke("cli", "srv", ping)
    assert exc_info.value.retry_after == pytest.approx(0.02)
    assert exc_info.value.simulated_latency == pytest.approx(0.002)
    assert network.requests_shed == 1
    # rejection was free: the backlog drains and service resumes
    network.clock.advance(0.02)
    network.invoke("cli", "srv", ping)


def test_admitted_but_timed_out_request_still_occupies_server():
    # the metastability mechanic: the client gave up; the server can't
    # know, so the booked service time is wasted capacity
    network = SimNetwork(latency_model=fixed_latency(0.001))
    queue = network.add_server_queue("srv", service_time=0.05, capacity=10)
    with pytest.raises(RequestTimeoutError):
        network.invoke("cli", "srv", ping, timeout=0.01)
    assert queue.accepted == 1
    assert queue.depth() == 1


# -- limping nodes --------------------------------------------------------


def test_limp_inflates_hops_and_service_time():
    network = SimNetwork(latency_model=fixed_latency(0.001))
    network.add_server_queue("srv", service_time=0.01, capacity=10)
    _, healthy = network.invoke("cli", "srv", ping)
    network.clock.advance(0.1)   # drain the healthy booking
    network.failures.limp("srv", 10.0)
    _, limping = network.invoke("cli", "srv", ping)
    assert limping == pytest.approx(0.02 + 0.1)   # both hops and service x10
    network.failures.heal_limp("srv")
    network.clock.advance(1.0)   # let the inflated booking drain
    _, healed = network.invoke("cli", "srv", ping)
    assert healed == pytest.approx(healthy)


def test_limp_factor_below_one_rejected():
    network = SimNetwork()
    with pytest.raises(ConfigurationError):
        network.failures.limp("srv", 0.5)


# -- per-link overrides ---------------------------------------------------


def test_set_link_overrides_latency_one_direction_only():
    network = SimNetwork(latency_model=fixed_latency(0.001))
    network.set_link("a", "b", latency_model=fixed_latency(0.05))
    _, slow = network.invoke("a", "b", ping)
    _, fast = network.invoke("b", "a", ping)
    assert slow == pytest.approx(0.1)
    assert fast == pytest.approx(0.002)
    network.clear_link("a", "b")
    _, restored = network.invoke("a", "b", ping)
    assert restored == pytest.approx(0.002)


def test_set_link_loss_drops_invokes_and_sends():
    network = SimNetwork(latency_model=fixed_latency(0.001))
    network.set_link("a", "b", loss_rate=1.0)
    with pytest.raises(TransientNetworkError):
        network.invoke("a", "b", ping)
    assert not network.send("a", "b", lambda: None)
    # the reverse direction is untouched
    network.invoke("b", "a", ping)
    assert network.send("b", "a", lambda: None)


def test_set_link_loss_rate_validation():
    with pytest.raises(ConfigurationError):
        SimNetwork().set_link("a", "b", loss_rate=1.5)


# -- asymmetric and additive partitions -----------------------------------


def test_one_way_block_drops_only_src_to_dst():
    network = SimNetwork()
    network.failures.block({"a"}, {"b"})
    with pytest.raises(NodeUnavailableError):
        network.invoke("a", "b", ping)
    network.invoke("b", "a", ping)   # replies still flow
    network.failures.heal_blocks()
    network.invoke("a", "b", ping)


def test_blocks_are_additive():
    network = SimNetwork()
    network.failures.block({"a"}, {"b"})
    network.failures.block({"c"}, {"b"})
    with pytest.raises(NodeUnavailableError):
        network.invoke("a", "b", ping)
    with pytest.raises(NodeUnavailableError):
        network.invoke("c", "b", ping)
    network.invoke("a", "c", ping)


def test_add_partition_is_additive_where_partition_replaces():
    network = SimNetwork()
    network.failures.partition({"a", "b"})
    network.failures.add_partition({"c", "d"})
    network.invoke("a", "b", ping)
    network.invoke("c", "d", ping)
    with pytest.raises(NodeUnavailableError):
        network.invoke("a", "c", ping)
    # replace-semantics partition() would have dropped the a|b group
    network.failures.partition({"a", "c"})
    network.invoke("a", "c", ping)
    with pytest.raises(NodeUnavailableError):
        network.invoke("a", "b", ping)


# -- trace accounting -----------------------------------------------------


def test_trace_records_faults_queueing_and_sheds():
    network = SimNetwork(latency_model=fixed_latency(0.001))
    network.add_server_queue("srv", service_time=0.01, capacity=5)
    network.start_trace()
    network.failures.limp("srv", 2.0)
    network.set_link("cli", "srv", loss_rate=0.0)
    for _ in range(4):
        try:
            network.invoke("cli", "srv", ping)
        except ServerOverloadedError:
            pass
    kinds = [(event[0], event[4]) for event in network.trace]
    assert ("fault", "applied") in kinds            # limp + set_link
    assert ("queue", "wait") in kinds               # queueing delay
    assert ("invoke", "shed") in kinds              # the fast rejection
    assert ("invoke", "ok") in kinds


def run_traced_scenario(seed):
    network = SimNetwork(seed=seed, latency_model=fixed_latency(0.001))
    network.add_server_queue("srv", service_time=0.005, capacity=3)
    network.start_trace()
    network.failures.limp("srv", 4.0)
    network.set_link("cli", "srv", loss_rate=0.3)
    for _ in range(20):
        try:
            network.invoke("cli", "srv", ping, timeout=0.05)
        except (TransientNetworkError, ServerOverloadedError,
                RequestTimeoutError):
            pass
        network.clock.advance(0.002)
    network.failures.heal_limp("srv")
    network.clear_link("cli", "srv")
    return network.trace_bytes()


def test_same_seed_gray_failure_traces_are_byte_identical():
    assert run_traced_scenario(7) == run_traced_scenario(7)
    assert run_traced_scenario(7) != run_traced_scenario(8)


def test_queue_depth_is_the_load_signal():
    network = SimNetwork(latency_model=fixed_latency(0.0001))
    network.add_server_queue("busy", service_time=0.01, capacity=100)
    assert network.queue_depth("queueless") == 0
    for _ in range(5):
        network.invoke("cli", "busy", ping)
    assert network.queue_depth("busy") == 5
