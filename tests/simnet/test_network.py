"""Network simulation and failure injection."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    NodeUnavailableError,
    RequestTimeoutError,
    TransientNetworkError,
)
from repro.simnet import SimNetwork, fixed_latency, lognormal_latency, uniform_latency


def test_invoke_returns_result_and_latency():
    net = SimNetwork(latency_model=fixed_latency(0.001))
    result, latency = net.invoke("a", "b", lambda x: x + 1, 41)
    assert result == 42
    assert latency == pytest.approx(0.002)  # round trip
    assert net.hops_delivered == 1


def test_crashed_node_unreachable():
    net = SimNetwork()
    net.failures.crash("b")
    with pytest.raises(NodeUnavailableError):
        net.invoke("a", "b", lambda: None)
    net.failures.recover("b")
    net.invoke("a", "b", lambda: None)


def test_transient_errors_by_rate():
    net = SimNetwork(seed=1)
    net.failures.transient_error_rate = 1.0
    with pytest.raises(TransientNetworkError):
        net.invoke("a", "b", lambda: None)
    net.failures.transient_error_rate = 0.0
    net.invoke("a", "b", lambda: None)


def test_timeout_when_latency_exceeds_deadline():
    net = SimNetwork(latency_model=fixed_latency(1.0))
    with pytest.raises(RequestTimeoutError):
        net.invoke("a", "b", lambda: None, timeout=0.1)


def test_partition_blocks_cross_group_traffic():
    net = SimNetwork()
    net.failures.partition({"a", "b"}, {"c"})
    net.invoke("a", "b", lambda: None)
    with pytest.raises(NodeUnavailableError):
        net.invoke("a", "c", lambda: None)
    net.failures.heal_partition()
    net.invoke("a", "c", lambda: None)


def test_nodes_outside_partition_groups_reach_each_other():
    net = SimNetwork()
    net.failures.partition({"a"}, {"b"})
    net.invoke("x", "y", lambda: None)


def test_async_send_delivers_after_delay():
    clock = SimClock()
    net = SimNetwork(clock=clock, latency_model=fixed_latency(0.25))
    delivered = []
    assert net.send("a", "b", lambda: delivered.append(clock.now()))
    assert delivered == []
    clock.advance(0.25)
    assert delivered == [0.25]


def test_async_send_dropped_when_unreachable():
    clock = SimClock()
    net = SimNetwork(clock=clock)
    net.failures.crash("b")
    assert not net.send("a", "b", lambda: None)
    assert net.hops_failed == 1


def test_async_send_dropped_if_destination_crashes_in_flight():
    clock = SimClock()
    net = SimNetwork(clock=clock, latency_model=fixed_latency(1.0))
    delivered = []
    net.send("a", "b", lambda: delivered.append(True))
    net.failures.crash("b")
    clock.advance(2.0)
    assert delivered == []


def test_deterministic_with_same_seed():
    samples_a = [lognormal_latency(0.001)(SimNetwork(seed=9).rng) for _ in range(1)]
    samples_b = [lognormal_latency(0.001)(SimNetwork(seed=9).rng) for _ in range(1)]
    assert samples_a == samples_b


def test_uniform_latency_validated():
    with pytest.raises(ValueError):
        uniform_latency(0.5, 0.1)


def test_uniform_latency_in_range():
    net = SimNetwork(latency_model=uniform_latency(0.001, 0.002), seed=3)
    for _ in range(100):
        _, latency = net.invoke("a", "b", lambda: None)
        assert 0.002 <= latency <= 0.004


def test_async_send_requires_sim_clock():
    from repro.common.clock import WallClock
    net = SimNetwork(clock=WallClock())
    with pytest.raises(TypeError):
        net.send("a", "b", lambda: None)


def test_async_send_dropped_if_source_crashes_in_flight():
    # the delivery-time re-check uses the real (src, dst) pair, so a
    # source crash while the message is in flight also drops it
    clock = SimClock()
    net = SimNetwork(clock=clock, latency_model=fixed_latency(1.0))
    delivered = []
    net.send("a", "b", lambda: delivered.append(True))
    net.failures.crash("a")
    clock.advance(2.0)
    assert delivered == []
    assert net.hops_failed == 1


def test_async_send_dropped_if_partition_forms_in_flight():
    clock = SimClock()
    net = SimNetwork(clock=clock, latency_model=fixed_latency(1.0))
    delivered = []
    net.send("a", "b", lambda: delivered.append(True))
    net.failures.partition({"a"}, {"b"})
    clock.advance(2.0)
    assert delivered == []


def test_async_send_survives_partition_of_other_nodes():
    clock = SimClock()
    net = SimNetwork(clock=clock, latency_model=fixed_latency(1.0))
    delivered = []
    net.send("a", "b", lambda: delivered.append(True))
    net.failures.partition({"a", "b"}, {"c"})  # same side: still flows
    clock.advance(2.0)
    assert delivered == [True]


def test_partition_node_in_multiple_groups_reaches_both():
    # a node listed in two groups straddles the partition and can talk
    # to members of either side (a bridge node)
    net = SimNetwork()
    net.failures.partition({"a", "bridge"}, {"b", "bridge"})
    net.invoke("a", "bridge", lambda: None)
    net.invoke("bridge", "b", lambda: None)
    with pytest.raises(NodeUnavailableError):
        net.invoke("a", "b", lambda: None)


def test_partition_with_empty_group_is_harmless():
    net = SimNetwork()
    net.failures.partition({"a", "b"}, set())
    net.invoke("a", "b", lambda: None)
    # a node in no group still reaches other ungrouped nodes
    net.invoke("x", "y", lambda: None)
    # but grouped <-> ungrouped is severed
    with pytest.raises(NodeUnavailableError):
        net.invoke("a", "x", lambda: None)


def test_heal_then_repartition_applies_latest_groups():
    net = SimNetwork()
    net.failures.partition({"a"}, {"b", "c"})
    with pytest.raises(NodeUnavailableError):
        net.invoke("a", "b", lambda: None)
    net.failures.heal_partition()
    net.invoke("a", "b", lambda: None)
    # repartition along a different cut: old groups must not linger
    net.failures.partition({"a", "b"}, {"c"})
    net.invoke("a", "b", lambda: None)
    with pytest.raises(NodeUnavailableError):
        net.invoke("b", "c", lambda: None)


def test_repartition_replaces_previous_groups():
    net = SimNetwork()
    net.failures.partition({"a"}, {"b"})
    net.failures.partition({"a", "b"})  # direct repartition, no heal
    net.invoke("a", "b", lambda: None)
