"""People search fed by Databus, ranked with social features."""

import pytest

from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.socialgraph import PartitionedSocialGraph
from repro.sqlstore import SqlDatabase


@pytest.fixture
def setup():
    db = SqlDatabase("profiles", clock=SimClock())
    db.create_table(MEMBER_TABLE)
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    graph = PartitionedSocialGraph(8)
    service = PeopleSearchService(relay, graph=graph)
    return db, capture, graph, service


def upsert_member(db, member_id, name, headline, industry="software"):
    txn = db.begin()
    txn.upsert("member_profile", {"member_id": member_id, "name": name,
                                  "headline": headline, "industry": industry})
    txn.commit()


def test_index_follows_the_change_stream(setup):
    db, capture, _, service = setup
    upsert_member(db, 1, "Jun Rao", "Kafka engineer")
    upsert_member(db, 2, "Lin Qiao", "Espresso engineer")
    capture.poll()
    service.catch_up()
    assert service.documents_indexed == 2
    assert {h.doc_id for h in service.search("engineer")} == {1, 2}
    assert [h.doc_id for h in service.search("kafka")] == [1]


def test_profile_edits_reindex(setup):
    db, capture, _, service = setup
    upsert_member(db, 1, "Jun Rao", "Kafka engineer")
    capture.poll()
    service.catch_up()
    upsert_member(db, 1, "Jun Rao", "Databricks co-founder")
    capture.poll()
    service.catch_up()
    assert service.search("kafka") == []
    assert [h.doc_id for h in service.search("databricks")] == [1]


def test_deleted_profiles_drop_out(setup):
    db, capture, _, service = setup
    upsert_member(db, 1, "Jun Rao", "Kafka engineer")
    capture.poll()
    service.catch_up()
    txn = db.begin()
    txn.delete("member_profile", (1,))
    txn.commit()
    capture.poll()
    service.catch_up()
    assert service.search("kafka") == []


def test_social_feature_boosts_in_network_results(setup):
    db, capture, graph, service = setup
    upsert_member(db, 10, "Alex Kafka", "engineer")
    upsert_member(db, 20, "Sam Kafka", "engineer")
    capture.poll()
    service.catch_up()
    viewer = 1
    graph.connect(viewer, 20)  # Sam is a 1st-degree connection
    without_viewer = service.search("kafka engineer")
    assert without_viewer[0].doc_id == 10  # alphabetic tie-break
    with_viewer = service.search("kafka engineer", viewer=viewer)
    assert with_viewer[0].doc_id == 20
    assert with_viewer[0].feature_score == 1.0


def test_second_degree_boost_smaller_than_first(setup):
    db, capture, graph, service = setup
    upsert_member(db, 10, "A Kafka", "engineer")
    upsert_member(db, 20, "B Kafka", "engineer")
    capture.poll()
    service.catch_up()
    graph.connect(1, 10)           # 1st degree
    graph.connect(1, 5)
    graph.connect(5, 20)           # 2nd degree
    hits = service.search("kafka", viewer=1)
    by_id = {h.doc_id: h for h in hits}
    assert by_id[10].feature_score > by_id[20].feature_score > 0


def test_checkpoint_resume(setup):
    db, capture, graph, service = setup
    upsert_member(db, 1, "Jun Rao", "Kafka engineer")
    capture.poll()
    service.catch_up()
    restarted = PeopleSearchService(service.relay, graph=graph,
                                    checkpoint=service.client.checkpoint)
    upsert_member(db, 2, "Lin Qiao", "Espresso engineer")
    capture.poll()
    restarted.catch_up()
    assert restarted.documents_indexed == 1  # only the new change
