"""Ranked inverted index: TF-IDF, boosts, feature layer."""

import pytest

from repro.common.errors import ConfigurationError
from repro.search import RankedInvertedIndex


@pytest.fixture
def index():
    built = RankedInvertedIndex({"name": 3.0, "headline": 1.0})
    built.add(1, {"name": "Jay Kreps", "headline": "Kafka infrastructure"})
    built.add(2, {"name": "Ada Lovelace", "headline": "Kafka enthusiast"})
    built.add(3, {"name": "Kafka Tamura", "headline": "Novel character"})
    return built


def test_boost_validation():
    with pytest.raises(ConfigurationError):
        RankedInvertedIndex({})
    with pytest.raises(ConfigurationError):
        RankedInvertedIndex({"name": 0})


def test_all_matching_documents_returned(index):
    hits = index.search("kafka")
    assert {h.doc_id for h in hits} == {1, 2, 3}


def test_name_field_outranks_headline(index):
    hits = index.search("kafka")
    assert hits[0].doc_id == 3  # name hit with boost 3.0


def test_multi_term_accumulates(index):
    hits = index.search("kafka infrastructure")
    assert hits[0].doc_id == 1  # matches both terms


def test_no_match_returns_empty(index):
    assert index.search("espresso") == []
    assert index.search("") == []
    assert index.search("!!!") == []


def test_rare_terms_weigh_more_than_common():
    index = RankedInvertedIndex({"text": 1.0})
    for i in range(10):
        index.add(i, {"text": "engineer common"})
    index.add(99, {"text": "engineer distributed"})
    hits = index.search("distributed engineer")
    assert hits[0].doc_id == 99  # the rare term dominates


def test_update_replaces_document(index):
    index.add(1, {"name": "Jay Kreps", "headline": "Samza now"})
    assert all(h.doc_id != 1 for h in index.search("infrastructure"))
    assert any(h.doc_id == 1 for h in index.search("samza"))


def test_remove_document(index):
    index.remove(3)
    assert {h.doc_id for h in index.search("kafka")} == {1, 2}
    assert len(index) == 2
    index.remove(3)  # idempotent


def test_limit(index):
    assert len(index.search("kafka", limit=2)) == 2


def test_feature_scorer_reranks(index):
    # text-wise doc 3 wins "kafka"; a feature can override
    hits = index.search("kafka",
                        feature_scorer=lambda doc: 5.0 if doc == 2 else 0.0,
                        feature_weight=1.0)
    assert hits[0].doc_id == 2
    assert hits[0].feature_score == 5.0
    # with weight 0 the feature is ignored
    hits = index.search("kafka",
                        feature_scorer=lambda doc: 5.0 if doc == 2 else 0.0,
                        feature_weight=0.0)
    assert hits[0].doc_id == 3


def test_empty_fields_not_indexed():
    index = RankedInvertedIndex({"name": 1.0, "headline": 1.0})
    index.add(1, {"name": "Solo", "headline": ""})
    assert len(index) == 1
    assert index.search("solo")[0].doc_id == 1
