"""Zookeeper-style coordination semantics."""

import pytest

from repro.zookeeper import (
    CreateMode,
    EventType,
    NodeExistsError,
    NoNodeError,
    NotEmptyError,
    ZooKeeperServer,
)
from repro.zookeeper.server import BadVersionError, SessionExpiredError


@pytest.fixture
def zk():
    return ZooKeeperServer()


def test_create_and_get(zk):
    session = zk.connect()
    session.create("/brokers", b"cluster-1")
    data, version = session.get("/brokers")
    assert data == b"cluster-1"
    assert version == 0


def test_create_requires_parent(zk):
    session = zk.connect()
    with pytest.raises(NoNodeError):
        session.create("/a/b/c")


def test_ensure_path_builds_ancestors(zk):
    session = zk.connect()
    session.ensure_path("/consumers/group1/ids")
    assert session.exists("/consumers/group1/ids")
    session.ensure_path("/consumers/group1/ids")  # idempotent


def test_duplicate_create_rejected(zk):
    session = zk.connect()
    session.create("/x")
    with pytest.raises(NodeExistsError):
        session.create("/x")


def test_set_bumps_version_and_cas(zk):
    session = zk.connect()
    session.create("/offset", b"0")
    assert session.set("/offset", b"1") == 1
    assert session.set("/offset", b"2", expected_version=1) == 2
    with pytest.raises(BadVersionError):
        session.set("/offset", b"9", expected_version=0)


def test_delete_refuses_non_empty(zk):
    session = zk.connect()
    session.ensure_path("/a/b")
    with pytest.raises(NotEmptyError):
        session.delete("/a")
    session.delete("/a", recursive=True)
    assert not session.exists("/a")


def test_sequential_nodes_get_monotonic_suffixes(zk):
    session = zk.connect()
    session.create("/queue")
    p1 = session.create("/queue/item-", mode=CreateMode.PERSISTENT_SEQUENTIAL)
    p2 = session.create("/queue/item-", mode=CreateMode.PERSISTENT_SEQUENTIAL)
    assert p1 < p2
    assert session.get_children("/queue") == [p1.rsplit("/", 1)[1],
                                              p2.rsplit("/", 1)[1]]


def test_ephemerals_die_with_session(zk):
    owner = zk.connect()
    observer = zk.connect()
    owner.create("/consumers", b"")
    owner.create("/consumers/c1", mode=CreateMode.EPHEMERAL)
    assert observer.exists("/consumers/c1")
    owner.close()
    assert not observer.exists("/consumers/c1")
    with pytest.raises(SessionExpiredError):
        owner.get("/consumers")


def test_data_watch_fires_once(zk):
    session = zk.connect()
    session.create("/topic", b"a")
    events = []
    session.get("/topic", watch=events.append)
    session.set("/topic", b"b")
    session.set("/topic", b"c")  # no watch registered any more
    assert len(events) == 1
    assert events[0].type is EventType.DATA_CHANGED


def test_child_watch_fires_on_membership_change(zk):
    session = zk.connect()
    session.create("/group")
    events = []
    session.get_children("/group", watch=events.append)
    session.create("/group/member1")
    assert [e.type for e in events] == [EventType.CHILDREN_CHANGED]
    # re-register and observe a delete
    session.get_children("/group", watch=events.append)
    session.delete("/group/member1")
    assert len(events) == 2


def test_exists_watch_fires_on_creation(zk):
    session = zk.connect()
    events = []
    assert not session.exists("/later", watch=events.append)
    session.create("/later")
    assert [e.type for e in events] == [EventType.CREATED]


def test_exists_watch_on_live_node_fires_on_delete(zk):
    session = zk.connect()
    session.create("/live")
    events = []
    assert session.exists("/live", watch=events.append)
    session.delete("/live")
    assert [e.type for e in events] == [EventType.DELETED]


def test_session_expiry_fires_watches_for_ephemerals(zk):
    owner = zk.connect()
    observer = zk.connect()
    owner.create("/members", b"")
    owner.create("/members/m1", mode=CreateMode.EPHEMERAL)
    events = []
    observer.get_children("/members", watch=events.append)
    zk.expire_session(owner.session_id)
    assert len(events) == 1


def test_ephemeral_sequential_combo(zk):
    session = zk.connect()
    session.create("/election")
    path = session.create("/election/n-", mode=CreateMode.EPHEMERAL_SEQUENTIAL)
    assert path.startswith("/election/n-")
    session.close()
    other = zk.connect()
    assert other.get_children("/election") == []


def test_invalid_paths_rejected(zk):
    session = zk.connect()
    for bad in ("no-slash", "/trailing/", ""):
        with pytest.raises(ValueError):
            session.create(bad)


def test_delete_with_bad_version_rejected(zk):
    session = zk.connect()
    session.create("/v", b"x")
    session.set("/v", b"y")
    with pytest.raises(BadVersionError):
        session.delete("/v", expected_version=0)
    session.delete("/v", expected_version=1)
