"""Workload generator distributions and determinism."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import (
    ActivityEventGenerator,
    DiurnalRate,
    KeyValueWorkload,
    ProfileViewEventGenerator,
    RequestMix,
    ZipfGenerator,
    zipf_sizes,
)


def test_zipf_rejects_bad_params():
    with pytest.raises(ConfigurationError):
        ZipfGenerator(0)
    with pytest.raises(ConfigurationError):
        ZipfGenerator(10, theta=-1)


def test_zipf_samples_in_range():
    gen = ZipfGenerator(100, seed=1)
    for _ in range(1000):
        assert 0 <= gen.next() < 100


def test_zipf_is_skewed():
    gen = ZipfGenerator(1000, theta=0.99, seed=2)
    samples = [gen.next() for _ in range(20_000)]
    top_ten = sum(1 for s in samples if s < 10)
    assert top_ten / len(samples) > 0.2  # head dominates


def test_zipf_theta_zero_is_uniform_ish():
    gen = ZipfGenerator(10, theta=0.0, seed=3)
    samples = [gen.next() for _ in range(20_000)]
    counts = [samples.count(i) for i in range(10)]
    assert max(counts) < 2 * min(counts)


def test_zipf_deterministic_by_seed():
    a = [ZipfGenerator(50, seed=7).next() for _ in range(1)]
    b = [ZipfGenerator(50, seed=7).next() for _ in range(1)]
    assert a == b


def test_zipf_sizes_bounded():
    sizes = zipf_sizes(500, min_bytes=64, max_bytes=4096, seed=1)
    assert all(64 <= s <= 4096 for s in sizes)
    assert len(sizes) == 500


def test_zipf_sizes_skewed_small():
    sizes = zipf_sizes(2000, min_bytes=64, max_bytes=65536, seed=2)
    small = sum(1 for s in sizes if s < 1024)
    assert small / len(sizes) > 0.5


def test_request_mix_validation():
    with pytest.raises(ConfigurationError):
        RequestMix(read_fraction=1.5)


def test_request_mix_ratio():
    mix = RequestMix(read_fraction=0.6)
    rng = random.Random(4)
    reads = sum(1 for _ in range(10_000) if mix.is_read(rng))
    assert 0.55 < reads / 10_000 < 0.65


def test_workload_operations_shape():
    workload = KeyValueWorkload(num_keys=100, value_bytes=256, seed=5)
    ops = list(workload.operations(500))
    assert len(ops) == 500
    for op in ops:
        assert op.kind in ("get", "put")
        assert op.key.startswith(b"member:")
        if op.kind == "put":
            assert len(op.value) == 256


def test_workload_preload_covers_all_keys():
    workload = KeyValueWorkload(num_keys=50, seed=6)
    keys = {op.key for op in workload.preload()}
    assert len(keys) == 50


def test_workload_zipfian_value_sizes():
    workload = KeyValueWorkload(num_keys=200, value_bytes=8192,
                                value_size_zipfian=True, seed=7)
    sizes = {len(op.value) for op in workload.preload()}
    assert len(sizes) > 5  # varied sizes


def test_activity_events_have_required_fields():
    gen = ActivityEventGenerator(num_members=1000, seed=8, server_name="fe-9")
    events = list(gen.events(200, timestamp=123.0))
    assert len(events) == 200
    for event in events:
        assert event["server"] == "fe-9"
        assert event["timestamp"] == 123.0
        assert event["event_type"] in ("login", "page_view", "click", "like",
                                       "share", "comment", "search_query")
        if event["event_type"] == "search_query":
            assert "query" in event


def test_activity_event_sequence_monotonic():
    gen = ActivityEventGenerator(seed=9)
    seqs = [gen.next_event()["seq"] for _ in range(50)]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 50


def test_profile_view_events_never_self_view():
    gen = ProfileViewEventGenerator(num_members=20, seed=10)
    for event in gen.events(2000):
        assert event["viewer"] != event["viewee"]
        assert event["viewer"].startswith("member:")


def test_profile_view_member_id_is_fixed_width():
    assert ProfileViewEventGenerator.member_id(42) == "member:00000042"


def test_profile_view_deterministic_by_seed():
    a = list(ProfileViewEventGenerator(100, seed=3).events(50, timestamp=9.0))
    b = list(ProfileViewEventGenerator(100, seed=3).events(50, timestamp=9.0))
    assert a == b
    assert a != list(ProfileViewEventGenerator(100, seed=4).events(50))


def test_profile_view_viewees_are_skewed():
    gen = ProfileViewEventGenerator(num_members=1000, seed=11)
    viewees = [e["viewee"] for e in gen.events(10_000)]
    top_ten = {ProfileViewEventGenerator.member_id(r) for r in range(10)}
    assert sum(1 for v in viewees if v in top_ten) / len(viewees) > 0.2


def test_profile_view_validation():
    with pytest.raises(ConfigurationError):
        ProfileViewEventGenerator(num_members=1)


def test_diurnal_rate_shape():
    rate = DiurnalRate(2.0, 10.0, day_seconds=100.0)
    assert rate.rate_at(0.0) == pytest.approx(2.0)     # midnight trough
    assert rate.rate_at(50.0) == pytest.approx(10.0)   # midday peak
    assert rate.rate_at(100.0) == pytest.approx(2.0)


def test_diurnal_counts_sum_to_the_integral_without_drift():
    rate = DiurnalRate(2.0, 10.0, day_seconds=100.0)
    total = sum(rate.events_in(t, t + 5.0) for t in range(0, 100, 5))
    # mean rate is (trough + peak)/2 = 6 ev/s over 100 s
    assert abs(total - 600) <= 1


def test_diurnal_counts_are_deterministic():
    a = DiurnalRate(1.0, 5.0, day_seconds=720.0)
    b = DiurnalRate(1.0, 5.0, day_seconds=720.0)
    ticks = [(t, t + 30.0) for t in range(0, 720, 30)]
    assert [a.events_in(*tick) for tick in ticks] == \
        [b.events_in(*tick) for tick in ticks]


def test_diurnal_peak_tick_outweighs_trough_tick():
    rate = DiurnalRate(1.0, 9.0, day_seconds=100.0)
    trough = rate.events_in(0.0, 10.0)
    rate._carry = 0.0
    peak = rate.events_in(45.0, 55.0)
    assert peak > 2 * trough


def test_diurnal_validation():
    with pytest.raises(ConfigurationError):
        DiurnalRate(-1.0, 5.0)
    with pytest.raises(ConfigurationError):
        DiurnalRate(5.0, 2.0)
    with pytest.raises(ConfigurationError):
        DiurnalRate(1.0, 2.0, day_seconds=0.0)
    with pytest.raises(ConfigurationError):
        DiurnalRate(1.0, 2.0).events_in(5.0, 1.0)
