"""Job topology validation, Helix placement, handoff, and kill recovery."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError, NodeUnavailableError
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet
from repro.simnet.disk import SimDisk
from repro.streams import (
    JobCoordinator,
    StreamContainer,
    StreamJobSpec,
    encode_stream_message,
    route_key,
)
from repro.streams.task import StreamTask
from repro.zookeeper import ZooKeeperServer


class CountTask(StreamTask):
    def init(self, context):
        self.counts = context.store("counts")

    def process(self, envelope, collector):
        self.counts.put(envelope.key,
                        (self.counts.get(envelope.key) or 0) + 1)


class ForwardByValueTask(StreamTask):
    """Stateless repartition hop: re-keys each record by value["to"]."""

    def __init__(self, output_topic: str):
        self.output_topic = output_topic

    def process(self, envelope, collector):
        collector.send(self.output_topic, envelope.value["to"], {})


def count_spec(partitions: int = 2) -> StreamJobSpec:
    spec = StreamJobSpec("job", partitions)
    spec.stage("count", ["in"], CountTask, stores=["counts"])
    return spec


class Estate:
    def __init__(self, partitions: int = 2, containers: int = 2):
        self.clock = SimClock()
        self.disk = SimDisk(seed=11)
        self.zookeeper = ZooKeeperServer()
        self.cluster = KafkaCluster(1, "/kafka", zookeeper=self.zookeeper,
                                    clock=self.clock,
                                    partitions_per_topic=partitions,
                                    disk=self.disk)
        self.cluster.create_topic("in", partitions=partitions)
        self.spec = count_spec(partitions)
        self.coordinator = JobCoordinator(self.spec, self.cluster,
                                          self.zookeeper)
        self.containers = [
            StreamContainer(f"c{i}", self.spec, self.cluster, self.zookeeper,
                            self.clock, self.disk.scope(f"c{i}"), "/state",
                            snapshot_interval_commits=2)
            for i in range(containers)]
        self.coordinator.deploy(self.containers)

    def produce(self, partition: int, records: list[tuple[str, object]]):
        messages = [Message(encode_stream_message(key, value, 0.0))
                    for key, value in records]
        broker = self.cluster.broker_for("in", partition)
        broker.produce("in", partition, MessageSet(messages))
        broker.log("in", partition).flush()

    def cycle(self) -> int:
        return sum(c.run_cycle() for c in self.containers if c.alive)


# -- spec validation --------------------------------------------------------

def test_spec_rejects_duplicate_stage_and_store_names():
    spec = StreamJobSpec("j", 1)
    spec.stage("a", ["in"], CountTask, stores=["s"])
    with pytest.raises(ConfigurationError):
        spec.stage("a", ["in"], CountTask)
    with pytest.raises(ConfigurationError):
        spec.stage("b", ["in"], CountTask, stores=["s"])


def test_spec_rejects_empty_topology_parameters():
    with pytest.raises(ConfigurationError):
        StreamJobSpec("", 1)
    with pytest.raises(ConfigurationError):
        StreamJobSpec("j", 0)
    with pytest.raises(ConfigurationError):
        StreamJobSpec("j", 1).repartition("")


def test_repartition_topics_are_namespaced_and_deduplicated():
    spec = StreamJobSpec("feedish", 2)
    topic = spec.repartition("hop")
    assert topic == "__repartition-feedish-hop"
    assert spec.repartition("hop") == topic
    assert spec.repartition_topics == [topic]


def test_coordinator_rejects_mispartitioned_inputs():
    zookeeper = ZooKeeperServer()
    cluster = KafkaCluster(1, "/kafka", zookeeper=zookeeper,
                           clock=SimClock(), partitions_per_topic=3,
                           disk=SimDisk(seed=1))
    cluster.create_topic("in", partitions=3)   # != the job's 2
    with pytest.raises(ConfigurationError, match="co-partitioned"):
        JobCoordinator(count_spec(partitions=2), cluster, zookeeper)


def test_coordinator_creates_internal_topics():
    zookeeper = ZooKeeperServer()
    cluster = KafkaCluster(1, "/kafka", zookeeper=zookeeper,
                           clock=SimClock(), partitions_per_topic=2,
                           disk=SimDisk(seed=1))
    cluster.create_topic("in", partitions=2)
    JobCoordinator(count_spec(2), cluster, zookeeper)
    assert "__changelog-job-counts" in cluster.topics()
    assert len(cluster.topic_layout("__changelog-job-counts")) == 2


# -- placement and processing ----------------------------------------------

def test_deploy_places_every_partition_exactly_once():
    estate = Estate()
    owners = estate.coordinator.assignments("count")
    assert set(owners) == {0, 1}
    assert all(owner in {"c0", "c1"} for owner in owners.values())
    hosted = {key for c in estate.containers for key in c.tasks}
    assert hosted == {("count", 0), ("count", 1)}


def test_processing_reaches_the_owning_task():
    estate = Estate()
    estate.produce(0, [("a", 1)])
    estate.produce(1, [("b", 1), ("b", 1)])
    assert estate.cycle() == 3
    owners = estate.coordinator.assignments("count")
    task0 = next(c for c in estate.containers
                 if c.name == owners[0]).task("count", 0)
    task1 = next(c for c in estate.containers
                 if c.name == owners[1]).task("count", 1)
    assert task0.stores["counts"].get("a") == 1
    assert task1.stores["counts"].get("b") == 2


def test_graceful_handoff_preserves_state_without_replay_loss():
    """stop() commits; the rebalanced owner resumes from the committed
    offsets with the committed state — nothing reprocessed."""
    estate = Estate()
    estate.produce(0, [("a", 1)])
    estate.produce(1, [("b", 1)])
    estate.cycle()
    victim = estate.containers[0]
    moved = sorted(victim.tasks)
    victim.stop()
    estate.coordinator.rebalance()
    survivor = estate.containers[1]
    assert set(survivor.tasks) == {("count", 0), ("count", 1)}
    assert survivor.poll() == 0      # handoff committed: no redelivery
    for key in moved:
        task = survivor.tasks[key]
        assert task.stores["counts"].keys()   # state really moved


def test_kill_and_rebalance_recovers_committed_state():
    estate = Estate()
    estate.produce(0, [("a", 1)])
    estate.produce(1, [("b", 1)])
    estate.cycle()
    estate.containers[0].kill()
    assert estate.containers[0].kills == 1
    estate.coordinator.rebalance()
    survivor = estate.containers[1]
    assert set(survivor.tasks) == {("count", 0), ("count", 1)}
    assert survivor.task("count", 0).stores["counts"].get("a") == 1
    assert survivor.task("count", 1).stores["counts"].get("b") == 1

    # the dead container rejoins and takes work back
    estate.containers[0].restart()
    estate.coordinator.rebalance()
    hosted = {key for c in estate.containers for key in c.tasks}
    assert hosted == {("count", 0), ("count", 1)}
    assert all(len(c.tasks) == 1 for c in estate.containers)


def test_rebalance_with_no_live_containers_raises():
    estate = Estate()
    for container in estate.containers:
        container.kill()
    with pytest.raises(NodeUnavailableError):
        estate.coordinator.rebalance()


def test_deploy_guards():
    estate = Estate()
    with pytest.raises(ConfigurationError):
        estate.coordinator.deploy(estate.containers)   # already deployed
    zookeeper = ZooKeeperServer()
    cluster = KafkaCluster(1, "/kafka", zookeeper=zookeeper,
                           clock=SimClock(), partitions_per_topic=2,
                           disk=SimDisk(seed=2))
    cluster.create_topic("in", partitions=2)
    coordinator = JobCoordinator(count_spec(2), cluster, zookeeper)
    with pytest.raises(ConfigurationError):
        coordinator.deploy([])


def test_container_registers_consumer_group_id():
    estate = Estate()
    session = estate.zookeeper.connect()
    ids = session.get_children("/consumers/streams-job/ids")
    assert sorted(ids) == ["c0", "c1"]
    estate.containers[0].kill()
    assert session.get_children("/consumers/streams-job/ids") == ["c1"]


def test_drain_loop_cannot_strand_uncommitted_repartition_records():
    """A container that polled without committing owes its staged
    repartition records.  When a *different* container is then killed
    and the survivor's next cycle handles zero fresh input, the cycle's
    return value must still be non-zero — the commit published new
    downstream work — or ``while sum(run_cycle())`` drains one cycle
    too early and the sink never sees the records."""
    clock = SimClock()
    disk = SimDisk(seed=23)
    zookeeper = ZooKeeperServer()
    cluster = KafkaCluster(1, "/kafka", zookeeper=zookeeper, clock=clock,
                           partitions_per_topic=2, disk=disk)
    cluster.create_topic("in", partitions=2)
    spec = StreamJobSpec("hop", 2)
    hop_topic = spec.repartition("hop")
    spec.stage("fwd", ["in"],
               lambda: ForwardByValueTask(hop_topic))
    spec.stage("sink", [hop_topic], CountTask, stores=["counts"])
    coordinator = JobCoordinator(spec, cluster, zookeeper)
    fleet = [StreamContainer(f"c{i}", spec, cluster, zookeeper, clock,
                             disk.scope(f"c{i}"), "/state",
                             snapshot_interval_commits=2)
             for i in range(2)]
    coordinator.deploy(fleet)

    # every record routes to one partition; find its fwd-task's host
    key = "hotkey"
    partition = route_key(key, 2)
    owner = coordinator.owner_of("fwd", partition)
    survivor = next(c for c in fleet if c.name == owner)
    victim = next(c for c in fleet if c.name != owner)

    messages = [Message(encode_stream_message(key, {"to": f"k{i}"}, 0.0))
                for i in range(3)]
    broker = cluster.broker_for("in", partition)
    broker.produce("in", partition, MessageSet(messages))
    broker.log("in", partition).flush()

    survivor.poll()          # processed + staged, NOT committed
    victim.kill()
    coordinator.rebalance()

    while sum(c.run_cycle() for c in fleet if c.alive):
        pass

    counted = sum((c.task("sink", p).stores["counts"].get(f"k{i}") or 0)
                  for c in fleet if c.alive
                  for p in range(2) if ("sink", p) in c.tasks
                  for i in range(3))
    assert counted == 3, counted
