"""The two shipped applications: WVYP counters and feed fan-out."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError, NodeUnavailableError
from repro.common.metrics import MetricsRegistry
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet
from repro.simnet.disk import SimDisk
from repro.streams import (
    JobCoordinator,
    KeyedStateStore,
    StreamContainer,
    encode_stream_message,
    route_key,
)
from repro.streams.apps import (
    INBOX_CAP,
    ConnectionFanoutTask,
    FeedService,
    InboxTask,
    ProfileViewCounterTask,
    ViewRouterTask,
    WhoViewedYourProfileService,
    feed_fanout_job,
    who_viewed_your_profile_job,
)
from repro.streams.task import Envelope, MessageCollector, TaskContext
from repro.zookeeper import ZooKeeperServer


def make_context(stage: str, stores: dict[str, KeyedStateStore]
                 ) -> TaskContext:
    return TaskContext(stage, 0, stores, SimClock(), MetricsRegistry())


def envelope(key: str, value: object, timestamp: float = 0.0,
             topic: str = "in") -> Envelope:
    return Envelope(topic=topic, partition=0, offset=0, next_offset=1,
                    key=key, value=value, timestamp=timestamp)


# -- unit: task logic -------------------------------------------------------

def test_view_router_rekeys_by_viewee():
    task = ViewRouterTask("out")
    collector = MessageCollector()
    task.process(envelope("viewer-1", {"viewee": "member-9", "ts": 4.5},
                          timestamp=4.5), collector)
    assert collector.drain() == [
        ("out", "member-9", {"viewer": "viewer-1", "ts": 4.5})]


def test_counter_windows_by_event_time_not_arrival():
    task = ProfileViewCounterTask(window_s=10.0)
    views = KeyedStateStore("views")
    task.init(make_context("count-views", {"views": views}))
    collector = MessageCollector()
    for ts in (1.0, 9.0, 11.0):
        task.process(envelope("m", {"viewer": "v", "ts": ts}), collector)
    assert views.get("m:w00000000") == 2
    assert views.get("m:w00000001") == 1
    assert views.get("m:total") == 3


def test_counter_rejects_nonpositive_window():
    with pytest.raises(ConfigurationError):
        ProfileViewCounterTask(window_s=0)


def test_fanout_folds_connections_then_fans_activity():
    task = ConnectionFanoutTask("out")
    graph = KeyedStateStore("graph")
    task.init(make_context("fanout", {"graph": graph}))
    collector = MessageCollector()
    task.process(envelope("a", {"other": "c"}), collector)
    task.process(envelope("a", {"other": "b"}), collector)
    task.process(envelope("a", {"other": "b"}), collector)   # duplicate edge
    assert collector.drain() == []
    assert graph.get("conn:a") == ["b", "c"]                 # sorted, deduped

    task.process(envelope("a", {"kind": "post", "id": 7}, timestamp=3.0),
                 collector)
    entry = {"actor": "a", "kind": "post", "id": 7, "ts": 3.0}
    assert collector.drain() == [("out", "b", entry), ("out", "c", entry)]


def test_fanout_without_connections_emits_nothing():
    task = ConnectionFanoutTask("out")
    task.init(make_context("fanout", {"graph": KeyedStateStore("graph")}))
    collector = MessageCollector()
    task.process(envelope("loner", {"kind": "post", "id": 1}), collector)
    assert collector.drain() == []


def test_inbox_sorts_by_event_time_and_caps():
    task = InboxTask()
    inbox = KeyedStateStore("inbox")
    task.init(make_context("inbox", {"inbox": inbox}))
    collector = MessageCollector()
    for i in range(INBOX_CAP + 10):
        # deliver in reverse event-time order: storage must sort anyway
        ts = float(INBOX_CAP + 10 - i)
        task.process(envelope("m", {"actor": "a", "kind": "k",
                                    "id": i, "ts": ts}), collector)
    entries = inbox.get("m")
    assert len(entries) == INBOX_CAP
    assert [e["ts"] for e in entries] == sorted(e["ts"] for e in entries)
    assert entries[0]["ts"] == 11.0   # the 10 oldest were evicted


def test_inbox_order_is_arrival_independent():
    entries = [{"actor": "a", "kind": "k", "id": i, "ts": float(i % 5)}
               for i in range(12)]
    boxes = []
    for ordering in (entries, list(reversed(entries))):
        task = InboxTask()
        inbox = KeyedStateStore("inbox")
        task.init(make_context("inbox", {"inbox": inbox}))
        collector = MessageCollector()
        for entry in ordering:
            task.process(envelope("m", entry), collector)
        boxes.append(inbox.get("m"))
    assert boxes[0] == boxes[1]


# -- end to end: topology + serving ----------------------------------------

class Deployment:
    def __init__(self, spec, input_topics: list[str], partitions: int = 2):
        self.clock = SimClock()
        self.disk = SimDisk(seed=21)
        self.zookeeper = ZooKeeperServer()
        self.cluster = KafkaCluster(1, "/kafka", zookeeper=self.zookeeper,
                                    clock=self.clock,
                                    partitions_per_topic=partitions,
                                    disk=self.disk)
        for topic in input_topics:
            self.cluster.create_topic(topic, partitions=partitions)
        self.spec = spec
        self.coordinator = JobCoordinator(spec, self.cluster, self.zookeeper)
        self.containers = [
            StreamContainer(f"c{i}", spec, self.cluster, self.zookeeper,
                            self.clock, self.disk.scope(f"c{i}"), "/state")
            for i in range(2)]
        self.coordinator.deploy(self.containers)

    def produce(self, topic: str, key: str, value: object,
                timestamp: float = 0.0) -> None:
        partition = route_key(key, len(self.cluster.topic_layout(topic)))
        broker = self.cluster.broker_for(topic, partition)
        broker.produce(topic, partition, MessageSet(
            [Message(encode_stream_message(key, value, timestamp))]))
        broker.log(topic, partition).flush()

    def drain(self) -> None:
        for _ in range(20):
            if sum(c.run_cycle() for c in self.containers if c.alive) == 0:
                return
        raise AssertionError("deployment did not drain")


def test_wvyp_end_to_end_counts_through_repartition():
    deployment = Deployment(
        who_viewed_your_profile_job(2, window_s=10.0), ["profile-views"])
    for viewer, ts in (("v1", 1.0), ("v2", 2.0), ("v1", 12.0)):
        deployment.produce("profile-views", viewer,
                           {"viewee": "m-42", "ts": ts}, ts)
    deployment.produce("profile-views", "v1", {"viewee": "m-7", "ts": 3.0},
                       3.0)
    deployment.drain()
    service = WhoViewedYourProfileService(deployment.coordinator,
                                          deployment.containers)
    assert service.total_views("m-42") == 3
    assert service.views_by_window("m-42") == {0: 2, 1: 1}
    assert service.total_views("m-7") == 1
    assert service.total_views("m-unseen") == 0


def test_wvyp_service_raises_when_owner_is_down():
    deployment = Deployment(
        who_viewed_your_profile_job(2, window_s=10.0), ["profile-views"])
    service = WhoViewedYourProfileService(deployment.coordinator,
                                          deployment.containers)
    for container in deployment.containers:
        container.kill()
    with pytest.raises(NodeUnavailableError):
        service.total_views("m-1")


def test_feed_end_to_end_joins_and_fans_out():
    deployment = Deployment(feed_fanout_job(2), ["connections", "activity"])
    deployment.produce("connections", "alice", {"other": "bob"})
    deployment.produce("connections", "alice", {"other": "carol"})
    deployment.drain()               # fold the graph before activity
    deployment.produce("activity", "alice", {"kind": "post", "id": 1}, 5.0)
    deployment.produce("activity", "alice", {"kind": "like", "id": 2}, 6.0)
    deployment.drain()
    service = FeedService(deployment.coordinator, deployment.containers)
    bob_inbox = service.inbox("bob")
    assert [(e["kind"], e["ts"]) for e in bob_inbox] == [("post", 5.0),
                                                         ("like", 6.0)]
    assert service.inbox("carol") == bob_inbox
    assert service.inbox("alice") == []   # no one connects *to* alice
