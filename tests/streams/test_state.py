"""Keyed state stores and WAL-framed snapshots."""

import pytest

from repro.common.errors import ConfigurationError
from repro.simnet.disk import SimDisk
from repro.streams.state import KeyedStateStore, load_snapshot, write_snapshot


def test_put_get_delete_roundtrip():
    store = KeyedStateStore("s")
    store.put("a", 1)
    store.put("b", {"x": [1, 2]})
    assert store.get("a") == 1
    assert store.get("b") == {"x": [1, 2]}
    store.delete("a")
    assert store.get("a") is None
    assert "a" not in store
    assert len(store) == 1


def test_none_is_reserved_for_tombstones():
    store = KeyedStateStore("s")
    with pytest.raises(ConfigurationError):
        store.put("a", None)


def test_mutation_hook_sees_absolute_values_and_tombstones():
    logged = []
    store = KeyedStateStore("s", on_mutation=lambda k, v: logged.append((k, v)))
    store.put("a", 1)
    store.put("a", 2)
    store.delete("a")
    assert logged == [("a", 1), ("a", 2), ("a", None)]


def test_apply_does_not_relog():
    logged = []
    store = KeyedStateStore("s", on_mutation=lambda k, v: logged.append((k, v)))
    store.apply("a", 5)
    store.apply("a", None)
    assert logged == []
    assert store.get("a") is None


def test_iteration_is_sorted():
    store = KeyedStateStore("s")
    for key in ("zebra", "apple", "mango"):
        store.put(key, 1)
    assert store.keys() == ["apple", "mango", "zebra"]
    assert [k for k, _ in store.items()] == ["apple", "mango", "zebra"]


def test_range_scans_by_prefix():
    store = KeyedStateStore("s")
    store.put("m1:w01", 3)
    store.put("m1:w02", 5)
    store.put("m2:w01", 7)
    assert list(store.range("m1:")) == [("m1:w01", 3), ("m1:w02", 5)]


def test_fingerprint_excludes_prefix():
    store = KeyedStateStore("s")
    store.put("__seen/x", [3, 1])
    store.put("a", 1)
    full = store.fingerprint()
    filtered = store.fingerprint(exclude_prefix="__seen/")
    assert b"__seen" in full
    assert b"__seen" not in filtered
    assert b'["a",1]' in filtered


def test_snapshot_roundtrip():
    disk = SimDisk(seed=1).scope("n")
    store = KeyedStateStore("views")
    store.put("a", 1)
    store.put("b", [1, "two"])
    assert write_snapshot(disk, "/s/views.snap", store, 123) == 2
    recovered = KeyedStateStore("views")
    recovered.put("junk", 9)  # must be replaced, not merged
    assert load_snapshot(disk, "/s/views.snap", recovered) == 123
    assert recovered.items() == store.items()


def test_snapshot_missing_and_wrong_store_return_none():
    disk = SimDisk(seed=1).scope("n")
    store = KeyedStateStore("views")
    assert load_snapshot(disk, "/nope", store) is None
    write_snapshot(disk, "/s/views.snap", store, 1)
    other = KeyedStateStore("other")
    assert load_snapshot(disk, "/s/views.snap", other) is None


def test_snapshot_overwrite_is_atomic_replace():
    disk = SimDisk(seed=1).scope("n")
    store = KeyedStateStore("views")
    store.put("a", 1)
    write_snapshot(disk, "/s/views.snap", store, 10)
    store.put("a", 2)
    write_snapshot(disk, "/s/views.snap", store, 20)
    recovered = KeyedStateStore("views")
    assert load_snapshot(disk, "/s/views.snap", recovered) == 20
    assert recovered.get("a") == 2
    assert not disk.exists("/s/views.snap.tmp")


def test_torn_snapshot_is_rejected_entirely():
    """A snapshot with a valid header but torn entries must not load:
    half an image plus a replay from the header's offset would lose the
    keys after the tear."""
    disk = SimDisk(seed=1).scope("n")
    store = KeyedStateStore("views")
    for i in range(20):
        store.put(f"key-{i:03d}", i)
    write_snapshot(disk, "/s/views.snap", store, 99)
    with disk.open("/s/views.snap", "rb") as f:
        data = f.read()
    with disk.open("/s/views.snap", "wb") as f:
        f.write(data[:-7])  # tear mid-frame
        f.fsync()
    recovered = KeyedStateStore("views")
    assert load_snapshot(disk, "/s/views.snap", recovered) is None
