"""Changelog topics: staged writes, bounded replay, compaction."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.kafka.broker import KafkaCluster
from repro.simnet.disk import SimDisk
from repro.streams.changelog import (
    ChangelogWriter,
    changelog_topic,
    compact_changelog,
    replay_changelog,
)


def make_cluster(segment_bytes: int = 1 << 20) -> KafkaCluster:
    cluster = KafkaCluster(1, "/kafka", clock=SimClock(),
                           partitions_per_topic=1,
                           segment_bytes=segment_bytes,
                           disk=SimDisk(seed=3))
    cluster.create_topic("__changelog-job-store", partitions=1)
    return cluster


def test_topic_naming():
    assert changelog_topic("wvyp", "views") == "__changelog-wvyp-views"


def test_stage_then_flush_publishes_one_set():
    cluster = make_cluster()
    writer = ChangelogWriter(cluster, "__changelog-job-store", 0)
    writer.stage("a", 1)
    writer.stage("b", None)
    assert writer.staged_count == 2
    end = writer.flush()
    assert writer.staged_count == 0
    assert writer.flushes == 1
    assert end == writer.durable_end() > 0
    assert replay_changelog(cluster, "__changelog-job-store", 0,
                            0, end) == [("a", 1), ("b", None)]


def test_replay_stops_at_checkpoint_boundary():
    """Records past ``stop`` are uncommitted mutations of a crashed
    incarnation; replay must ignore them."""
    cluster = make_cluster()
    writer = ChangelogWriter(cluster, "__changelog-job-store", 0)
    writer.stage("a", 1)
    committed = writer.flush()
    writer.stage("a", 999)   # never checkpointed
    writer.flush()
    assert replay_changelog(cluster, "__changelog-job-store", 0,
                            0, committed) == [("a", 1)]


def test_replay_rejects_reversed_range():
    cluster = make_cluster()
    with pytest.raises(ConfigurationError):
        replay_changelog(cluster, "__changelog-job-store", 0, 10, 5)


def test_compaction_drops_whole_leading_segments_only():
    """Regression: compaction below offset X removes leading segments
    ending at or below X, never the tail — a replay from X still sees
    every record at or past it, tombstones included."""
    cluster = make_cluster(segment_bytes=256)
    writer = ChangelogWriter(cluster, "__changelog-job-store", 0)
    boundaries = []
    for batch in range(8):
        for i in range(4):
            writer.stage(f"k{batch}-{i}", {"batch": batch, "i": i})
        writer.stage(f"k{batch}-0", None)  # tombstone rides along
        boundaries.append(writer.flush())
    log = cluster.broker_for("__changelog-job-store", 0).log(
        "__changelog-job-store", 0)
    assert len(log._segments) > 2   # the workload really rolled segments
    barrier = boundaries[4]
    deleted = compact_changelog(cluster, "__changelog-job-store", 0, barrier)
    assert deleted >= 1
    floor = log.oldest_offset
    assert 0 < floor <= barrier
    # everything from the floor to the end still replays, in order
    replayed = replay_changelog(cluster, "__changelog-job-store", 0,
                                floor, boundaries[-1])
    assert replayed[-1] == ("k7-0", None)
    # compaction is idempotent at the same barrier
    assert compact_changelog(cluster, "__changelog-job-store", 0,
                             barrier) == 0


def test_compaction_never_deletes_the_active_segment():
    cluster = make_cluster(segment_bytes=64)
    writer = ChangelogWriter(cluster, "__changelog-job-store", 0)
    writer.stage("a", 1)
    end = writer.flush()
    log = cluster.broker_for("__changelog-job-store", 0).log(
        "__changelog-job-store", 0)
    assert compact_changelog(cluster, "__changelog-job-store", 0,
                             end + 1000) == 0
    assert log.oldest_offset == 0
