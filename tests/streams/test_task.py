"""TaskInstance: the commit protocol, recovery, and repartition dedupe."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet
from repro.simnet.disk import SimDisk
from repro.streams.state import KeyedStateStore
from repro.streams.task import (
    Envelope,
    MessageCollector,
    StageSpec,
    StreamTask,
    TaskInstance,
    encode_stream_message,
    route_key,
)
from repro.zookeeper import ZooKeeperServer


class CountTask(StreamTask):
    """Idempotent-upsert counter keyed by message key."""

    def init(self, context):
        self.counts = context.store("counts")

    def process(self, envelope, collector):
        self.counts.put(envelope.key,
                        (self.counts.get(envelope.key) or 0) + 1)


class ForwardTask(StreamTask):
    """Stateless repartition hop: re-key each message by its value."""

    def __init__(self, output_topic: str):
        self.output_topic = output_topic

    def process(self, envelope, collector):
        collector.send(self.output_topic, envelope.value["to"],
                       {"n": envelope.value["n"]})


class SumTask(StreamTask):
    """Downstream of ForwardTask: sums ``n`` per key (NOT idempotent
    under redelivery — exactly what the dedupe must protect)."""

    def init(self, context):
        self.sums = context.store("sums")

    def process(self, envelope, collector):
        self.sums.put(envelope.key,
                      (self.sums.get(envelope.key) or 0)
                      + envelope.value["n"])


class World:
    def __init__(self, seed: int = 5, segment_bytes: int = 1 << 20):
        self.clock = SimClock()
        self.disk = SimDisk(seed=seed)
        self.zk_server = ZooKeeperServer()
        self.zk = self.zk_server.connect()
        self.cluster = KafkaCluster(1, "/kafka", zookeeper=self.zk_server,
                                    clock=self.clock, partitions_per_topic=1,
                                    segment_bytes=segment_bytes,
                                    disk=self.disk)
        self.cluster.create_topic("in", partitions=1)

    def produce(self, topic: str, records: list[tuple[str, object]]) -> None:
        messages = [Message(encode_stream_message(key, value, 1.0))
                    for key, value in records]
        broker = self.cluster.broker_for(topic, 0)
        broker.produce(topic, 0, MessageSet(messages))
        broker.log(topic, 0).flush()

    def open_task(self, stage: StageSpec, node: str = "n0",
                  snapshot_interval_commits: int = 8) -> TaskInstance:
        return TaskInstance(
            "job", stage, 0, self.cluster, self.zk, self.clock,
            self.disk.scope(node), "/state", group="streams-job",
            topic_partitions=1,
            snapshot_interval_commits=snapshot_interval_commits)


def count_stage() -> StageSpec:
    return StageSpec(name="count", inputs=("in",), task_factory=CountTask,
                     stores=("counts",))


def test_commit_then_reopen_resumes_offsets_and_state():
    world = World()
    for topic in ("__changelog-job-counts",):
        world.cluster.create_topic(topic, partitions=1)
    task = world.open_task(count_stage())
    world.produce("in", [("a", 1), ("b", 1), ("a", 1)])
    assert task.poll() == 3
    task.commit()
    fingerprint = task.state_fingerprint()

    successor = world.open_task(count_stage())
    assert successor.stores["counts"].get("a") == 2
    assert successor.stores["counts"].get("b") == 1
    assert successor.state_fingerprint() == fingerprint
    # nothing to re-read: the checkpoint advanced past all input
    assert successor.poll() == 0


def test_kill_before_commit_loses_nothing_durable():
    """Work processed but never committed is reprocessed by the next
    incarnation — at-least-once, converging because upserts are
    absolute."""
    world = World()
    world.cluster.create_topic("__changelog-job-counts", partitions=1)
    task = world.open_task(count_stage())
    world.produce("in", [("a", 1), ("a", 1)])
    task.poll()
    task.commit()
    world.produce("in", [("a", 1)])
    task.poll()                      # processed, never committed
    assert task.stores["counts"].get("a") == 3
    del task                         # crash: no commit

    successor = world.open_task(count_stage())
    assert successor.stores["counts"].get("a") == 2   # pre-crash durable
    assert successor.poll() == 1                      # redelivery
    assert successor.stores["counts"].get("a") == 3


def test_moved_task_rebuilds_from_compacted_changelog_alone():
    """The snapshot-barrier contract: after compaction, a node with NO
    local snapshot still recovers full state, because the compaction
    floor is a republished full image."""
    world = World(segment_bytes=128)
    world.cluster.create_topic("__changelog-job-counts", partitions=1)
    task = world.open_task(count_stage(), node="n0",
                           snapshot_interval_commits=1)
    for batch in range(6):
        world.produce("in", [(f"k{batch}", 1), ("hot", 1)])
        task.poll()
        task.commit()                # barrier + compaction every commit
    log = world.cluster.broker_for("__changelog-job-counts", 0).log(
        "__changelog-job-counts", 0)
    assert log.oldest_offset > 0     # compaction really happened
    fingerprint = task.state_fingerprint()

    moved = world.open_task(count_stage(), node="n1")   # fresh disk scope
    assert not moved.recovered_from_snapshot
    assert moved.replayed_mutations > 0
    assert moved.state_fingerprint() == fingerprint
    assert moved.stores["counts"].get("hot") == 6


def test_stale_snapshot_below_compaction_floor_falls_back_to_full_replay():
    """A task that returns to its original node after running elsewhere
    may find its old local snapshot points below the changelog's
    compaction floor; it must discard it and replay from the floor."""
    world = World(segment_bytes=128)
    world.cluster.create_topic("__changelog-job-counts", partitions=1)
    task = world.open_task(count_stage(), node="n0",
                           snapshot_interval_commits=1)
    world.produce("in", [("a", 1)])
    task.poll()
    task.commit()                    # n0's snapshot covers offset X

    # the task runs on n1 for a while; n1's barriers compact past X
    interim = world.open_task(count_stage(), node="n1",
                              snapshot_interval_commits=1)
    for batch in range(6):
        world.produce("in", [(f"k{batch}", 1), ("a", 1)])
        interim.poll()
        interim.commit()
    log = world.cluster.broker_for("__changelog-job-counts", 0).log(
        "__changelog-job-counts", 0)
    fingerprint = interim.state_fingerprint()

    returned = world.open_task(count_stage(), node="n0")
    assert not returned.recovered_from_snapshot   # stale snapshot rejected
    assert returned.state_fingerprint() == fingerprint
    assert returned.stores["counts"].get("a") == 7
    assert log.oldest_offset > 0


def test_snapshot_speeds_up_recovery_on_same_node():
    world = World()
    world.cluster.create_topic("__changelog-job-counts", partitions=1)
    task = world.open_task(count_stage(), snapshot_interval_commits=1)
    world.produce("in", [("a", 1), ("b", 1)])
    task.poll()
    task.commit()
    successor = world.open_task(count_stage())
    assert successor.recovered_from_snapshot
    assert successor.replayed_mutations == 0
    assert successor.stores["counts"].get("a") == 1


def test_crash_inside_commit_window_redelivers_and_downstream_dedupes():
    """The one place duplicates can enter a repartition topic: a crash
    *after* the output flush but *before* the checkpoint write.  The
    restarted producer re-reads the same input and re-publishes its
    emissions; the consumer's ``__seen/`` watermark must drop them or
    SumTask would double-count."""
    world = World()
    world.cluster.create_topic("mid", partitions=1)
    world.cluster.create_topic("__changelog-job-sums", partitions=1)
    forward = StageSpec(name="forward", inputs=("in",),
                        task_factory=lambda: ForwardTask("mid"))
    summing = StageSpec(name="sum", inputs=("mid",), task_factory=SumTask,
                        stores=("sums",))

    producer = world.open_task(forward)
    world.produce("in", [("a", {"to": "x", "n": 5}),
                         ("b", {"to": "x", "n": 2})])
    producer.poll()

    def crash(checkpoint):
        raise RuntimeError("crash between output flush and checkpoint")

    producer._write_checkpoint = crash
    with pytest.raises(RuntimeError):
        producer.commit()
    del producer

    reborn = world.open_task(forward)
    assert reborn.poll() == 2        # checkpoint never moved: re-read all
    reborn.commit()                  # second copy of both emissions lands

    consumer = world.open_task(summing)
    handled = consumer.poll()
    assert handled == 4              # fetched four, processed two
    assert consumer.duplicates_dropped == 2
    assert consumer.stores["sums"].get("x") == 7
    consumer.commit()

    # the watermark itself is durable: a post-commit successor still
    # drops a late redelivery of the same records
    successor = world.open_task(summing)
    assert successor.poll() == 0
    assert successor.stores["sums"].get("x") == 7


def test_dedupe_requires_a_store():
    world = World()
    world.cluster.create_topic("mid", partitions=1)
    forward = StageSpec(name="forward", inputs=("in",),
                        task_factory=lambda: ForwardTask("mid"))
    producer = world.open_task(forward)
    world.produce("in", [("a", {"to": "x", "n": 1})])
    producer.poll()
    producer.commit()

    class NullTask(StreamTask):
        def process(self, envelope, collector):
            pass

    storeless = StageSpec(name="sink", inputs=("mid",),
                          task_factory=NullTask)
    task = world.open_task(storeless)
    with pytest.raises(ConfigurationError):
        task.poll()                  # stamped input, nowhere to dedupe


def test_window_fires_on_clock_cadence():
    world = World()

    class Windowed(StreamTask):
        def __init__(self):
            self.windows = 0

        def process(self, envelope, collector):
            pass

        def window(self, collector):
            self.windows += 1

    stage = StageSpec(name="w", inputs=("in",), task_factory=Windowed,
                      window_interval_s=10.0)
    task = world.open_task(stage)
    task.poll()
    assert task.task.windows == 0
    world.clock.advance(11.0)
    task.poll()
    assert task.task.windows == 1
    task.poll()                      # cadence not yet elapsed again
    assert task.task.windows == 1


def test_route_key_is_stable_and_in_range():
    assert route_key("member:00000042", 4) == route_key("member:00000042", 4)
    assert all(0 <= route_key(f"k{i}", 7) < 7 for i in range(100))
    spread = {route_key(f"k{i}", 4) for i in range(64)}
    assert spread == {0, 1, 2, 3}


def test_snapshot_interval_must_be_positive():
    world = World()
    with pytest.raises(ConfigurationError):
        world.open_task(count_stage(), snapshot_interval_commits=0)
