"""Cross-system chaos tests for the unified resilience layer.

Each test drives a deterministic failure scenario through the
:class:`SimNetwork` failure injector (or the system's own crash hooks)
and asserts the paper's end-to-end promises hold *through* the failure:

* a Databus client misses no SCN when its relay crashes — it switches
  to the bootstrap server and returns to the relay after recovery;
* a Kafka producer delivers every acknowledged message across a leader
  crash, re-electing from the ISR between retries;
* a Voldemort quorum read keeps answering with one replica partitioned
  away, and the replica's circuit breaker opens/closes around the
  partition;
* an Espresso write lands on the freshly promoted master after the old
  master crashes, with the router driving the Helix failover between
  retries.

Everything runs on seeded RNGs and a SimClock, so every schedule —
backoff delays included — is reproducible.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import DeadlineExceededError
from repro.common.resilience import Deadline, RetryPolicy
from repro.databus import (
    BootstrapServer,
    DatabusClient,
    DatabusConsumer,
    Relay,
    capture_from_binlog,
)
from repro.kafka import KafkaCluster
from repro.kafka.consumer import SimpleConsumer
from repro.kafka.message import Message, MessageSet, iter_messages
from repro.kafka.producer import Producer
from repro.kafka.replication import ReplicatedTopic
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster

from tests.databus.conftest import MEMBER_SCHEMA, insert_member
from tests.espresso.conftest import (
    ALBUM_SCHEMA,
    ARTIST_SCHEMA,
    MUSIC,
    SONG_SCHEMA,
)
from repro.espresso import EspressoCluster, Router
from repro.simnet import SimNetwork, fixed_latency
from repro.sqlstore import SqlDatabase

pytestmark = pytest.mark.chaos

POLICY = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.5)


# -- Databus: relay crash -> bootstrap switchover ---------------------------

class RecordingConsumer(DatabusConsumer):
    def __init__(self):
        self.windows = []
        self.events = []

    def on_data_event(self, event):
        self.events.append(event)

    def on_end_window(self, scn):
        self.windows.append(scn)


def test_databus_client_survives_relay_crash_via_bootstrap():
    clock = SimClock()
    net = SimNetwork(clock=clock, seed=11, latency_model=fixed_latency(0.0005))
    db = SqlDatabase("profiles", clock=clock)
    db.create_table(MEMBER_SCHEMA)
    relay = Relay("relay-1")
    capture = capture_from_binlog(db, relay)
    bootstrap = BootstrapServer("bootstrap-1")
    consumer = RecordingConsumer()
    client = DatabusClient(consumer, relay, bootstrap, network=net,
                           client_name="client", retry_policy=POLICY)

    def produce(first, last):
        for member_id in range(first, last + 1):
            insert_member(db, member_id)
        capture.poll()
        # the bootstrap server captures in parallel with the relay
        bootstrap.on_events(relay.stream_from(bootstrap.high_watermark))

    produce(1, 5)
    assert client.poll() == 5
    assert client.checkpoint == 5

    # the relay process dies; more commits keep flowing upstream
    net.failures.crash("relay-1")
    produce(6, 10)
    delivered = client.poll()  # retries exhaust, then bootstrap serves it
    assert delivered == 5
    assert client.checkpoint == 10
    assert client.stats.relay_failovers == 1
    assert client.metrics.counter("relay.poll.retries").value >= 1
    assert client.metrics.counter("relay.poll.exhausted").value == 1

    # a second poll while still down: the breaker has opened by now, so
    # the relay is not even attempted — straight to bootstrap (no new
    # windows, so nothing is redelivered)
    assert client.poll() == 0
    assert client.stats.relay_failovers == 2
    assert client.metrics.counter("relay.breaker.opened").value == 1

    # relay recovers; past the reset timeout the half-open probe
    # succeeds and polling returns to the relay
    net.failures.recover("relay-1")
    produce(11, 12)
    clock.advance(client.relay_breaker.reset_timeout)
    assert client.poll() == 2
    assert client.relay_breaker.state == "closed"
    assert client.stats.relay_reconnects == 1

    # the invariant: every SCN delivered exactly once, no gaps
    assert consumer.windows == list(range(1, 13))


# -- Kafka: producer and consumer across a leader crash -------------------------

def test_kafka_producer_delivers_all_acked_across_leader_crash(tmp_path):
    cluster = KafkaCluster(num_brokers=3, data_root=str(tmp_path),
                           clock=SimClock())
    topic = ReplicatedTopic(cluster, "activity", partitions=1,
                            replication_factor=3, min_insync_replicas=2)
    producer = Producer(cluster, batch_size=5, retry_policy=POLICY)
    producer.attach_replicated(topic)

    payloads = [b"m-%03d" % i for i in range(20)]
    for payload in payloads[:10]:
        producer.send("activity", payload)
    producer.flush()
    topic.poll_replication()  # acks=all: replicate before the crash

    old_leader = topic.partitions[0].leader_id
    cluster.brokers[old_leader].shutdown()

    # publishing continues: the first publish hits the dead leader, the
    # retry hook elects a new one from the ISR, and the re-send lands
    for payload in payloads[10:]:
        producer.send("activity", payload)
    producer.flush()
    topic.poll_replication()

    assert topic.partitions[0].leader_id != old_leader
    assert producer.messages_acked == 20
    assert producer.pending == 0
    assert producer.metrics.counter("produce.retries").value >= 1

    # the consumer sees every acknowledged message, even when its next
    # fetch lands on a freshly crashed leader
    cluster.brokers[topic.partitions[0].leader_id].shutdown()
    consumer = SimpleConsumer(cluster, retry_policy=POLICY)
    consumer.attach_replicated(topic)
    fetched, offset = [], 0
    while True:
        messages = consumer.fetch("activity", 0, offset)
        if not messages:
            break
        fetched.extend(m.message.payload for m in messages)
        offset = messages[-1].next_offset
    assert fetched == payloads
    assert consumer.metrics.counter("fetch.retries").value >= 1
    cluster.shutdown()


# -- Voldemort: quorum read with a partitioned replica ---------------------------

def test_voldemort_quorum_read_with_replica_partitioned_away():
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4, seed=7)
    cluster.define_store(StoreDefinition(
        "profiles", replication_factor=3, required_reads=2,
        required_writes=2))
    # a small breaker so this test can watch it trip before the failure
    # detector takes the node out of rotation
    routed = RoutedStore(cluster, "profiles", retry_policy=POLICY,
                         breaker_config={"minimum_samples": 2,
                                         "reset_timeout": 1.0})
    key = b"member-42"
    routed.put(key, Versioned.initial(b"v1", 0))

    replicas = routed.replica_nodes(key)
    victim = replicas[-1]
    survivors = {cluster.node_name(n) for n in cluster.ring.nodes
                 if n != victim} | {"client"}
    cluster.network.failures.partition(
        survivors, {cluster.node_name(victim)})

    # R=2 of the remaining replicas answer: reads stay available, and a
    # write retries the partitioned replica before handing off
    for _ in range(3):
        frontier, _ = routed.get(key)
        assert frontier[0].value == b"v1"
    current = routed.get(key)[0][0]
    routed.put(key, Versioned(b"v2", current.clock.incremented(0)))
    assert routed.get(key)[0][0].value == b"v2"

    assert routed.metrics.counter("put.retries").value >= 1
    assert routed.metrics.counter(
        f"node-{victim}.breaker.opened").value == 1
    assert routed.breaker_for(victim).state == "open"

    # an already-exhausted deadline fails fast, and is counted
    stale = Deadline.after(cluster.clock, 0.001)
    cluster.clock.advance(0.01)
    with pytest.raises(DeadlineExceededError):
        routed.get(key, deadline=stale)
    assert routed.metrics.counter("get.deadline_exceeded").value == 1

    # heal: past the reset timeout the half-open probe (the next write
    # that touches the victim) closes the breaker again
    cluster.network.failures.heal_partition()
    cluster.clock.advance(1.0)
    latest = routed.get(key)[0][0]
    routed.put(key, Versioned(b"v3", latest.clock.incremented(0)))
    assert routed.breaker_for(victim).state == "closed"
    assert routed.metrics.counter(
        f"node-{victim}.breaker.closed").value == 1


# -- Espresso: write retries onto the promoted master ----------------------------

def test_espresso_route_retries_onto_promoted_master():
    cluster = EspressoCluster(MUSIC, num_nodes=3)
    cluster.post_document_schema("Artist", ARTIST_SCHEMA)
    cluster.post_document_schema("Album", ALBUM_SCHEMA)
    cluster.post_document_schema("Song", SONG_SCHEMA)
    cluster.start()
    router = Router(cluster, retry_policy=POLICY, auto_failover=True)

    assert router.put("/Music/Album/Akon/Trouble",
                      {"title": "Trouble", "year": 2004}).status == 200

    partition = cluster.database.partition_for("Akon")
    old_master = cluster.master_node(partition)
    cluster.crash_node(old_master.instance_name)

    # the write retries: between attempts the router drives the Helix
    # failover, a slave is promoted (draining the relay first), and the
    # retry lands on it
    response = router.put("/Music/Album/Akon/Trouble",
                          {"title": "Trouble", "year": 2005})
    assert response.status == 200
    new_master = cluster.master_node(partition)
    assert new_master is not None
    assert new_master.instance_name != old_master.instance_name
    assert router.metrics.counter("put.retries").value >= 1
    assert router.metrics.counter("router.failovers").value >= 1

    # nothing was lost in the promotion: the pre-crash document state
    # was replicated, and the post-crash write is readable
    fetched = router.get("/Music/Album/Akon/Trouble")
    assert fetched.status == 200
    assert fetched.body.document["year"] == 2005
