"""Determinism replay: the dynamic half of the repro-lint contract.

repro-lint proves statically that nothing reads the wall clock or an
unseeded RNG; this test proves *dynamically* that a whole chaos
scenario — failure injection, breaker trips, failover, recovery — is
reproducible: running it twice with the same seed must produce
byte-identical :class:`SimNetwork` event traces.  This catches what
the linter cannot see: hash-order fan-out behind a helper, an RNG
shared across components in different call orders, time leaking in
through a dependency.
"""

import pytest

from repro.common.clock import SimClock
from repro.common.resilience import RetryPolicy
from repro.databus import BootstrapServer, DatabusClient, DatabusConsumer, Relay, capture_from_binlog
from repro.simnet import SimNetwork, fixed_latency, lognormal_latency
from repro.sqlstore import SqlDatabase
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster

from tests.databus.conftest import MEMBER_SCHEMA, insert_member

pytestmark = pytest.mark.chaos

POLICY = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.5)


class _CountingConsumer(DatabusConsumer):
    def __init__(self):
        self.events = 0
        self.windows = []

    def on_data_event(self, event):
        self.events += 1

    def on_end_window(self, scn):
        self.windows.append(scn)


def _run_databus_relay_crash(seed: int) -> bytes:
    """The relay-crash -> bootstrap -> recovery scenario from the chaos
    suite, instrumented with a network trace."""
    clock = SimClock()
    net = SimNetwork(clock=clock, seed=seed,
                     latency_model=lognormal_latency(0.0005))
    net.start_trace()
    db = SqlDatabase("profiles", clock=clock)
    db.create_table(MEMBER_SCHEMA)
    relay = Relay("relay-1")
    capture = capture_from_binlog(db, relay)
    bootstrap = BootstrapServer("bootstrap-1")
    consumer = _CountingConsumer()
    client = DatabusClient(consumer, relay, bootstrap, network=net,
                           client_name="client", retry_policy=POLICY)

    def produce(first, last):
        for member_id in range(first, last + 1):
            insert_member(db, member_id)
        capture.poll()
        bootstrap.on_events(relay.stream_from(bootstrap.high_watermark))

    produce(1, 5)
    client.poll()
    net.failures.crash("relay-1")
    produce(6, 10)
    client.poll()          # retries exhaust, fail over to bootstrap
    client.poll()          # breaker open: straight to bootstrap
    net.failures.recover("relay-1")
    produce(11, 12)
    clock.advance(client.relay_breaker.reset_timeout)
    client.poll()          # half-open probe succeeds, back on the relay
    assert consumer.windows == list(range(1, 13))
    return net.trace_bytes()


def _run_voldemort_partition(seed: int) -> bytes:
    """Quorum reads/writes through a partition, traced."""
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4, seed=seed)
    cluster.network.start_trace()
    cluster.define_store(StoreDefinition(
        "profiles", replication_factor=3, required_reads=2,
        required_writes=2))
    routed = RoutedStore(cluster, "profiles", retry_policy=POLICY,
                         breaker_config={"minimum_samples": 2,
                                         "reset_timeout": 1.0})
    key = b"member-42"
    routed.put(key, Versioned.initial(b"v1", 0))
    victim = routed.replica_nodes(key)[-1]
    survivors = {cluster.node_name(n) for n in cluster.ring.nodes
                 if n != victim} | {"client"}
    cluster.network.failures.partition(
        survivors, {cluster.node_name(victim)})
    for _ in range(3):
        routed.get(key)
    current = routed.get(key)[0][0]
    routed.put(key, Versioned(b"v2", current.clock.incremented(0)))
    cluster.network.failures.heal_partition()
    cluster.clock.advance(1.0)
    latest = routed.get(key)[0][0]
    routed.put(key, Versioned(b"v3", latest.clock.incremented(0)))
    return cluster.network.trace_bytes()


def test_databus_chaos_trace_replays_byte_identical():
    first = _run_databus_relay_crash(seed=11)
    second = _run_databus_relay_crash(seed=11)
    assert first  # the scenario actually exercised the network
    assert first == second


def test_databus_trace_depends_on_seed():
    # sanity check that the trace is sensitive enough to notice a
    # different schedule at all (otherwise byte-equality proves nothing)
    assert _run_databus_relay_crash(seed=11) != _run_databus_relay_crash(seed=12)


def test_voldemort_partition_trace_replays_byte_identical():
    first = _run_voldemort_partition(seed=7)
    second = _run_voldemort_partition(seed=7)
    assert first
    assert first == second


def test_trace_requires_opt_in():
    net = SimNetwork(clock=SimClock(), seed=1,
                     latency_model=fixed_latency(0.0005))
    with pytest.raises(ValueError):
        net.trace_bytes()
    # and with tracing off, sends record nothing
    net.send("a", "b", lambda: None)
    assert net.trace is None
