"""Espresso as a CDC source: "ESPRESSO relies on Databus for internal
replication and therefore provides a Change Data Capture pipeline to
downstream consumers" (§IV)."""

from repro.databus import DatabusClient, DatabusConsumer
from repro.espresso.storage import partition_buffer_name

from tests.espresso.conftest import MUSIC

import pytest

from repro.espresso import EspressoCluster, Router
from tests.espresso.conftest import ALBUM_SCHEMA, ARTIST_SCHEMA, SONG_SCHEMA


@pytest.fixture
def cluster():
    built = EspressoCluster(MUSIC, num_nodes=3)
    built.post_document_schema("Artist", ARTIST_SCHEMA)
    built.post_document_schema("Album", ALBUM_SCHEMA)
    built.post_document_schema("Song", SONG_SCHEMA)
    built.start()
    return built


def test_downstream_consumer_sees_every_partition(cluster):
    router = Router(cluster)
    artists = [f"artist-{i}" for i in range(20)]
    for artist in artists:
        router.put(f"/Music/Artist/{artist}",
                   {"name": artist, "genre": "pop", "bio": None})

    seen = []

    class Collector(DatabusConsumer):
        def on_data_event(self, event):
            seen.append(event.key)

    # one Databus client per partition buffer — the paper's downstream
    # consumers subscribe to the same relay Espresso replicates through
    for partition in range(MUSIC.num_partitions):
        buffer = partition_buffer_name(MUSIC.name, partition)
        if buffer not in cluster.relay.buffer_names():
            continue
        DatabusClient(Collector(), cluster.relay,
                      buffer_name=buffer).run_to_head()
    assert sorted(seen) == sorted((a,) for a in artists)


def test_downstream_sees_transactions_atomically(cluster):
    router = Router(cluster)
    ops = [
        ("put", "Album", ("Akon", "Trouble"), {"title": "Trouble", "year": 2004}),
        ("put", "Song", ("Akon", "Trouble", "Lonely"),
         {"title": "Lonely", "lyrics": None, "duration": 237}),
    ]
    router.post_transaction("Music", "Akon", ops)
    partition = MUSIC.partition_for("Akon")
    windows = []

    class WindowCollector(DatabusConsumer):
        def __init__(self):
            self.current = []

        def on_data_event(self, event):
            self.current.append(event.source)

        def on_end_window(self, scn):
            windows.append((scn, list(self.current)))
            self.current.clear()

    DatabusClient(WindowCollector(), cluster.relay,
                  buffer_name=partition_buffer_name(MUSIC.name, partition)
                  ).run_to_head()
    assert windows == [(1, ["Album", "Song"])]
