"""Chaos for the stream tier: a mid-peak container kill must not change
a single byte of final application state.

The day-in-the-life scenario runs one simulated day of diurnal traffic
through both shipped stream jobs.  The failure run kills one container
of each job at 55% of the day (the traffic peak) via FaultPlan-scheduled
``kill_container`` actions and restarts them at 75%; the clean run is
the same seed with no faults.  Both drain fully, then every store's
canonical fingerprint, the WVYP leaderboard, and a sampled inbox are
compared byte for byte — the recovery contract (snapshot + bounded
changelog replay + offset restore + repartition dedupe) says they must
be identical.
"""

import pytest

from repro.common.clock import SimClock
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import FaultPlan
from repro.workloads import run_day_in_the_life

SEED = 7


@pytest.fixture(scope="module")
def failure_day():
    return run_day_in_the_life(seed=SEED, fail=True)


@pytest.fixture(scope="module")
def clean_day():
    return run_day_in_the_life(seed=SEED, fail=False)


# -- faultplan: the container action pair -----------------------------------

def test_faultplan_container_actions_fire_handlers_in_order():
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=1)
    plan = FaultPlan(clock, disk, seed=1)
    log = []
    plan.on_kill_container(lambda name: log.append(("kill", name)))
    plan.on_restart_container(lambda name: log.append(("restart", name)))
    plan.kill_container(at=5.0, container="wvyp-1")
    plan.restart_container(at=9.0, container="wvyp-1")
    executed = plan.run(until=10.0)
    assert log == [("kill", "wvyp-1"), ("restart", "wvyp-1")]
    assert [(at, kind, node) for at, kind, node, _ in executed] == [
        (5.0, "kill_container", "wvyp-1"),
        (9.0, "restart_container", "wvyp-1")]


# -- the failure run did what the scenario promises -------------------------

def test_failure_day_really_failed_and_recovered(failure_day):
    assert failure_day.failed
    kills = [line for line in failure_day.fault_trace
             if "'kill_container'" in line]
    restarts = [line for line in failure_day.fault_trace
                if "'restart_container'" in line]
    assert len(kills) == 2           # one container of each job
    assert len(restarts) == 2
    # recovery actually exercised both paths: local snapshots where the
    # task came back to its old node, changelog replay everywhere
    assert failure_day.tasks_recovered_from_snapshot > 0
    assert failure_day.changelog_mutations_replayed > 0


def test_clean_day_saw_no_faults(clean_day):
    assert not clean_day.failed
    assert all("'call'" in line for line in clean_day.fault_trace)
    assert clean_day.tasks_recovered_from_snapshot == 0


def test_both_days_processed_identical_traffic(failure_day, clean_day):
    assert failure_day.events_produced == clean_day.events_produced
    assert failure_day.events_produced["profile-views"] > 1000


# -- the headline assertion: byte-identical final state ---------------------

def test_recovered_state_is_byte_identical_to_clean_run(failure_day,
                                                        clean_day):
    assert sorted(failure_day.state_fingerprints) == \
        sorted(clean_day.state_fingerprints)
    for label in sorted(clean_day.state_fingerprints):
        assert failure_day.state_fingerprints[label] == \
            clean_day.state_fingerprints[label], \
            f"store {label} diverged after crash recovery"


def test_serving_layer_agrees_between_runs(failure_day, clean_day):
    assert failure_day.top_profiles == clean_day.top_profiles
    assert failure_day.sample_inbox == clean_day.sample_inbox
    # the leaderboard is non-trivial: the skewed viewee draw makes the
    # head dominate
    assert max(count for _, count in clean_day.top_profiles) > 50
    assert len(clean_day.sample_inbox) > 0


def test_no_offsets_beyond_watermarks(failure_day, clean_day):
    assert failure_day.offset_violations == []
    assert clean_day.offset_violations == []


def test_same_seed_same_fault_trace(failure_day):
    rerun = run_day_in_the_life(seed=SEED, fail=True)
    assert rerun.fault_trace == failure_day.fault_trace
    assert rerun.state_fingerprints == failure_day.state_fingerprints
    assert rerun.top_profiles == failure_day.top_profiles
