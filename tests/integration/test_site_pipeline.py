"""Figure I.1 end to end: activity events through Kafka to online
consumers and the offline warehouse; profile changes through Databus to
a search index; PYMK through Hadoop into a Voldemort read-only store."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.serialization import decode_record
from repro.databus import DatabusClient, DatabusConsumer, Relay, capture_from_binlog
from repro.hadoop import MiniHDFS
from repro.kafka import KafkaCluster, Producer
from repro.kafka.consumer import ConsumerGroupMember
from repro.kafka.mirror import HadoopLoadJob, MirrorMaker
from repro.sqlstore import Column, SqlDatabase, TableSchema
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.readonly_pipeline import ReadOnlyPipelineController
from repro.workloads import ActivityEventGenerator


class SearchIndexConsumer(DatabusConsumer):
    """The People Search index subscribing to profile changes (§III.A)."""

    def __init__(self, relay):
        self.relay = relay
        self.index: dict[str, set[tuple]] = {}

    def on_data_event(self, event):
        schema = self.relay.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        for token in row["headline"].lower().split():
            self.index.setdefault(token, set()).add(event.key)

    def search(self, token):
        return sorted(self.index.get(token.lower(), set()))


def test_profile_changes_flow_to_search_index():
    clock = SimClock()
    db = SqlDatabase("profiles", clock=clock)
    db.create_table(TableSchema(
        "member", (Column("member_id", int), Column("headline", str)),
        primary_key=("member_id",)))
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    searcher = SearchIndexConsumer(relay)
    client = DatabusClient(searcher, relay)

    for member_id, headline in ((1, "Staff Engineer Kafka"),
                                (2, "Espresso Engineer"),
                                (3, "Product Manager")):
        txn = db.begin()
        txn.insert("member", {"member_id": member_id, "headline": headline})
        txn.commit()
    capture.poll()
    client.run_to_head()
    assert searcher.search("engineer") == [(1,), (2,)]
    assert searcher.search("kafka") == [(1,)]


def test_activity_events_to_online_and_offline_consumers(tmp_path):
    clock = SimClock()
    live = KafkaCluster(2, str(tmp_path / "live"), clock=clock,
                        partitions_per_topic=4)
    replica = KafkaCluster(1, str(tmp_path / "replica"), clock=clock,
                           partitions_per_topic=4)
    live.create_topic("activity")
    generator = ActivityEventGenerator(num_members=500, seed=3)
    producer = Producer(live, batch_size=20)
    for event in generator.events(200, timestamp=clock.now()):
        producer.send("activity", json.dumps(event).encode())
    producer.flush()

    # online consumer: news-relevance group inside the live datacenter
    online = ConsumerGroupMember(live, "relevance", "c1", ["activity"])
    online_events = []
    while True:
        batch = online.poll()
        if not batch:
            break
        online_events.extend(json.loads(m.payload) for m in batch)
    assert len(online_events) == 200

    # offline path: mirror -> replica cluster -> hadoop load
    hdfs = MiniHDFS()
    mirror = MirrorMaker(live, replica, ["activity"])
    mirror.poll_once()
    job = HadoopLoadJob(replica, hdfs, ["activity"])
    job.run_once()
    assert job.messages_loaded == 200
    online.close()
    live.shutdown()
    replica.shutdown()


def test_pymk_batch_to_readonly_serving(tmp_path):
    """People You May Know: offline link prediction -> build/pull/swap
    -> online serving (§II.C)."""
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", replication_factor=2, required_reads=1, required_writes=1,
        engine_type="read-only"))
    hdfs = MiniHDFS()
    controller = ReadOnlyPipelineController(cluster, hdfs, "pymk")

    def score_run(seed):
        # "most of the scores change between runs"
        return [(b"member-%d" % m,
                 json.dumps([[m + 1, 0.9 - seed / 10], [m + 2, 0.5]]).encode())
                for m in range(50)]

    controller.run_cycle(score_run(0))
    routed = RoutedStore(cluster, "pymk")
    first = json.loads(routed.get(b"member-7")[0][0].value)
    controller.run_cycle(score_run(1))
    second = json.loads(routed.get(b"member-7")[0][0].value)
    assert first != second  # new run replaced the scores
    controller.rollback()
    rolled = json.loads(routed.get(b"member-7")[0][0].value)
    assert rolled == first
