"""Seeded overload chaos: a traffic spike, a limping replica, a
flapping node, lossy links, and an asymmetric partition, all scheduled
by one :class:`FaultPlan` against a Voldemort serving path protected by
admission control and hedged reads.

The headline assertion is determinism: two runs of the same seeded
scenario produce byte-identical network traces and identical outcome
counts — the overload machinery (token buckets, CoDel-free bounded
queues, hedge delays) introduces no hidden nondeterminism.  The smoke
variant runs scaled down inside tier-1; the full scenario is
``chaos``-marked.
"""

import pytest

from repro.common.errors import (
    InsufficientOperationalNodesError,
    ServerOverloadedError,
)
from repro.common.overload import AdmissionController, HedgedCall
from repro.simnet import FaultPlan, SimDisk, SimNetwork, fixed_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster

TICK = 0.05


def run_overload_scenario(seed, horizon=4.0, base_rate=100.0,
                          spike_rate=800.0):
    """One seeded chaos run; returns (trace_bytes, plan_lines, stats)."""
    network = SimNetwork(seed=seed, latency_model=fixed_latency(0.0005))
    clock = network.clock
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4,
                               network=network, seed=seed)
    cluster.define_store(StoreDefinition(
        "chaos", replication_factor=3, required_reads=1, required_writes=1))
    names = [cluster.node_name(i) for i in range(5)]
    admission = AdmissionController(clock, rate=400.0, burst=40.0)
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.01, warmup=10)
    routed = RoutedStore(cluster, "chaos", admission=admission, hedge=hedge)
    keys = [b"chaos-%03d" % i for i in range(30)]
    for key in keys:
        routed.put(key, Versioned.initial(b"v", 0))
    # bounded server queues go in after seeding, so the scenario starts
    # from a fully replicated store behind empty queues
    for name in names:
        network.add_server_queue(name, service_time=0.002, capacity=20)

    network.start_trace()
    plan = FaultPlan(clock, SimDisk(clock=clock, seed=seed), seed=seed,
                     network=network)
    rate = {"value": base_rate}
    plan.spike(at=0.25 * horizon, duration=0.375 * horizon, label="storm",
               start=lambda: rate.update(value=spike_rate),
               stop=lambda: rate.update(value=base_rate))
    plan.limp(at=0.125 * horizon, node=names[0], factor=10.0)
    plan.heal_limp(at=0.7 * horizon, node=names[0])
    plan.flap(at=0.3 * horizon, node=names[1], period=0.1 * horizon,
              cycles=3)
    plan.set_link(at=0.2 * horizon, src="client", dst=names[2],
                  loss_rate=0.3)
    plan.clear_link(at=0.75 * horizon, src="client", dst=names[2])
    plan.block(at=0.4 * horizon, src_group=["client"], dst_group=[names[3]])
    plan.heal_blocks(at=0.65 * horizon)

    stats = {"ok": 0, "shed": 0, "failed": 0, "value_mismatch": 0}
    request = {"count": 0}

    def tick():
        burst = max(1, int(rate["value"] * TICK))
        for _ in range(burst):
            key = keys[request["count"] % len(keys)]
            request["count"] += 1
            try:
                frontier, _ = routed.get(key)
                stats["ok"] += 1
                if frontier[0].value != b"v":
                    stats["value_mismatch"] += 1
            except ServerOverloadedError:
                stats["shed"] += 1
            except InsufficientOperationalNodesError:
                stats["failed"] += 1

    t = 0.05 * horizon
    while t < 0.95 * horizon:
        clock.call_at(t, tick)
        t += TICK
    plan.run(until=horizon)
    return network.trace_bytes(), plan.trace_lines(), stats


def assert_scenario_invariants(stats):
    assert stats["value_mismatch"] == 0       # degraded, never wrong
    assert stats["ok"] > 0                    # the site stayed up
    assert stats["shed"] > 0                  # admission actually engaged
    # graceful degradation: sheds and failures never dominate service
    assert stats["ok"] > stats["shed"] + stats["failed"]


def test_overload_smoke_scenario():
    """Tier-1 smoke: the full gray-failure repertoire, scaled down."""
    trace_a, plan_a, stats_a = run_overload_scenario(
        seed=13, horizon=2.0, base_rate=60.0, spike_rate=700.0)
    trace_b, plan_b, stats_b = run_overload_scenario(
        seed=13, horizon=2.0, base_rate=60.0, spike_rate=700.0)
    assert trace_a == trace_b                 # byte-identical replay
    assert plan_a == plan_b
    assert stats_a == stats_b
    assert_scenario_invariants(stats_a)
    # the fault schedule itself is part of the replayable record
    fired = {line.split(", ")[1] for line in plan_a}
    assert "'limp'" in fired and "'net_crash'" in fired \
        and "'block'" in fired and "'set_link'" in fired


@pytest.mark.chaos
def test_overload_chaos_full_scenario():
    """The full-length scenario: same-seed byte-identical, different
    seed divergent, and the protected stack degrades gracefully."""
    trace_a, plan_a, stats_a = run_overload_scenario(seed=29)
    trace_b, plan_b, stats_b = run_overload_scenario(seed=29)
    assert trace_a == trace_b
    assert plan_a == plan_b
    assert stats_a == stats_b
    assert_scenario_invariants(stats_a)
    trace_other, _, _ = run_overload_scenario(seed=30)
    assert trace_other != trace_a             # the seed drives the run
