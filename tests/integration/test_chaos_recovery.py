"""Seeded chaos across all four systems: kills, tears, and recovery.

One SimClock + one SimDisk back a Kafka cluster, a Voldemort cluster,
an Espresso cluster, and a Databus bootstrap server.  A FaultPlan
kills and restarts a node of each system (with a torn write armed on
the Voldemort victim), and the DESIGN.md §9 invariants are checked:

* zero acked-write loss (AckLedger over all four systems);
* zero duplicate or skipped SCN application (ScnAuditor on Espresso);
* consumer offsets never beyond recovered high watermarks;
* the same seed produces a byte-identical fault trace.
"""

import pytest

from repro.common.clock import SimClock
from repro.databus import BootstrapServer
from repro.databus.events import DatabusEvent
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet, iter_messages
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import (
    AckLedger,
    FaultPlan,
    ScnAuditor,
    offsets_within_watermark,
)
from repro.sqlstore.binlog import ChangeKind
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)

from tests.espresso.conftest import ARTIST_SCHEMA, MUSIC
from repro.espresso import EspressoCluster

ARTISTS = ["nirvana", "abba", "devo", "kraftwerk", "queen"]


def build_world(seed):
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=seed)
    disk.start_trace()

    # data_root is a virtual path inside the SimDisk, so a constant
    # string keeps traces byte-identical across runs
    kafka = KafkaCluster(num_brokers=2, data_root="kafka",
                         clock=clock, disk=disk)
    kafka.create_topic("events", partitions=2)

    voldemort = VoldemortCluster(num_nodes=4, partitions_per_node=4,
                                 clock=clock, disk=disk, seed=seed)
    voldemort.define_store(StoreDefinition(
        "chaos", replication_factor=3, required_reads=2, required_writes=2,
        engine_type="log-structured"))

    espresso = EspressoCluster(MUSIC, num_nodes=3, clock=clock, disk=disk)
    espresso.post_document_schema("Artist", ARTIST_SCHEMA)
    espresso.start()

    bootstrap = BootstrapServer("bootstrap-1",
                                disk=disk.scope("bootstrap-1"))
    return clock, disk, kafka, voldemort, espresso, bootstrap


def run_scenario(seed):
    clock, disk, kafka, voldemort, espresso, bootstrap = build_world(seed)
    ledger = AckLedger()
    auditor = ScnAuditor()
    for name, node in espresso.nodes.items():
        node.on_apply = auditor.hook(name)
    routed = RoutedStore(voldemort, "chaos")
    consumer_offsets = {}

    def workload():
        for i, payload in enumerate([b"k0", b"k1", b"k2", b"k3"]):
            offset = kafka.brokers[i % 2].produce(
                "events", i % 2, MessageSet([Message(payload)]))
            ledger.record("kafka", ("events", i % 2, offset), payload)
        for i in range(8):
            key = b"vk-%d" % i
            routed.put(key, Versioned.initial(b"vv-%d" % i, 0))
            ledger.record("voldemort", key, b"vv-%d" % i)
        for artist in ARTISTS:
            node = espresso.node_for_resource(artist)
            node.put_document("Artist", (artist,),
                              {"name": artist, "genre": "rock", "bio": None})
            ledger.record("espresso", artist, "rock")
        for scn in range(1, 5):
            bootstrap.on_events([DatabusEvent(
                scn, "member", ChangeKind.UPDATE, (scn,), b"b-%d" % scn,
                end_of_window=True)])
            ledger.record("bootstrap", scn, b"b-%d" % scn)
        for tp in kafka.topic_layout("events"):
            consumer_offsets[(tp.topic, tp.partition)] = \
                kafka.brokers[tp.broker_id].log(tp.topic,
                                                tp.partition).high_watermark

    def stage_unsynced_tail():
        # an in-flight (never acked) record on the Voldemort victim,
        # destined to be torn mid-frame by the armed fault
        engine = voldemort.server_for(1).engine("chaos")
        engine._sync = False
        engine.put(b"in-flight", Versioned.initial(b"never-acked", 0))
        engine._sync = True

    plan = FaultPlan(clock, disk, seed=seed)

    def kill(node):
        if node.startswith("broker-"):
            disk.crash_node(node)
        elif node.startswith("node-"):
            voldemort.kill_node(int(node.split("-")[1]))
        elif node.startswith("storage-"):
            espresso.crash_node(node)
        elif node.startswith("bootstrap"):
            disk.crash_node(node)

    def restart(node):
        if node.startswith("broker-"):
            disk.restart_node(node)
            kafka.brokers[int(node.split("-")[1])].restart()
        elif node.startswith("node-"):
            voldemort.restart_node(int(node.split("-")[1]))
        elif node.startswith("storage-"):
            espresso.recover_node(node)
            recovered = espresso.nodes[node]
            recovered.on_apply = auditor.hook(node)
            auditor.observe_recovery(node, recovered.partition_scn)
            espresso.failover()
        elif node.startswith("bootstrap"):
            disk.restart_node(node)

    plan.on_kill(kill)
    plan.on_restart(restart)
    plan.call(1.0, "workload", workload)
    plan.call(1.5, "stage-unsynced", stage_unsynced_tail)
    plan.torn_write(1.9, "node-1", path="chaos/data.log")
    plan.kill(2.0, "broker-0")
    plan.kill(2.0, "node-1")
    plan.kill(2.0, "storage-0")
    plan.kill(2.0, "bootstrap-1")
    plan.restart(3.0, "broker-0")
    plan.restart(3.0, "node-1")
    plan.restart(3.0, "storage-0")
    plan.restart(3.0, "bootstrap-1")
    plan.run(until=4.0)

    recovered_bootstrap = BootstrapServer(
        "bootstrap-1", disk=disk.scope("bootstrap-1"))
    return {
        "disk": disk,
        "kafka": kafka,
        "voldemort": voldemort,
        "espresso": espresso,
        "bootstrap": recovered_bootstrap,
        "routed": routed,
        "ledger": ledger,
        "auditor": auditor,
        "consumer_offsets": consumer_offsets,
        "plan": plan,
    }


@pytest.fixture(scope="module")
def world():
    return run_scenario(1234)


def test_no_acked_kafka_loss(world):
    kafka = world["kafka"]

    def read_kafka(key):
        topic, partition, offset = key
        broker = kafka.broker_for(topic, partition)
        data = broker.fetch(topic, partition, offset)
        return next(iter(iter_messages(data, offset))).message.payload

    assert world["ledger"].verify("kafka", read_kafka) == []


def test_no_acked_voldemort_loss(world):
    routed = world["routed"]

    def read_voldemort(key):
        frontier, _ = routed.get(key)
        return frontier[0].value

    assert world["ledger"].verify("voldemort", read_voldemort) == []


def test_torn_voldemort_tail_truncated_not_partial(world):
    engine = world["voldemort"].server_for(1).engine("chaos")
    assert engine.torn_bytes_truncated > 0
    from repro.common.errors import KeyNotFoundError
    with pytest.raises(KeyNotFoundError):
        engine.get(b"in-flight")


def test_no_acked_espresso_loss(world):
    espresso = world["espresso"]

    def read_espresso(artist):
        node = espresso.node_for_resource(artist)
        return node.get_document("Artist", (artist,)).document["genre"]

    assert world["ledger"].verify("espresso", read_espresso) == []


def test_no_acked_bootstrap_loss(world):
    delta, _ = world["bootstrap"].consolidated_delta(since_scn=0)
    by_scn = {e.scn: e.payload for e in delta}
    assert world["ledger"].verify("bootstrap", by_scn.__getitem__) == []


def test_no_duplicate_or_skipped_scn(world):
    auditor = world["auditor"]
    assert auditor.violations == []
    assert auditor.windows_seen >= len(ARTISTS)


def test_consumer_offsets_within_watermarks(world):
    kafka = world["kafka"]

    def watermark_of(topic, partition):
        return kafka.broker_for(topic, partition).log(topic,
                                                      partition).high_watermark

    assert offsets_within_watermark(world["consumer_offsets"],
                                    watermark_of) == []


def test_fault_plan_executed_fully(world):
    kinds = [entry[1] for entry in world["plan"].executed]
    assert kinds.count("kill") == 4
    assert kinds.count("restart") == 4
    assert kinds.count("torn_write") == 1


def test_declared_constraints_hold_after_recovery(world):
    """DESIGN.md §9's ledger checks re-expressed as declared audit
    constraints: after kills, a torn write, and recovery, a correct
    world keeps the continuous auditor completely quiet — the clean-run
    control that makes every seeded-injection finding meaningful."""
    from repro.audit import Auditor, CountConservation, ValueEquality
    from repro.common.clock import SimClock

    kafka = world["kafka"]
    routed = world["routed"]
    espresso = world["espresso"]
    ledger = world["ledger"]

    def kafka_produced():
        counts = {}
        for topic, partition, _offset in ledger.acked("kafka"):
            bucket = (topic, partition)
            counts[bucket] = counts.get(bucket, 0) + 1
        return counts

    def kafka_consumed():
        counts = {}
        for tp in kafka.topic_layout("events"):
            broker = kafka.brokers[tp.broker_id]
            offset = n = 0
            while True:
                data = broker.fetch(tp.topic, tp.partition, offset)
                if not data:
                    break
                for decoded in iter_messages(data, offset):
                    n += 1
                    offset = decoded.next_offset
            counts[(tp.topic, tp.partition)] = n
        return counts

    auditor = Auditor(SimClock())
    auditor.declare(CountConservation(
        "kafka-conservation", "kafka:events", kafka_produced, kafka_consumed))
    auditor.declare(ValueEquality(
        "voldemort-acked-values", "voldemort:chaos",
        expected_items=lambda: ledger.acked("voldemort"),
        actual_of=lambda key: routed.get(key)[0][0].value))
    auditor.declare(ValueEquality(
        "espresso-acked-values", "espresso:Artist",
        expected_items=lambda: ledger.acked("espresso"),
        actual_of=lambda artist: espresso.node_for_resource(artist)
            .get_document("Artist", (artist,)).document["genre"]))
    assert auditor.tick() == []
    assert auditor.violations == []


def test_same_seed_byte_identical_trace():
    first = run_scenario(77)
    second = run_scenario(77)
    assert first["disk"].trace_bytes() == second["disk"].trace_bytes()
    assert first["plan"].executed == second["plan"].executed
    assert len(first["disk"].trace_bytes()) > 0
