"""The seeded-injection suite: plant N known corruptions across five
derived-data paths, prove the auditor reports exactly N with correct
blame, and that same-seed reports are byte-identical.

One SimClock drives a sqlstore source feeding two Databus relays (one
into an Espresso target, one into the people-search index), a Voldemort
cluster, and a Kafka cluster with the §V.D audit trail.  A FaultPlan
plants five corruptions — a dropped relay window, a corrupted Espresso
document, a skipped index update, a bit-flipped Voldemort value, and a
duplicated Kafka message — and the continuous auditor, ticking on the
same clock over watermark-certified cuts, must catch all five, catch
*nothing else* (the clean-run control below proves zero false
positives), and blame the true stage for each.
"""

import json

import pytest

from repro.audit import (
    Auditor,
    BlameEngine,
    CountConservation,
    ReplicaAgreement,
    ViolationInjector,
    WatermarkCut,
    reconcile,
)
from repro.audit.blame import (
    STAGE_BROKER,
    STAGE_INDEXER,
    STAGE_RELAY,
    STAGE_STORAGE_MEDIA,
    STAGE_STORE_WRITER,
)
from repro.audit.engine import VIOLATIONS_FAMILY
from repro.audit.wiring import (
    espresso_containment,
    espresso_value_equality,
    kafka_audit_lineage,
    kafka_counts,
    search_containment,
    sqlstore_pipeline_lineage,
    voldemort_replica_lineage,
    voldemort_replica_values,
)
from repro.common.clock import SimClock
from repro.common.metrics import MetricsRegistry
from repro.databus import Relay, capture_from_binlog
from repro.databus.client import DatabusClient
from repro.kafka.audit import AUDIT_TOPIC, AuditingProducer, AuditReconciler
from repro.kafka.broker import KafkaCluster
from repro.migration.target import (
    EspressoTarget,
    RowTransform,
    espresso_schema_for,
)
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import FaultPlan
from repro.sqlstore import SqlDatabase
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)
from repro.espresso import EspressoCluster

MEMBERS = 8
VOLDEMORT_KEYS = [b"vk-%d" % i for i in range(6)]


def build_world(seed, with_injections):
    """One fully wired world; ``with_injections`` distinguishes the
    seeded run from its clean control (identical otherwise)."""
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=seed)
    metrics = MetricsRegistry()

    # sqlstore source of truth
    source = SqlDatabase("members", clock=clock)
    source.create_table(MEMBER_TABLE)

    # path 1: source -> Databus -> Espresso target
    espresso = EspressoCluster(espresso_schema_for(source), num_nodes=3,
                               clock=clock)
    espresso.start()
    target = EspressoTarget(espresso, RowTransform(source))
    relay_es = Relay("es-relay")
    capture_es = capture_from_binlog(source, relay_es)
    from repro.migration.backfill import LiveReplicator
    replicator = LiveReplicator(source, target, relay_es.schemas, metrics)
    client_es = DatabusClient(replicator, relay_es, clock=clock,
                              client_name="es-writer")

    # path 2: source -> Databus -> search index
    relay_search = Relay("search-relay")
    capture_search = capture_from_binlog(source, relay_search)
    search = PeopleSearchService(relay_search)

    # path 3: Voldemort replicas (all-replica writes, so the pre-flip
    # state is deterministic without pumping repair)
    voldemort = VoldemortCluster(num_nodes=4, partitions_per_node=4,
                                 clock=clock, disk=disk, seed=seed)
    voldemort.define_store(StoreDefinition(
        "chaos", replication_factor=3, required_reads=2, required_writes=3,
        engine_type="log-structured"))
    routed = RoutedStore(voldemort, "chaos")

    # path 4: Kafka with the §V.D audit trail
    kafka = KafkaCluster(num_brokers=2, data_root="kafka", clock=clock,
                         disk=disk)
    kafka.create_topic("activity", partitions=2)
    kafka.create_topic(AUDIT_TOPIC, partitions=1)
    producer = AuditingProducer(kafka, "app-00", window_seconds=10.0)
    reconciler = AuditReconciler(kafka, ["activity"])

    # the continuous auditor over a certified cut
    def pump():
        capture_es.poll()
        capture_search.poll()
        client_es.poll()
        search.client.poll()

    cut = WatermarkCut(source, pump,
                       positions=[lambda: client_es.checkpoint,
                                  lambda: search.client.checkpoint])

    blame = BlameEngine()
    blame.register("espresso-containment", sqlstore_pipeline_lineage(
        source, MEMBER_TABLE.name, capture_es, relay_es, client_es,
        store_check=lambda key:
            target.get_document(MEMBER_TABLE.name, key) is not None))
    blame.register("espresso-equality", sqlstore_pipeline_lineage(
        source, MEMBER_TABLE.name, capture_es, relay_es, client_es,
        store_check=lambda key:
            target.get_document(MEMBER_TABLE.name, key)
            == target.transform.document_of(
                MEMBER_TABLE.name, source.table(MEMBER_TABLE.name).get(key))))
    blame.register("search-containment", sqlstore_pipeline_lineage(
        source, MEMBER_TABLE.name, capture_search, relay_search,
        search.client, store_check=lambda key: key[0] in search.index,
        store_stage=STAGE_INDEXER))
    replica_probe = voldemort_replica_values(
        voldemort, routed, "chaos", keys=lambda: VOLDEMORT_KEYS)
    blame.register("voldemort-replicas",
                   voldemort_replica_lineage(replica_probe))
    blame.register("kafka-counts", kafka_audit_lineage(reconciler))

    auditor = Auditor(clock, metrics=metrics, blame=blame)
    auditor.add_cut(cut)
    horizon = lambda: cut.last_scn
    auditor.declare(espresso_containment(
        "espresso-containment", source, MEMBER_TABLE.name, target, horizon))
    auditor.declare(espresso_value_equality(
        "espresso-equality", source, MEMBER_TABLE.name, target,
        horizon=horizon))
    auditor.declare(search_containment(
        "search-containment", source, MEMBER_TABLE.name, search.index,
        horizon))
    auditor.declare(ReplicaAgreement(
        "voldemort-replicas", "voldemort:chaos",
        replica_values=replica_probe, min_replicas=3))
    produced, consumed = kafka_counts(reconciler)
    auditor.declare(CountConservation(
        "kafka-counts", "kafka:activity", produced, consumed))

    plan = FaultPlan(clock, disk, seed=seed)
    injector = ViolationInjector()

    def workload():
        for i in range(MEMBERS):
            source.autocommit(MEMBER_TABLE.name,
                              {"member_id": i, "name": f"member-{i}",
                               "headline": f"headline {i}",
                               "industry": "software"})
        for key in VOLDEMORT_KEYS:
            routed.put(key, Versioned.initial(b"value:" + key, 0))
        for i in range(10):
            producer.send("activity", {"event": "page_view", "n": i})
        producer.flush()
        producer.publish_monitoring_events()
        # load both relays now; consumers first pump at the first cut
        capture_es.poll()
        capture_search.poll()

    plan.call(1.0, "workload", workload)

    if with_injections:
        # pre-pump plants: in the pipeline before any consumer polls
        victim_scn = 3  # SCNs are 1-based: member_id 2's commit
        injector.drop_relay_window(
            plan, 2.0, relay_es, victim_scn,
            constraint="espresso-containment",
            subject=f"espresso:{MEMBER_TABLE.name}", key=(2,))
        # a byte-for-byte copy of a message already counted in window 0
        dup = dict({"event": "page_view", "n": 0})
        dup["timestamp"] = 1.0
        dup["server"] = "app-00"
        injector.duplicate_kafka_message(
            plan, 2.0, kafka, "activity", 0, json.dumps(dup).encode(),
            window=0, constraint="kafka-counts", subject="kafka:activity")
        # post-pump plants: corrupt state the pipeline already applied
        injector.skip_index_update(
            plan, 3.0, search.index, 5, key=(5,),
            constraint="search-containment",
            subject=f"search:{MEMBER_TABLE.name}")
        injector.flip_voldemort_bit(
            plan, 3.0, voldemort, "chaos",
            node_id=0, key=VOLDEMORT_KEYS[0],
            constraint="voldemort-replicas", subject="voldemort:chaos")
        injector.corrupt_store_write(
            plan, 3.0,
            lambda: target.put_row(MEMBER_TABLE.name,
                                   {"member_id": 6, "name": "CORRUPT",
                                    "headline": "stale", "industry": "?"}),
            constraint="espresso-equality",
            subject=f"espresso:{MEMBER_TABLE.name}", key=(6,))

    auditor.run_every(1.0, first_at=2.5)
    plan.run(until=6.0)
    auditor.stop()
    return {
        "auditor": auditor,
        "injector": injector,
        "plan": plan,
        "metrics": metrics,
        "voldemort": voldemort,
        "routed": routed,
    }


@pytest.fixture(scope="module")
def seeded():
    return build_world(4242, with_injections=True)


@pytest.fixture(scope="module")
def clean():
    return build_world(4242, with_injections=False)


def test_clean_run_reports_zero_violations(clean):
    """The control: no plants, no findings — every later detection is
    attributable to an injection, not auditor noise."""
    auditor = clean["auditor"]
    assert auditor.violations == []
    assert auditor.ticks >= 3
    assert auditor.metrics.family(VIOLATIONS_FAMILY).total() == 0


def test_auditor_catches_exactly_the_planted_violations(seeded):
    audit = reconcile(seeded["injector"].planted,
                      seeded["auditor"].findings)
    assert len(seeded["injector"].planted) == 5
    assert audit.missed == (), audit.summary()
    assert audit.unexpected == (), audit.summary()
    assert audit.exact


def test_five_distinct_injection_kinds(seeded):
    kinds = {p.kind for p in seeded["injector"].planted}
    assert len(kinds) == 5


def test_blame_names_the_true_stage_for_every_plant(seeded):
    audit = reconcile(seeded["injector"].planted,
                      seeded["auditor"].findings)
    assert audit.blame_total == 5
    assert audit.blame_accuracy >= 0.9, audit.summary()
    tops = {f.violation.constraint: f.blame.top
            for f in seeded["auditor"].findings}
    assert tops == {
        "espresso-containment": STAGE_RELAY,
        "espresso-equality": STAGE_STORE_WRITER,
        "search-containment": STAGE_INDEXER,
        "voldemort-replicas": STAGE_STORAGE_MEDIA,
        "kafka-counts": STAGE_BROKER,
    }


def test_violations_are_metered_per_constraint(seeded):
    family = seeded["metrics"].family(VIOLATIONS_FAMILY)
    assert family.total() == 5
    assert family.value(constraint="kafka-counts",
                        kind="duplicated-messages") == 1
    assert family.value(constraint="voldemort-replicas",
                        kind="replica-divergence") == 1


def test_persistent_corruptions_stay_one_finding_each(seeded):
    """The auditor kept ticking for seconds after detection; dedup by
    identity means the report holds one finding per corruption."""
    auditor = seeded["auditor"]
    assert auditor.ticks >= 3
    assert len(auditor.findings) == 5


def test_plants_appear_in_the_fault_trace(seeded):
    injected = [entry for entry in seeded["plan"].executed
                if entry[1] == "inject"]
    assert len(injected) == 5
    assert all(label for _, _, _, label in injected)


def test_same_seed_runs_are_byte_identical():
    first = build_world(99, with_injections=True)
    second = build_world(99, with_injections=True)
    assert first["auditor"].report_bytes() == second["auditor"].report_bytes()
    assert len(first["auditor"].report()["violations"]) == 5


def test_report_round_trips_through_json(seeded):
    document = json.loads(seeded["auditor"].report_bytes())
    assert document["constraints"] == [
        "espresso-containment", "espresso-equality", "kafka-counts",
        "search-containment", "voldemort-replicas"]
    assert all(entry["blame"]["top"] for entry in document["violations"])
