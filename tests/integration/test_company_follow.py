"""§II.C Company Follow: Oracle-stand-in -> Databus -> Voldemort caches.

"This uses two stores to maintain a cache-like interface on top of our
primary storage Oracle — the first one stores member id to list of
company ids followed by the user and the second one stores company id
to a list of member ids that follow it.  Both stores are fed by a
Databus relay and are populated whenever a user follows a new company."
"""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.serialization import decode_record
from repro.databus import DatabusClient, DatabusConsumer, Relay, capture_from_binlog
from repro.sqlstore import Column, SqlDatabase, TableSchema
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.client import json_client

FOLLOW_SCHEMA = TableSchema(
    "company_follow",
    (Column("member_id", int), Column("company_id", int), Column("since", int)),
    primary_key=("member_id", "company_id"),
)


class CompanyFollowCacher(DatabusConsumer):
    """Populates both Voldemort caches from follow-table CDC events."""

    def __init__(self, relay, member_client, company_client):
        self.relay = relay
        self.member_client = member_client
        self.company_client = company_client

    def on_data_event(self, event):
        schema = self.relay.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        member_key = b"member:%d" % row["member_id"]
        company_key = b"company:%d" % row["company_id"]
        from repro.sqlstore.binlog import ChangeKind
        if event.kind is ChangeKind.DELETE:
            self.member_client.put(member_key, None,
                                   transform=("list_remove", row["company_id"]))
            self.company_client.put(company_key, None,
                                    transform=("list_remove", row["member_id"]))
        else:
            self.member_client.put(member_key, None,
                                   transform=("list_append", row["company_id"]))
            self.company_client.put(company_key, None,
                                    transform=("list_append", row["member_id"]))


@pytest.fixture
def pipeline():
    clock = SimClock()
    oracle = SqlDatabase("oracle", clock=clock)
    oracle.create_table(FOLLOW_SCHEMA)
    relay = Relay()
    capture = capture_from_binlog(oracle, relay)

    voldemort = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                                 clock=clock)
    voldemort.define_store(StoreDefinition("member-follows", 2, 1, 1))
    voldemort.define_store(StoreDefinition("company-followers", 2, 1, 1))
    member_client = json_client(RoutedStore(voldemort, "member-follows"))
    company_client = json_client(RoutedStore(voldemort, "company-followers"))
    cacher = CompanyFollowCacher(relay, member_client, company_client)
    client = DatabusClient(cacher, relay)
    return oracle, capture, client, member_client, company_client


def follow(oracle, member_id, company_id):
    txn = oracle.begin()
    txn.insert("company_follow", {"member_id": member_id,
                                  "company_id": company_id, "since": 0})
    txn.commit()


def unfollow(oracle, member_id, company_id):
    txn = oracle.begin()
    txn.delete("company_follow", (member_id, company_id))
    txn.commit()


def test_follow_populates_both_caches(pipeline):
    oracle, capture, client, member_client, company_client = pipeline
    follow(oracle, member_id=1, company_id=100)
    follow(oracle, member_id=1, company_id=200)
    follow(oracle, member_id=2, company_id=100)
    capture.poll()
    client.run_to_head()
    assert member_client.get_value(b"member:1") == [100, 200]
    assert member_client.get_value(b"member:2") == [100]
    assert company_client.get_value(b"company:100") == [1, 2]
    assert company_client.get_value(b"company:200") == [1]


def test_unfollow_removes_from_caches(pipeline):
    oracle, capture, client, member_client, company_client = pipeline
    follow(oracle, 1, 100)
    follow(oracle, 1, 200)
    capture.poll()
    client.run_to_head()
    unfollow(oracle, 1, 100)
    capture.poll()
    client.run_to_head()
    assert member_client.get_value(b"member:1") == [200]
    assert company_client.get_value(b"company:100") == []


def test_source_isolated_from_cache_reads(pipeline):
    oracle, capture, client, member_client, _ = pipeline
    follow(oracle, 1, 100)
    capture.poll()
    client.run_to_head()
    commits_before = oracle.commits
    for _ in range(50):
        member_client.get_value(b"member:1")
    assert oracle.commits == commits_before


def test_cache_rebuild_via_databus_replay(pipeline):
    """A cold cache replays the stream from SCN 0 — the paper's
    'reprocess the whole data set' case."""
    oracle, capture, client, member_client, company_client = pipeline
    for member in range(5):
        follow(oracle, member, 100 + member % 2)
    capture.poll()
    client.run_to_head()
    # blow the cache away and rebuild with a fresh client
    rebuilt_member = json_client(RoutedStore(client.relay and
                                             member_client._routed.cluster,
                                             "member-follows"))
    cacher = CompanyFollowCacher(client.relay, member_client, company_client)
    fresh = DatabusClient(cacher, client.relay)
    fresh.run_to_head()
    # values were appended twice (at-least-once + replay) — list transform
    # is not idempotent, which is fine for this cache per the paper:
    # "having inconsistent values across stores is not a problem"
    values = member_client.get_value(b"member:0")
    assert 100 in values
