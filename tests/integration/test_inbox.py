"""The paper's mailbox example on Espresso.

§III.B's transaction-boundary example: "a single user's action can
trigger atomic updates to multiple rows across stores/tables, e.g. an
insert into a member's mailbox and update on the member's mailbox
unread count."  §IV.D notes "test deployments for users' inbox content
are underway" — so we run the inbox workload against Espresso,
verifying atomicity, downstream window atomicity, and failover safety.
"""

import pytest

from repro.common.serialization import Field, RecordSchema
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema, Router

MAILBOX_DB = DatabaseSchema(
    name="Mailbox", num_partitions=8, replication_factor=2,
    tables=(
        EspressoTableSchema("Message", ("member", "message_id")),
        EspressoTableSchema("Counts", ("member",)),
    ))
MESSAGE = RecordSchema("Message", [
    Field("sender", "string"),
    Field("subject", "string", free_text=True),
    Field("read", "boolean"),
])
COUNTS = RecordSchema("Counts", [Field("unread", "long"),
                                 Field("total", "long")])


@pytest.fixture
def cluster():
    built = EspressoCluster(MAILBOX_DB, num_nodes=3)
    built.post_document_schema("Message", MESSAGE)
    built.post_document_schema("Counts", COUNTS)
    built.start()
    return built


@pytest.fixture
def router(cluster):
    return Router(cluster)


def deliver(router, member, message_id, sender, subject, unread, total):
    """One user-visible action = one transaction over two tables."""
    return router.post_transaction("Mailbox", member, [
        ("put", "Message", (member, message_id),
         {"sender": sender, "subject": subject, "read": False}),
        ("put", "Counts", (member,), {"unread": unread, "total": total}),
    ])


def test_delivery_updates_both_tables_atomically(router):
    assert deliver(router, "bob", "m-001", "alice", "hello",
                   unread=1, total=1).status == 200
    message = router.get("/Mailbox/Message/bob/m-001").body
    counts = router.get("/Mailbox/Counts/bob").body
    assert message.document["sender"] == "alice"
    assert counts.document == {"unread": 1, "total": 1}


def test_failed_transaction_leaves_counts_untouched(router):
    deliver(router, "bob", "m-001", "alice", "hello", 1, 1)
    response = router.post_transaction("Mailbox", "bob", [
        ("put", "Message", ("bob", "m-002"),
         {"sender": "carol", "subject": "hi", "read": False}),
        ("delete", "Counts", ("ghost",), None),  # cross-resource: abort
    ])
    assert response.status == 409
    assert router.get("/Mailbox/Message/bob/m-002").status == 404
    assert router.get("/Mailbox/Counts/bob").body.document["unread"] == 1


def test_inbox_collection_and_search(router):
    deliver(router, "bob", "m-001", "alice", "quarterly report", 1, 1)
    deliver(router, "bob", "m-002", "carol", "lunch tomorrow", 2, 2)
    deliver(router, "bob", "m-003", "alice", "report feedback", 3, 3)
    inbox = router.get("/Mailbox/Message/bob").body
    assert [r.key[1] for r in inbox] == ["m-001", "m-002", "m-003"]
    hits = router.get("/Mailbox/Message/bob?query=subject:report").body
    assert {r.key[1] for r in hits} == {"m-001", "m-003"}


def test_downstream_sees_delivery_as_one_window(cluster, router):
    from repro.databus.client import DatabusClient, DatabusConsumer
    from repro.espresso.storage import partition_buffer_name

    deliver(router, "bob", "m-001", "alice", "hello", 1, 1)
    partition = MAILBOX_DB.partition_for("bob")
    windows = []

    class Collector(DatabusConsumer):
        def __init__(self):
            self.current = []

        def on_data_event(self, event):
            self.current.append(event.source)

        def on_end_window(self, scn):
            windows.append(tuple(self.current))
            self.current.clear()

    DatabusClient(Collector(), cluster.relay,
                  buffer_name=partition_buffer_name("Mailbox", partition)
                  ).run_to_head()
    assert windows == [("Message", "Counts")]


def test_unread_count_consistent_through_failover(cluster, router):
    for i in range(5):
        deliver(router, "bob", f"m-{i:03d}", "alice", f"msg {i}",
                unread=i + 1, total=i + 1)
    cluster.pump_replication()
    partition = MAILBOX_DB.partition_for("bob")
    cluster.crash_node(cluster.master_node(partition).instance_name)
    cluster.failover()
    counts = router.get("/Mailbox/Counts/bob").body
    inbox = router.get("/Mailbox/Message/bob").body
    # the invariant the transaction protects: counts match the mailbox
    assert counts.document["total"] == len(inbox) == 5
    assert counts.document["unread"] == 5


def test_read_marks_update_unread_count(router):
    deliver(router, "bob", "m-001", "alice", "hello", 1, 1)
    # reading the message: two-table transaction the other way
    response = router.post_transaction("Mailbox", "bob", [
        ("put", "Message", ("bob", "m-001"),
         {"sender": "alice", "subject": "hello", "read": True}),
        ("put", "Counts", ("bob",), {"unread": 0, "total": 1}),
    ])
    assert response.status == 200
    assert router.get("/Mailbox/Message/bob/m-001").body.document["read"]
    assert router.get("/Mailbox/Counts/bob").body.document["unread"] == 0
