"""Chaos test: random operations under random failures.

The invariant under test is the paper's core availability/consistency
story for R+W>N quorums: every write the cluster *acknowledged* remains
readable (its value or a causally newer one) once the cluster heals and
repair mechanisms run.  Unacknowledged writes may or may not survive —
that is allowed — but acknowledged ones must.
"""

import random

import pytest

from repro.common.errors import (
    InsufficientOperationalNodesError,
    KeyNotFoundError,
    ObsoleteVersionError,
)
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
from repro.voldemort.slop import SlopPusherService

pytestmark = pytest.mark.chaos


@pytest.mark.parametrize("seed", [1, 7, 21, 99])
def test_acknowledged_writes_survive_chaos(seed):
    rng = random.Random(seed)
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4, seed=seed)
    cluster.define_store(StoreDefinition(
        "chaos", replication_factor=3, required_reads=2, required_writes=2))
    routed = RoutedStore(cluster, "chaos")
    pusher = SlopPusherService(cluster, interval=1.0)

    keys = [b"key-%02d" % i for i in range(20)]
    acknowledged: dict[bytes, bytes] = {}
    crashed: set[int] = set()

    for step in range(400):
        action = rng.random()
        if action < 0.05 and len(crashed) < 2:
            victim = rng.choice([n for n in cluster.ring.nodes
                                 if n not in crashed])
            crashed.add(victim)
            cluster.network.failures.crash(cluster.node_name(victim))
        elif action < 0.10 and crashed:
            healed = rng.choice(sorted(crashed))
            crashed.discard(healed)
            cluster.network.failures.recover(cluster.node_name(healed))
            routed.detector.mark_up(healed)
        elif action < 0.55:
            key = rng.choice(keys)
            value = b"v-%d" % step
            try:
                current = routed.get(key)[0]
                clock = current[0].clock.incremented(0)
            except (KeyNotFoundError, InsufficientOperationalNodesError):
                clock = None
            try:
                if clock is None:
                    routed.put(key, Versioned.initial(value, 0))
                else:
                    routed.put(key, Versioned(value, clock))
                acknowledged[key] = value
            except (InsufficientOperationalNodesError, ObsoleteVersionError):
                pass  # unacknowledged; no promise made
        else:
            key = rng.choice(keys)
            try:
                routed.get(key)
            except (KeyNotFoundError, InsufficientOperationalNodesError):
                pass

    # heal everything and drain the repair machinery
    for node_id in sorted(crashed):
        cluster.network.failures.recover(cluster.node_name(node_id))
        routed.detector.mark_up(node_id)
    for _ in range(3):
        pusher.push_once()

    for key, value in acknowledged.items():
        frontier, _ = routed.get(key)
        values = {v.value for v in frontier}
        assert value in values, (
            f"acknowledged write {value!r} for {key!r} lost; "
            f"surviving versions: {values}")


@pytest.mark.parametrize("seed", [3, 13])
def test_quorum_never_reads_deleted_data_back(seed):
    """After an acknowledged delete (tombstone quorum), the key stays
    gone — a common anti-entropy bug class."""
    rng = random.Random(seed)
    cluster = VoldemortCluster(num_nodes=4, partitions_per_node=4, seed=seed)
    cluster.define_store(StoreDefinition("chaos", 3, 2, 2))
    routed = RoutedStore(cluster, "chaos")
    keys = [b"k-%d" % i for i in range(10)]
    deleted: set[bytes] = set()
    for step in range(200):
        key = rng.choice(keys)
        try:
            frontier = routed.get(key)[0]
        except (KeyNotFoundError, InsufficientOperationalNodesError):
            frontier = []
        clock = frontier[0].clock if frontier else None
        if rng.random() < 0.3 and clock is not None:
            try:
                routed.delete(key, Versioned(None, clock.incremented(0)))
                deleted.add(key)
            except (InsufficientOperationalNodesError, ObsoleteVersionError):
                pass
        else:
            try:
                if clock is None:
                    routed.put(key, Versioned.initial(b"x", 0))
                else:
                    routed.put(key, Versioned(b"x", clock.incremented(0)))
                deleted.discard(key)
            except (InsufficientOperationalNodesError, ObsoleteVersionError):
                pass
    for key in deleted:
        with pytest.raises(KeyNotFoundError):
            routed.get(key)
