"""Partitioned graph structure and §I.A's query examples."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.socialgraph import PartitionedSocialGraph


@pytest.fixture
def graph():
    return PartitionedSocialGraph(num_partitions=4)


def chain(graph, *members):
    for a, b in zip(members, members[1:]):
        graph.connect(a, b)


def test_connect_is_undirected(graph):
    assert graph.connect(1, 2)
    assert 2 in graph.connections_of(1)
    assert 1 in graph.connections_of(2)
    assert graph.edge_count == 1


def test_duplicate_edges_counted_once(graph):
    assert graph.connect(1, 2)
    assert not graph.connect(2, 1)
    assert graph.edge_count == 1


def test_self_connection_rejected(graph):
    with pytest.raises(ConfigurationError):
        graph.connect(5, 5)


def test_disconnect(graph):
    graph.connect(1, 2)
    assert graph.disconnect(1, 2)
    assert not graph.disconnect(1, 2)
    assert graph.connections_of(1) == set()
    assert graph.edge_count == 0


def test_connection_count(graph):
    for other in range(2, 8):
        graph.connect(1, other)
    assert graph.connection_count(1) == 6
    assert graph.connection_count(99) == 0


def test_shared_connections(graph):
    graph.connect(1, 10)
    graph.connect(1, 11)
    graph.connect(2, 10)
    graph.connect(2, 12)
    assert graph.shared_connections(1, 2) == {10}
    assert graph.shared_connections(1, 99) == set()


def test_distance_direct_and_zero(graph):
    graph.connect(1, 2)
    assert graph.distance(1, 1) == 0
    assert graph.distance(1, 2) == 1
    assert graph.distance(2, 1) == 1


def test_distance_multi_hop(graph):
    chain(graph, 1, 2, 3, 4, 5)
    assert graph.distance(1, 3) == 2
    assert graph.distance(1, 5) == 4
    # a shortcut changes the answer
    graph.connect(1, 4)
    assert graph.distance(1, 5) == 2


def test_distance_bounded(graph):
    chain(graph, *range(10))
    assert graph.distance(0, 9, max_degrees=6) is None
    assert graph.distance(0, 9, max_degrees=9) == 9


def test_distance_disconnected(graph):
    graph.connect(1, 2)
    graph.connect(10, 11)
    assert graph.distance(1, 10) is None


def test_shortest_path(graph):
    chain(graph, 1, 2, 3, 4)
    assert graph.shortest_path(1, 4) == [1, 2, 3, 4]
    assert graph.shortest_path(1, 1) == [1]
    assert graph.shortest_path(1, 99) is None
    graph.connect(1, 3)
    assert graph.shortest_path(1, 4) == [1, 3, 4]


def test_partitioning_spreads_members(graph):
    for member in range(100):
        graph.connect(member, member + 100)
    sizes = graph.partition_sizes()
    assert len(sizes) == 4
    assert min(sizes) > 0
    assert graph.member_count() == 200


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                max_size=60), st.integers(0, 30), st.integers(0, 30))
def test_distance_matches_reference_bfs(edges, source, target):
    """Bidirectional BFS agrees with a plain reference BFS."""
    graph = PartitionedSocialGraph(num_partitions=3)
    adjacency: dict[int, set[int]] = {}
    for a, b in edges:
        if a == b:
            continue
        graph.connect(a, b)
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    # reference single-source BFS
    from collections import deque
    reference = None
    seen = {source: 0}
    queue = deque([source])
    while queue:
        member = queue.popleft()
        if member == target:
            reference = seen[member]
            break
        for neighbor in adjacency.get(member, set()):
            if neighbor not in seen:
                seen[neighbor] = seen[member] + 1
                queue.append(neighbor)
    if source == target:
        reference = 0
    bounded = reference if reference is not None and reference <= 6 else None
    assert graph.distance(source, target, max_degrees=6) == bounded


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                min_size=1, max_size=40))
def test_shortest_path_is_valid_and_minimal(edges):
    graph = PartitionedSocialGraph(num_partitions=2)
    for a, b in edges:
        if a != b:
            graph.connect(a, b)
    rng = random.Random(1)
    nodes = sorted({m for e in edges for m in e})
    for _ in range(5):
        a, b = rng.choice(nodes), rng.choice(nodes)
        path = graph.shortest_path(a, b, max_degrees=20)
        distance = graph.distance(a, b, max_degrees=20)
        if path is None:
            assert distance is None
        else:
            assert path[0] == a and path[-1] == b
            for x, y in zip(path, path[1:]):
                assert y in graph.connections_of(x)
            assert len(path) - 1 == distance
