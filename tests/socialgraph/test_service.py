"""The graph service fed by Databus CDC."""

import pytest

from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.socialgraph import CONNECTION_TABLE, SocialGraphService
from repro.socialgraph.service import connection_row
from repro.sqlstore import SqlDatabase


@pytest.fixture
def pipeline():
    db = SqlDatabase("graph-primary", clock=SimClock())
    db.create_table(CONNECTION_TABLE)
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    service = SocialGraphService(relay, num_partitions=8)
    return db, capture, service


def accept_connection(db, a, b):
    txn = db.begin()
    txn.insert("connection", connection_row(a, b))
    txn.commit()


def remove_connection(db, a, b):
    low, high = sorted((a, b))
    txn = db.begin()
    txn.delete("connection", (low, high))
    txn.commit()


def test_connections_flow_from_primary_store(pipeline):
    db, capture, service = pipeline
    accept_connection(db, 1, 2)
    accept_connection(db, 2, 3)
    capture.poll()
    assert service.catch_up() == 2
    assert service.graph.distance(1, 3) == 2
    assert service.degree_badge(1, 2) == "1st"
    assert service.degree_badge(1, 3) == "2nd"


def test_removed_connections_disappear(pipeline):
    db, capture, service = pipeline
    accept_connection(db, 1, 2)
    remove_connection(db, 1, 2)
    capture.poll()
    service.catch_up()
    assert service.graph.distance(1, 2) is None
    assert service.degree_badge(1, 2) == "out-of-network"


def test_canonical_edge_ordering(pipeline):
    db, capture, service = pipeline
    accept_connection(db, 9, 3)  # stored as (3, 9)
    capture.poll()
    service.catch_up()
    assert service.graph.distance(3, 9) == 1


def test_mutual_connections_and_paths(pipeline):
    db, capture, service = pipeline
    for other in (10, 11, 12):
        accept_connection(db, 1, other)
        accept_connection(db, 2, other)
    capture.poll()
    service.catch_up()
    assert service.mutual_connections(1, 2) == [10, 11, 12]
    path = service.path_between(1, 2)
    assert len(path) == 3 and path[0] == 1 and path[-1] == 2


def test_checkpoint_resumes_without_replay(pipeline):
    db, capture, service = pipeline
    accept_connection(db, 1, 2)
    capture.poll()
    service.catch_up()
    checkpoint = service.checkpoint
    # a restarted service resumes from the checkpoint: no duplicates
    restarted = SocialGraphService(service.relay, checkpoint=checkpoint)
    accept_connection(db, 2, 3)
    capture.poll()
    restarted.catch_up()
    assert restarted.events_applied == 1
    assert restarted.graph.distance(2, 3) == 1
    # it never saw the earlier edge (state would come from a snapshot
    # in production; the checkpoint proves no replay happened)
    assert restarted.graph.distance(1, 2) is None


def test_graph_queries_never_touch_primary(pipeline):
    db, capture, service = pipeline
    for i in range(20):
        accept_connection(db, i, i + 1)
    capture.poll()
    service.catch_up()
    commits = db.commits
    for i in range(20):
        service.degree_badge(0, i)
        service.mutual_connections(i, i + 2)
    assert db.commits == commits
