"""Seeded injection: each plant takes the real damage path, and the
score card matches findings to ground truth."""

import pytest

from repro.audit import (
    AuditFinding,
    BlameVerdict,
    PlantedViolation,
    Violation,
    ViolationInjector,
    reconcile,
)
from repro.audit.blame import (
    STAGE_BROKER,
    STAGE_INDEXER,
    STAGE_RELAY,
    STAGE_STORAGE_MEDIA,
)
from repro.common.clock import SimClock
from repro.common.errors import ChecksumError
from repro.databus import Relay, capture_from_binlog
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import FaultPlan
from repro.sqlstore import SqlDatabase
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)


@pytest.fixture
def sim():
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=7)
    return clock, disk, FaultPlan(clock, disk, seed=7)


def test_inject_fires_at_its_time_and_lands_in_the_trace(sim):
    clock, disk, plan = sim
    fired_at = []
    plan.inject(1.5, "test-plant", lambda: fired_at.append(clock.now()))
    plan.run(until=3.0)
    assert fired_at == [1.5]
    assert (1.5, "inject", "", "test-plant") in plan.executed


def test_drop_relay_window_is_silent_to_the_consumer(sim):
    clock, disk, plan = sim
    db = SqlDatabase("members", clock=clock)
    db.create_table(MEMBER_TABLE)
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    service = PeopleSearchService(relay)
    scns = []
    for i in range(3):
        scns.append(db.autocommit(
            "member_profile", {"member_id": i, "name": f"m{i}",
                               "headline": "x", "industry": "y"}))
    capture.poll()

    injector = ViolationInjector()
    planted = injector.drop_relay_window(
        plan, 1.0, relay, scns[1],
        constraint="search-containment", subject="search:member_profile",
        key=(1,))
    plan.run(until=2.0)

    # no error, no SCNGoneError: the checkpoint sails past the hole
    service.catch_up()
    assert service.client.checkpoint >= scns[2]
    assert service.documents_indexed == 2
    assert 1 not in service.index
    assert planted.stage == STAGE_RELAY
    assert planted.key == repr((1,))


def test_flip_voldemort_bit_surfaces_as_checksum_error(sim):
    clock, disk, plan = sim
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                               clock=clock, disk=disk, seed=7)
    cluster.define_store(StoreDefinition(
        "store", replication_factor=2, required_reads=1, required_writes=2,
        engine_type="log-structured"))
    routed = RoutedStore(cluster, "store")
    routed.put(b"victim", Versioned.initial(b"value", 0))
    victim_node = routed.replica_nodes(b"victim")[0]

    injector = ViolationInjector()
    planted = injector.flip_voldemort_bit(
        plan, 1.0, cluster, "store", victim_node, b"victim",
        constraint="replica-agreement", subject="voldemort:store")
    plan.run(until=2.0)

    with pytest.raises(ChecksumError):
        cluster.server_for(victim_node).engine("store").get(b"victim")
    assert planted.stage == STAGE_STORAGE_MEDIA


def test_skip_index_update_removes_an_applied_document(sim):
    clock, disk, plan = sim
    relay = Relay()
    service = PeopleSearchService(relay)
    service.index.add(7, {"name": "seven", "headline": "h", "industry": "i"})

    injector = ViolationInjector()
    planted = injector.skip_index_update(
        plan, 1.0, service.index, 7,
        constraint="search-containment", subject="search:member_profile")
    assert 7 in service.index
    plan.run(until=2.0)
    assert 7 not in service.index
    assert planted.stage == STAGE_INDEXER


def test_duplicate_kafka_message_bypasses_producer_counting(sim, tmp_path):
    from repro.kafka.broker import KafkaCluster

    clock, disk, plan = sim
    cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path),
                           clock=clock)
    cluster.create_topic("events", partitions=1)

    injector = ViolationInjector()
    planted = injector.duplicate_kafka_message(
        plan, 1.0, cluster, "events", 0, b"payload", window=0,
        constraint="kafka-counts", subject="kafka:events")
    plan.run(until=2.0)

    from repro.kafka.message import iter_messages

    broker = cluster.broker_for("events", 0)
    data = broker.fetch("events", 0, 0)
    payloads = [d.message.payload for d in iter_messages(data, 0)]
    assert payloads == [b"payload"]
    assert planted.stage == STAGE_BROKER
    assert planted.key == repr(("events", 0))


# -- reconcile scoring -------------------------------------------------------

def plant(constraint, key, stage):
    return PlantedViolation("some-kind", constraint, "subject", repr(key),
                            stage, at=1.0)


def finding(constraint, key, top=None):
    violation = Violation(constraint, "some-kind", "subject", repr(key),
                          "e", "a")
    blame = None
    if top is not None:
        blame = BlameVerdict(top=top, ranking=((top, 1.0),), evidence=())
    return AuditFinding(violation, blame)


def test_reconcile_exact_match_with_correct_blame():
    plants = [plant("c1", (1,), "relay"), plant("c2", (2,), "broker")]
    findings = [finding("c1", (1,), top="relay"),
                finding("c2", (2,), top="broker")]
    audit = reconcile(plants, findings)
    assert audit.exact
    assert audit.blame_accuracy == 1.0
    assert audit.summary() == "caught 2/2, 0 unexpected, blame 2/2 top-1"


def test_reconcile_counts_misses_and_false_positives():
    plants = [plant("c1", (1,), "relay"), plant("c2", (2,), "broker")]
    findings = [finding("c1", (1,), top="capture"),   # wrong blame
                finding("c9", (9,), top="broker")]    # nobody planted this
    audit = reconcile(plants, findings)
    assert not audit.exact
    assert [p.constraint for p in audit.missed] == ["c2"]
    assert audit.unexpected == (("c9", "subject", repr((9,))),)
    assert audit.blame_hits == 0 and audit.blame_total == 1


def test_reconcile_without_blame_engine_scores_vacuously():
    plants = [plant("c1", (1,), "relay")]
    audit = reconcile(plants, [finding("c1", (1,))])
    assert audit.exact
    assert audit.blame_total == 0
    assert audit.blame_accuracy == 1.0


def test_reconcile_dedups_repeat_findings():
    plants = [plant("c1", (1,), "relay")]
    findings = [finding("c1", (1,), top="relay"),
                finding("c1", (1,), top="capture")]  # later duplicate
    audit = reconcile(plants, findings)
    assert audit.exact
    assert audit.blame_hits == 1  # first finding wins
