"""Blame attribution: lineage walks and causal-order ranking."""

import pytest

from repro.audit import BlameEngine, Lineage, Violation
from repro.audit.blame import Evidence, _rank
from repro.common.errors import ConfigurationError, KeyNotFoundError


def make_violation(constraint="c", key=(1,)):
    return Violation(constraint, "missing-key", "subject", repr(key),
                     "present", "absent", raw_key=key)


def lineage_of(*outcomes):
    """A lineage whose stage checks return the given fixed outcomes."""
    return Lineage([(f"stage-{i}", (lambda out: lambda v: out)(outcome))
                    for i, outcome in enumerate(outcomes)])


def test_first_failing_stage_takes_the_blame():
    engine = BlameEngine()
    engine.register("c", lineage_of(True, False, False, True))
    verdict = engine.attribute(make_violation())
    assert verdict.top == "stage-1"
    assert verdict.score_of("stage-1") == 1.0
    # downstream breakage is fallout, not cause: half the score
    assert verdict.score_of("stage-2") == 0.5
    assert verdict.score_of("stage-0") == 0.0


def test_unknown_stages_keep_a_residual_score():
    """Unknown is not innocent: an uninspectable stage can still be the
    culprit, so it must appear in the ranking."""
    engine = BlameEngine()
    engine.register("c", lineage_of(None, False))
    verdict = engine.attribute(make_violation())
    assert verdict.top == "stage-1"
    assert verdict.score_of("stage-0") == pytest.approx(0.1)


def test_all_unknown_ranks_by_pipeline_order():
    engine = BlameEngine()
    engine.register("c", lineage_of(None, None))
    verdict = engine.attribute(make_violation())
    assert verdict.top == "stage-0"
    assert verdict.score_of("stage-0") == pytest.approx(0.5)
    assert verdict.score_of("stage-1") == pytest.approx(0.25)


def test_all_clean_defaults_to_the_last_stage_low_confidence():
    """Every stage checks out, yet the artifact is wrong: blame the
    stage closest to it, at low confidence."""
    engine = BlameEngine()
    engine.register("c", lineage_of(True, True, True))
    verdict = engine.attribute(make_violation())
    assert verdict.top == "stage-2"
    assert verdict.score_of("stage-2") == pytest.approx(0.1)


def test_evidence_records_every_stage_in_pipeline_order():
    engine = BlameEngine()
    engine.register("c", lineage_of(True, None, False))
    verdict = engine.attribute(make_violation())
    assert [e.stage for e in verdict.evidence] == ["stage-0", "stage-1",
                                                  "stage-2"]
    assert [e.ok for e in verdict.evidence] == [True, None, False]
    assert verdict.evidence[2].detail == "verified broken"


def test_taxonomy_error_in_a_check_becomes_unknown_evidence():
    def broken_check(violation):
        raise KeyNotFoundError("probe store lost the key")

    engine = BlameEngine()
    engine.register("c", Lineage([("probe", broken_check),
                                  ("sink", lambda v: False)]))
    verdict = engine.attribute(make_violation())
    probe_evidence = verdict.evidence[0]
    assert probe_evidence.ok is None
    assert "KeyNotFoundError" in probe_evidence.detail
    assert verdict.top == "sink"


def test_unregistered_constraint_yields_no_verdict():
    engine = BlameEngine()
    assert engine.attribute(make_violation()) is None
    assert engine.attributions == 0


def test_duplicate_registration_is_rejected():
    engine = BlameEngine()
    engine.register("c", lineage_of(True))
    with pytest.raises(ConfigurationError):
        engine.register("c", lineage_of(True))


def test_lineage_rejects_empty_and_duplicate_stages():
    with pytest.raises(ConfigurationError):
        Lineage([])
    with pytest.raises(ConfigurationError):
        Lineage([("a", lambda v: True), ("a", lambda v: True)])


def test_rank_tiebreak_follows_pipeline_order():
    lineage = lineage_of(False, True, True)
    evidence = [Evidence("stage-0", False), Evidence("stage-1", True),
                Evidence("stage-2", True)]
    verdict = _rank(lineage, evidence)
    # stage-1 and stage-2 both score 0.0: the tie resolves upstream-first
    assert [stage for stage, _ in verdict.ranking] == ["stage-0", "stage-1",
                                                       "stage-2"]
