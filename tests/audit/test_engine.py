"""The auditor: certified cuts, tick dedup, metering, reports."""

import json

import pytest

from repro.audit import (
    Auditor,
    BlameEngine,
    CountConservation,
    KeySetContainment,
    Lineage,
    WatermarkCut,
)
from repro.audit.engine import VIOLATIONS_FAMILY
from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError, NonConvergenceError
from repro.common.metrics import MetricsRegistry
from repro.databus import Relay, capture_from_binlog
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.sqlstore import SqlDatabase


@pytest.fixture
def clock():
    return SimClock()


def make_pipeline(clock):
    """A real sqlstore -> relay -> consumer pipeline for cut tests."""
    db = SqlDatabase("members", clock=clock)
    db.create_table(MEMBER_TABLE)
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    service = PeopleSearchService(relay)
    return db, relay, capture, service


def upsert(db, member_id, name):
    db.autocommit("member_profile",
                  {"member_id": member_id, "name": name,
                   "headline": "x", "industry": "y"})


# -- WatermarkCut ------------------------------------------------------------

def test_certify_pumps_until_the_watermark_passes(clock):
    db, relay, capture, service = make_pipeline(clock)
    upsert(db, 1, "a")
    upsert(db, 2, "b")

    def pump():
        capture.poll()
        service.client.poll()

    cut = WatermarkCut(db, pump, [lambda: service.client.checkpoint])
    scn = cut.certify()
    assert scn == db.last_committed_scn
    assert service.client.checkpoint >= scn
    assert cut.cuts_certified == 1 and cut.last_scn == scn
    # every committed row had to flow through before certification
    assert service.documents_indexed == 2


def test_certify_fails_loudly_when_the_pipeline_is_wedged(clock):
    db, relay, capture, service = make_pipeline(clock)
    upsert(db, 1, "a")
    cut = WatermarkCut(db, pump=lambda: None,
                       positions=[lambda: service.client.checkpoint],
                       max_rounds=5)
    with pytest.raises(NonConvergenceError):
        cut.certify()


def test_cut_validation():
    db = SqlDatabase("d", clock=SimClock())
    with pytest.raises(ConfigurationError):
        WatermarkCut(db, lambda: None, positions=[])
    with pytest.raises(ConfigurationError):
        WatermarkCut(db, lambda: None, positions=[lambda: 0], max_rounds=0)


# -- Auditor ticks -----------------------------------------------------------

def failing_constraint(name="c", bucket=("t", 0)):
    return CountConservation(name, "kafka:t",
                             produced=lambda: {bucket: 5},
                             consumed=lambda: {bucket: 3})


def test_tick_stamps_meters_and_returns_fresh_findings(clock):
    clock.advance(4.5)
    metrics = MetricsRegistry()
    auditor = Auditor(clock, metrics=metrics)
    auditor.declare(failing_constraint())
    fresh = auditor.tick()
    assert len(fresh) == 1
    assert fresh[0].violation.detected_at == 4.5
    family = metrics.family(VIOLATIONS_FAMILY)
    assert family.value(constraint="c", kind="lost-messages") == 1
    assert metrics.counter("audit.ticks").value == 1


def test_persistent_violation_is_one_finding_not_one_per_tick(clock):
    auditor = Auditor(clock)
    auditor.declare(failing_constraint())
    assert len(auditor.tick()) == 1
    assert auditor.tick() == []
    assert len(auditor.violations) == 1
    # the metric counts findings, not re-sightings
    assert auditor.metrics.family(VIOLATIONS_FAMILY).total() == 1


def test_duplicate_constraint_name_is_rejected(clock):
    auditor = Auditor(clock)
    auditor.declare(failing_constraint("same"))
    with pytest.raises(ConfigurationError):
        auditor.declare(failing_constraint("same"))


def test_tick_attributes_blame_when_an_engine_is_attached(clock):
    blame = BlameEngine()
    blame.register("c", Lineage([("producer", lambda v: True),
                                 ("broker", lambda v: False)]))
    auditor = Auditor(clock, blame=blame)
    auditor.declare(failing_constraint())
    [finding] = auditor.tick()
    assert finding.blame is not None
    assert finding.blame.top == "broker"


def test_run_every_fires_on_the_sim_clock(clock):
    auditor = Auditor(clock)
    auditor.declare(failing_constraint())
    auditor.run_every(0.5, first_at=0.25)
    clock.advance(2.0)
    assert auditor.ticks == 4
    auditor.stop()
    clock.advance(2.0)
    assert auditor.ticks == 4  # stopped: no further fires
    with pytest.raises(ConfigurationError):
        auditor.run_every(0.0)


def test_run_every_rejects_double_start(clock):
    auditor = Auditor(clock)
    auditor.run_every(1.0)
    with pytest.raises(ConfigurationError):
        auditor.run_every(1.0)


# -- reports -----------------------------------------------------------------

def test_report_carries_evidence_and_blame(clock):
    blame = BlameEngine()
    blame.register("c", Lineage([("broker", lambda v: False)]))
    auditor = Auditor(clock, blame=blame)
    auditor.declare(failing_constraint())
    auditor.tick()
    report = auditor.report()
    assert report["constraints"] == ["c"]
    assert report["ticks"] == 1
    [entry] = report["violations"]
    assert entry["kind"] == "lost-messages"
    assert entry["blame"]["top"] == "broker"
    assert entry["blame"]["evidence"][0]["ok"] is False


def test_report_bytes_is_canonical_json(clock):
    auditor = Auditor(clock)
    auditor.declare(failing_constraint())
    auditor.tick()
    first = auditor.report_bytes()
    assert first == auditor.report_bytes()
    assert json.loads(first) == auditor.report()


def test_report_orders_violations_not_by_discovery(clock):
    auditor = Auditor(clock)
    auditor.declare(failing_constraint("zz"))
    auditor.declare(failing_constraint("aa"))
    auditor.tick()
    names = [entry["constraint"] for entry in auditor.report()["violations"]]
    assert names == ["aa", "zz"]
