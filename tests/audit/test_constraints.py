"""The constraint DSL: four invariant families over closure probes."""

import pytest

from repro.audit import (
    ABSENT_VALUE,
    UNREADABLE,
    CountConservation,
    KeySetContainment,
    ReplicaAgreement,
    ValueEquality,
    check_all,
)
from repro.audit.constraints import preview
from repro.common.errors import ConfigurationError


# -- CountConservation -------------------------------------------------------

def test_count_conservation_holds_when_counts_match():
    constraint = CountConservation(
        "kafka-counts", "kafka:events",
        produced=lambda: {("events", 0): 5},
        consumed=lambda: {("events", 0): 5})
    assert constraint.check() == []


def test_count_deficit_is_lost_messages():
    constraint = CountConservation(
        "kafka-counts", "kafka:events",
        produced=lambda: {("events", 0): 5},
        consumed=lambda: {("events", 0): 3})
    [violation] = constraint.check()
    assert violation.kind == "lost-messages"
    assert violation.key == repr(("events", 0))
    assert violation.expected == "5 messages"
    assert violation.actual == "3 messages"


def test_count_surplus_is_duplicated_messages():
    constraint = CountConservation(
        "kafka-counts", "kafka:events",
        produced=lambda: {("events", 0): 5},
        consumed=lambda: {("events", 0): 7})
    [violation] = constraint.check()
    assert violation.kind == "duplicated-messages"


def test_count_buckets_missing_on_either_side_default_to_zero():
    constraint = CountConservation(
        "kafka-counts", "kafka:events",
        produced=lambda: {("events", 0): 2},
        consumed=lambda: {("events", 1): 3})
    kinds = {v.key: v.kind for v in constraint.check()}
    assert kinds == {repr(("events", 0)): "lost-messages",
                     repr(("events", 1)): "duplicated-messages"}


# -- KeySetContainment -------------------------------------------------------

def test_containment_flags_keys_missing_before_the_horizon():
    constraint = KeySetContainment(
        "espresso-keys", "espresso:profiles",
        source_items=lambda: {(1,): 10, (2,): 20},
        contains=lambda key: key == (1,),
        horizon=lambda: 100)
    [violation] = constraint.check()
    assert violation.kind == "missing-key"
    assert violation.key == repr((2,))
    assert violation.scn == 20
    assert "horizon 100" in violation.expected


def test_containment_skips_keys_committed_past_the_horizon():
    """In-flight rows (committed after the certified cut) are not
    violations — this is what keeps a continuous audit quiet while the
    pipeline is merely lagging."""
    constraint = KeySetContainment(
        "espresso-keys", "espresso:profiles",
        source_items=lambda: {(1,): 10, (2,): 200},
        contains=lambda key: False,
        horizon=lambda: 100)
    assert [v.key for v in constraint.check()] == [repr((1,))]


# -- ValueEquality -----------------------------------------------------------

def test_value_equality_reports_divergence_with_previews():
    constraint = ValueEquality(
        "espresso-values", "espresso:profiles",
        expected_items=lambda: {(1,): {"name": "good"}},
        actual_of=lambda key: {"name": "bad"})
    [violation] = constraint.check()
    assert violation.kind == "value-divergence"
    assert violation.expected == repr({"name": "good"})
    assert violation.actual == repr({"name": "bad"})


def test_value_equality_leaves_absence_to_containment():
    constraint = ValueEquality(
        "espresso-values", "espresso:profiles",
        expected_items=lambda: {(1,): {"name": "good"}},
        actual_of=lambda key: ABSENT_VALUE)
    assert constraint.check() == []


def test_value_equality_respects_the_horizon():
    constraint = ValueEquality(
        "espresso-values", "espresso:profiles",
        expected_items=lambda: {(1,): "a", (2,): "b"},
        actual_of=lambda key: "wrong",
        scn_of=lambda key: {(1,): 10, (2,): 200}[key],
        horizon=lambda: 100)
    [violation] = constraint.check()
    assert violation.key == repr((1,))
    assert violation.scn == 10


# -- ReplicaAgreement --------------------------------------------------------

def test_replica_agreement_passes_when_all_copies_match():
    constraint = ReplicaAgreement(
        "replicas", "voldemort:chaos",
        replica_values=lambda: {b"k": {"node-0": b"v", "node-1": b"v"}})
    assert constraint.check() == []


def test_replica_divergence_names_every_replica_value():
    constraint = ReplicaAgreement(
        "replicas", "voldemort:chaos",
        replica_values=lambda: {b"k": {"node-0": b"v", "node-1": UNREADABLE}})
    [violation] = constraint.check()
    assert violation.kind == "replica-divergence"
    assert "node-0" in violation.actual and "node-1" in violation.actual
    assert UNREADABLE in violation.actual


def test_under_replication_is_its_own_kind():
    constraint = ReplicaAgreement(
        "replicas", "voldemort:chaos",
        replica_values=lambda: {b"k": {"node-0": b"v"}},
        min_replicas=3)
    [violation] = constraint.check()
    assert violation.kind == "under-replicated"
    assert violation.expected == ">= 3 replicas"


def test_min_replicas_must_be_positive():
    with pytest.raises(ConfigurationError):
        ReplicaAgreement("r", "s", lambda: {}, min_replicas=0)


# -- cross-cutting behaviour -------------------------------------------------

def test_violation_order_is_deterministic():
    """Probe dict insertion order must never leak into the report."""
    forward = {(2,): 20, (1,): 10, (3,): 5}
    backward = dict(reversed(list(forward.items())))
    make = lambda items: KeySetContainment(
        "c", "s", source_items=lambda: items,
        contains=lambda key: False, horizon=lambda: 100)
    assert ([v.key for v in make(forward).check()]
            == [v.key for v in make(backward).check()]
            == [repr((3,)), repr((1,)), repr((2,))])  # SCN order


def test_identity_ignores_evidence_fields():
    constraint = CountConservation(
        "c", "s", produced=lambda: {("t", 0): 5},
        consumed=lambda: {("t", 0): 3})
    [first] = constraint.check()
    constraint.consumed = lambda: {("t", 0): 1}
    [second] = constraint.check()
    assert first.identity == second.identity
    assert first.actual != second.actual


def test_preview_truncates_long_values():
    text = preview("x" * 500)
    assert len(text) <= 130
    assert text.endswith("...")


def test_render_is_one_line_of_evidence():
    constraint = KeySetContainment(
        "espresso-keys", "espresso:profiles",
        source_items=lambda: {(7,): 3}, contains=lambda key: False,
        horizon=lambda: 10)
    [violation] = constraint.check()
    line = violation.render()
    assert "espresso-keys" in line and "missing-key" in line
    assert repr((7,)) in line


def test_check_all_preserves_declaration_order():
    first = CountConservation("a", "s", lambda: {"b": 1}, lambda: {"b": 0})
    second = CountConservation("b", "s", lambda: {"b": 1}, lambda: {"b": 0})
    names = [v.constraint for v in check_all([first, second])]
    assert names == ["a", "b"]


def test_constraint_requires_name_and_subject():
    with pytest.raises(ConfigurationError):
        CountConservation("", "s", lambda: {}, lambda: {})
    with pytest.raises(ConfigurationError):
        CountConservation("n", "", lambda: {}, lambda: {})
