"""Ready-made probes and lineages against the real stores they wrap."""

import pytest

from repro.audit import ABSENT_VALUE, UNREADABLE, Violation
from repro.audit.blame import (
    STAGE_BROKER,
    STAGE_CAPTURE,
    STAGE_COMMIT,
    STAGE_CONSUMER,
    STAGE_PRODUCER,
    STAGE_RELAY,
    STAGE_REPLICATION,
    STAGE_STORAGE_MEDIA,
    STAGE_STORE_WRITER,
)
from repro.audit.wiring import (
    binlog_key_scns,
    cutover_check,
    espresso_containment,
    espresso_value_equality,
    kafka_audit_lineage,
    kafka_counts,
    search_containment,
    source_head,
    sqlstore_pipeline_lineage,
    voldemort_replica_lineage,
    voldemort_replica_values,
)
from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.migration import MigrationPhase, MigrationStack
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.simnet.disk import SimDisk
from repro.sqlstore import SqlDatabase
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)

from tests.migration.conftest import FAST_SLO, drive_to_phase, make_source


@pytest.fixture
def clock():
    return SimClock()


# -- sqlstore probes ---------------------------------------------------------

def test_binlog_key_scns_tracks_upserts_and_deletes(clock):
    db = make_source(clock, profiles=3, inmails=0)
    probe = binlog_key_scns(db, "profiles")
    before = probe()
    assert set(before) == {(0,), (1,), (2,)}
    txn = db.begin()
    txn.delete("profiles", (1,))
    txn.commit()
    txn = db.begin()
    txn.upsert("profiles", {"member_id": 0, "name": "edited", "score": 1})
    scn = txn.commit()
    after = probe()
    assert (1,) not in after
    assert after[(0,)] == scn  # the latest commit wins


# -- espresso-target constraints ---------------------------------------------

def cutover_stack(clock):
    source = make_source(clock, profiles=10, inmails=4)
    stack = MigrationStack.build(source, SimDisk().scope("c"), clock,
                                 slo=FAST_SLO, chunk_size=16)
    drive_to_phase(stack, clock, MigrationPhase.CUTOVER)
    return source, stack


def test_espresso_constraints_pass_on_a_converged_target(clock):
    source, stack = cutover_stack(clock)
    containment = espresso_containment(
        "keys", source, "profiles", stack.target, source_head(source))
    equality = espresso_value_equality(
        "values", source, "profiles", stack.target)
    assert containment.check() == []
    assert equality.check() == []


def test_espresso_constraints_catch_a_corrupted_document(clock):
    source, stack = cutover_stack(clock)
    stack.target.put_row("profiles", {"member_id": 3, "name": "BAD",
                                      "score": 0})
    equality = espresso_value_equality(
        "values", source, "profiles", stack.target)
    [violation] = equality.check()
    assert violation.kind == "value-divergence"
    assert violation.raw_key == (3,)


def test_cutover_check_mirrors_the_proxy_comparison(clock):
    source, stack = cutover_stack(clock)
    check = cutover_check(stack.proxy)
    assert check() == []
    stack.target.delete_row("profiles", (5,))
    kinds = {(v.constraint, v.key) for v in check()}
    assert ("cutover-containment-profiles", repr((5,))) in kinds


def test_cutover_check_flags_extra_target_keys(clock):
    source, stack = cutover_stack(clock)
    stack.target.put_row("profiles", {"member_id": 999, "name": "ghost",
                                      "score": 0})
    violations = cutover_check(stack.proxy)()
    assert any(v.constraint == "cutover-no-extras-profiles"
               and v.raw_key == (999,) for v in violations)


# -- search constraints ------------------------------------------------------

def search_world(clock):
    db = SqlDatabase("members", clock=clock)
    db.create_table(MEMBER_TABLE)
    relay = Relay()
    capture = capture_from_binlog(db, relay)
    service = PeopleSearchService(relay)
    for i in range(4):
        db.autocommit("member_profile",
                      {"member_id": i, "name": f"m{i}", "headline": "x",
                       "industry": "y"})
    capture.poll()
    service.catch_up()
    return db, relay, capture, service


def test_search_containment_tracks_the_index(clock):
    db, relay, capture, service = search_world(clock)
    constraint = search_containment(
        "search-keys", db, "member_profile", service.index,
        horizon=source_head(db))
    assert constraint.check() == []
    service.index.remove(2)
    [violation] = constraint.check()
    assert violation.raw_key == (2,)


# -- the Databus pipeline lineage --------------------------------------------

def test_pipeline_lineage_blames_the_relay_for_a_dropped_window(clock):
    db, relay, capture, service = search_world(clock)
    scn = binlog_key_scns(db, "member_profile")()[(2,)]
    relay.drop_window(scn)
    service.index.remove(2)
    lineage = sqlstore_pipeline_lineage(
        db, "member_profile", capture, relay, service.client,
        store_check=lambda key: key[0] in service.index,
        store_stage="indexer")
    assert lineage.stage_names() == [STAGE_COMMIT, STAGE_CAPTURE,
                                     STAGE_RELAY, STAGE_CONSUMER, "indexer"]
    violation = Violation("c", "missing-key", "search:member_profile",
                          repr((2,)), "present", "absent", raw_key=(2,))
    outcomes = {name: check(violation) for name, check in lineage.stages}
    assert outcomes[STAGE_COMMIT] is True
    assert outcomes[STAGE_CAPTURE] is True
    assert outcomes[STAGE_RELAY] is False    # dropped, not evicted
    assert outcomes["indexer"] is False      # downstream fallout


def test_pipeline_lineage_blames_the_indexer_for_a_skipped_update(clock):
    db, relay, capture, service = search_world(clock)
    service.index.remove(1)
    lineage = sqlstore_pipeline_lineage(
        db, "member_profile", capture, relay, service.client,
        store_check=lambda key: key[0] in service.index,
        store_stage="indexer")
    violation = Violation("c", "missing-key", "search:member_profile",
                          repr((1,)), "present", "absent", raw_key=(1,))
    outcomes = {name: check(violation) for name, check in lineage.stages}
    assert outcomes[STAGE_RELAY] is True
    assert outcomes[STAGE_CONSUMER] is True
    assert outcomes["indexer"] is False


# -- Voldemort probes --------------------------------------------------------

def voldemort_world(clock):
    disk = SimDisk(clock=clock, seed=3)
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                               clock=clock, disk=disk, seed=3)
    cluster.define_store(StoreDefinition(
        "store", replication_factor=2, required_reads=1, required_writes=2,
        engine_type="log-structured"))
    routed = RoutedStore(cluster, "store")
    routed.put(b"k1", Versioned.initial(b"v1", 0))
    routed.put(b"k2", Versioned.initial(b"v2", 0))
    return disk, cluster, routed


def test_replica_probe_reads_every_responsible_replica(clock):
    disk, cluster, routed = voldemort_world(clock)
    probe = voldemort_replica_values(cluster, routed, "store",
                                     keys=lambda: [b"k1", b"k2"])
    values = probe()
    assert set(values) == {b"k1", b"k2"}
    for by_replica in values.values():
        assert len(by_replica) == 2  # replication factor
        assert len(set(map(repr, by_replica.values()))) == 1


def test_replica_probe_reports_sentinels_for_unserved_keys(clock):
    disk, cluster, routed = voldemort_world(clock)
    victim = routed.replica_nodes(b"k1")[0]
    engine = cluster.server_for(victim).engine("store")
    offset, length = engine.record_span(b"k1")
    disk.flip_bit(cluster.node_name(victim), f"store/{engine.LOG_NAME}",
                  offset=offset + length - 1)
    probe = voldemort_replica_values(cluster, routed, "store",
                                     keys=lambda: [b"k1"])
    by_replica = probe()[b"k1"]
    assert UNREADABLE in by_replica.values()

    lineage = voldemort_replica_lineage(probe)
    violation = Violation("c", "replica-divergence", "voldemort:store",
                          repr(b"k1"), "agree", "diverge", raw_key=b"k1")
    outcomes = {name: check(violation) for name, check in lineage.stages}
    assert outcomes[STAGE_REPLICATION] is True
    assert outcomes[STAGE_STORAGE_MEDIA] is False


# -- Kafka audit-trail wiring ------------------------------------------------

def test_kafka_counts_and_lineage(clock, tmp_path):
    from repro.kafka.audit import AUDIT_TOPIC, AuditingProducer, AuditReconciler
    from repro.kafka.broker import KafkaCluster
    from repro.kafka.message import Message, MessageSet

    cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path),
                           clock=clock)
    cluster.create_topic("events", partitions=1)
    cluster.create_topic(AUDIT_TOPIC, partitions=1)
    producer = AuditingProducer(cluster, "app")
    producer.send("events", {"n": 1})
    producer.flush()
    producer.publish_monitoring_events()
    reconciler = AuditReconciler(cluster, ["events"])
    produced, consumed = kafka_counts(reconciler)
    assert produced() == consumed() == {("events", 0): 1}

    # a broker-side duplicate: produced < consumed for the bucket
    payload = cluster.broker_for("events", 0).fetch("events", 0, 0)
    from repro.kafka.message import iter_messages
    dup = next(iter(iter_messages(payload, 0))).message.payload
    cluster.broker_for("events", 0).produce(
        "events", 0, MessageSet([Message(dup)]))
    lineage = kafka_audit_lineage(reconciler)
    violation = Violation("c", "duplicated-messages", "kafka:events",
                          repr(("events", 0)), "1 messages", "2 messages",
                          raw_key=("events", 0))
    outcomes = {name: check(violation) for name, check in lineage.stages}
    assert outcomes[STAGE_PRODUCER] is True
    assert outcomes[STAGE_BROKER] is False
