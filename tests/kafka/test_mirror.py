"""Cross-datacenter mirroring and the Hadoop load pipeline (§V.D)."""

import pytest

from repro.common.clock import SimClock
from repro.hadoop import MiniHDFS
from repro.kafka import KafkaCluster, Producer
from repro.kafka.mirror import HadoopLoadJob, MirrorMaker


@pytest.fixture
def clusters(tmp_path):
    clock = SimClock()
    live = KafkaCluster(num_brokers=2, data_root=str(tmp_path / "live"),
                        clock=clock, partitions_per_topic=4)
    replica = KafkaCluster(num_brokers=2, data_root=str(tmp_path / "replica"),
                           clock=clock, partitions_per_topic=4)
    live.create_topic("activity")
    yield live, replica, clock
    live.shutdown()
    replica.shutdown()


def replica_payloads(replica, topic):
    from repro.kafka import SimpleConsumer
    consumer = SimpleConsumer(replica)
    out = []
    for tp in replica.topic_layout(topic):
        offset = 0
        while True:
            batch = consumer.fetch(topic, tp.partition, offset)
            if not batch:
                break
            out.extend(d.message.payload for d in batch)
            offset = batch[-1].next_offset
    return out


def test_mirror_copies_everything(clusters):
    live, replica, _ = clusters
    producer = Producer(live, batch_size=10)
    sent = [f"event-{i}".encode() for i in range(100)]
    for payload in sent:
        producer.send("activity", payload)
    producer.flush()
    mirror = MirrorMaker(live, replica, ["activity"])
    assert mirror.poll_once() == 100
    assert sorted(replica_payloads(replica, "activity")) == sorted(sent)


def test_mirror_is_incremental(clusters):
    live, replica, _ = clusters
    mirror = MirrorMaker(live, replica, ["activity"])
    producer = Producer(live, batch_size=1)
    producer.send("activity", b"first")
    assert mirror.poll_once() == 1
    assert mirror.poll_once() == 0
    producer.send("activity", b"second")
    assert mirror.poll_once() == 1
    assert mirror.messages_mirrored == 2


def test_load_job_writes_hdfs_files(clusters):
    live, replica, _ = clusters
    producer = Producer(live, batch_size=5)
    for i in range(40):
        producer.send("activity", f"e{i}".encode())
    producer.flush()
    MirrorMaker(live, replica, ["activity"]).poll_once()
    hdfs = MiniHDFS()
    job = HadoopLoadJob(replica, hdfs, ["activity"])
    written = job.run_once()
    assert written
    loaded = b"\n".join(hdfs.read(p) for p in written).split(b"\n")
    assert sorted(loaded) == sorted(f"e{i}".encode() for i in range(40))
    assert job.run_once() == []  # nothing new


def test_end_to_end_pipeline_no_loss(clusters):
    live, replica, _ = clusters
    hdfs = MiniHDFS()
    mirror = MirrorMaker(live, replica, ["activity"])
    job = HadoopLoadJob(replica, hdfs, ["activity"])
    producer = Producer(live, batch_size=7)
    total = 0
    for round_number in range(5):
        for i in range(30):
            producer.send("activity", f"r{round_number}-e{i}".encode())
            total += 1
        producer.flush()
        mirror.poll_once()
        job.run_once()
    assert job.messages_loaded == total


def test_mirror_preserves_cursor_reset_during_fetch(clusters):
    """An operator rewind landing while a fetch is in flight must win;
    the pass may not clobber it with its own stale next_offset."""
    live, replica, _ = clusters
    producer = Producer(live, batch_size=10)
    for i in range(20):
        producer.send("activity", f"event-{i}".encode())
    producer.flush()
    mirror = MirrorMaker(live, replica, ["activity"])
    mirror.poll_once()
    advanced = {tp for tp, off in mirror._offsets.items() if off}
    assert advanced

    orig_fetch = mirror._consumer.fetch

    def racing_fetch(topic, partition, offset):
        batch = orig_fetch(topic, partition, offset)
        if (topic, partition) in advanced:
            mirror._offsets[(topic, partition)] = 0  # rewind mid-fetch
        return batch

    mirror._consumer.fetch = racing_fetch
    for i in range(20):
        producer.send("activity", f"late-{i}".encode())
    producer.flush()
    mirror.poll_once()
    for tp in advanced:
        assert mirror._offsets[tp] == 0
