"""Broker crash-restart: acked survives, torn tails truncate, ticks flush."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ChecksumError
from repro.kafka.broker import KafkaCluster
from repro.kafka.log import PartitionLog, scan_valid_bytes
from repro.kafka.message import Message, MessageSet, iter_messages
from repro.simnet.disk import SimDisk


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def disk(clock):
    return SimDisk(clock=clock, seed=11)


def sim_log(disk, clock, node="broker-0", **kwargs):
    kwargs.setdefault("flush_interval_messages", 1)
    return PartitionLog("t-0", clock=clock, disk=disk.scope(node), **kwargs)


def payloads_in(log, offset=0):
    data = log.read(offset, 1 << 20)
    return [d.message.payload for d in iter_messages(data, offset)]


class TestScanValidBytes:
    def test_full_valid_set(self):
        data = MessageSet([Message(b"a"), Message(b"bb")]).encode()
        assert scan_valid_bytes(data) == len(data)

    def test_truncated_frame(self):
        data = MessageSet([Message(b"complete")]).encode()
        assert scan_valid_bytes(data + data[: len(data) // 2]) == len(data)

    def test_corrupt_crc(self):
        good = MessageSet([Message(b"good")]).encode()
        bad = bytearray(MessageSet([Message(b"bad!")]).encode())
        bad[-1] ^= 0xFF
        assert scan_valid_bytes(good + bytes(bad)) == len(good)


class TestPartitionLogRecovery:
    def test_acked_messages_survive_crash(self, disk, clock):
        log = sim_log(disk, clock)
        log.append(MessageSet([Message(b"acked-1")]))
        log.append(MessageSet([Message(b"acked-2")]))
        watermark = log.high_watermark
        disk.crash_node("broker-0")

        recovered = sim_log(disk, clock)
        assert recovered.high_watermark == watermark
        assert payloads_in(recovered) == [b"acked-1", b"acked-2"]

    def test_unflushed_tail_lost_cleanly(self, disk, clock):
        log = sim_log(disk, clock, flush_interval_messages=10)
        log.append(MessageSet([Message(b"durable")]))
        log.flush()
        log.append(MessageSet([Message(b"staged-only")]))  # never flushed
        disk.crash_node("broker-0")

        recovered = sim_log(disk, clock)
        assert payloads_in(recovered) == [b"durable"]
        assert recovered.torn_bytes_truncated == 0

    def test_torn_tail_truncated_on_recovery(self, disk, clock):
        log = sim_log(disk, clock)
        log.append(MessageSet([Message(b"acked")]))
        watermark = log.high_watermark
        log.fsync_on_flush = False  # simulate an OS-buffered broker
        log.append(MessageSet([Message(b"buffered-never-synced")]))
        disk.arm_torn_write("broker-0", keep_bytes=7)
        disk.crash_node("broker-0")

        recovered = sim_log(disk, clock)
        assert recovered.torn_bytes_truncated > 0
        assert recovered.high_watermark == watermark
        assert payloads_in(recovered) == [b"acked"]
        # recovery fsynced the truncation: a re-crash changes nothing
        disk.crash_node("broker-0")
        again = sim_log(disk, clock)
        assert payloads_in(again) == [b"acked"]
        assert again.torn_bytes_truncated == 0

    def test_bit_flip_detected_at_read(self, disk, clock):
        log = sim_log(disk, clock)
        log.append(MessageSet([Message(b"to-be-corrupted")]))
        segment = log._segments[0]
        disk.flip_bit("broker-0", segment.path, offset=segment.size - 1)
        data = log.read(0, 1 << 20)
        with pytest.raises(ChecksumError):
            list(iter_messages(data, 0))


class TestTimeBasedFlushTick:
    def test_append_alone_never_flushes_quiet_partition(self, disk, clock):
        log = sim_log(disk, clock, flush_interval_messages=100,
                      flush_interval_seconds=1.0)
        log.append(MessageSet([Message(b"lonely")]))
        clock.advance(60.0)
        # the satellite bug: without a tick, the staged tail stays
        # invisible no matter how much time passes
        assert log.high_watermark == 0
        assert log.maybe_flush() is True
        assert log.high_watermark > 0

    def test_broker_tick_flushes_by_time(self, clock, disk, tmp_path):
        cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path),
                               clock=clock, flush_interval_messages=100,
                               disk=disk)
        broker = cluster.brokers[0]
        broker.flush_interval_seconds = 0.5
        cluster.create_topic("events", partitions=1)
        broker.produce("events", 0, MessageSet([Message(b"m")]))
        assert cluster.tick() == 0  # threshold not reached yet
        clock.advance(1.0)
        assert cluster.tick() == 1
        assert broker.log("events", 0).high_watermark > 0


class TestBrokerRestart:
    def test_cluster_kill_restart_keeps_acked(self, clock, disk, tmp_path):
        cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path),
                               clock=clock, disk=disk)
        cluster.create_topic("orders", partitions=1)
        broker = cluster.brokers[0]
        offsets = []
        for i in range(5):
            offsets.append(
                broker.produce("orders", 0, MessageSet([Message(b"m%d" % i)])))
        watermark = broker.log("orders", 0).high_watermark
        disk.crash_node("broker-0")
        disk.restart_node("broker-0")
        broker.restart()

        log = broker.log("orders", 0)
        assert log.high_watermark == watermark
        data = log.read(0, 1 << 20)
        payloads = [d.message.payload for d in iter_messages(data, 0)]
        assert payloads == [b"m0", b"m1", b"m2", b"m3", b"m4"]
