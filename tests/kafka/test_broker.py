"""Brokers and cluster topology."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.kafka import KafkaCluster
from repro.kafka.message import Message, MessageSet


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=3, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=6)
    yield built
    built.shutdown()


def test_topic_partitions_spread_over_brokers(cluster):
    layout = cluster.create_topic("activity")
    assert len(layout) == 6
    brokers_used = {tp.broker_id for tp in layout}
    assert brokers_used == {0, 1, 2}


def test_duplicate_topic_rejected(cluster):
    cluster.create_topic("t")
    with pytest.raises(ConfigurationError):
        cluster.create_topic("t")


def test_unknown_topic_rejected(cluster):
    with pytest.raises(ConfigurationError):
        cluster.topic_layout("ghost")


def test_produce_fetch_through_broker(cluster):
    cluster.create_topic("t", partitions=1)
    broker = cluster.broker_for("t", 0)
    broker.produce("t", 0, MessageSet([Message(b"hello")]))
    data = broker.fetch("t", 0, 0)
    assert b"hello" in data
    assert broker.bytes_in > 0
    assert broker.bytes_out > 0


def test_brokers_register_in_zookeeper(cluster):
    session = cluster.zookeeper.connect()
    assert session.get_children("/brokers/ids") == ["0", "1", "2"]
    cluster.create_topic("t", partitions=3)
    assert len(session.get_children("/brokers/topics/t")) == 3


def test_broker_shutdown_removes_registration(cluster):
    session = cluster.zookeeper.connect()
    cluster.brokers[1].shutdown()
    assert session.get_children("/brokers/ids") == ["0", "2"]


def test_broker_does_not_host_other_partitions(cluster):
    cluster.create_topic("t", partitions=3)
    hosting = cluster.broker_for("t", 0)
    other = next(b for b in cluster.brokers.values() if b is not hosting)
    with pytest.raises(ConfigurationError):
        other.fetch("t", 0, 0)


def test_cluster_retention_sweep(tmp_path):
    clock = SimClock()
    cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path),
                           clock=clock, segment_bytes=100)
    cluster.create_topic("t", partitions=1)
    broker = cluster.broker_for("t", 0)
    for _ in range(10):
        broker.produce("t", 0, MessageSet([Message(bytes(40))]))
    clock.advance(100.0)
    assert cluster.run_retention(retention_seconds=10.0) > 0
    cluster.shutdown()


def test_create_partition_detects_concurrent_winner(cluster, tmp_path):
    """A second create landing while the first recovers its log from
    disk must make the loser close its log and fail, not silently
    replace the registered winner."""
    broker = next(iter(cluster.brokers.values()))
    orig_make = broker._make_log
    winner = {}

    def racing_make(directory):
        log = orig_make(directory)
        # a concurrent create_partition wins while this log recovers
        broker._make_log = orig_make
        winner["log"] = orig_make(str(tmp_path / "winner"))
        broker._logs[("races", 0)] = winner["log"]
        return log

    broker._make_log = racing_make
    with pytest.raises(ConfigurationError):
        broker.create_partition("races", 0)
    assert broker._logs[("races", 0)] is winner["log"]
