"""Producer batching/partitioning and SimpleConsumer/MessageStream."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.kafka import KafkaCluster, MessageStream, Producer, SimpleConsumer


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=2, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=4)
    built.create_topic("activity")
    yield built
    built.shutdown()


def all_payloads(cluster, topic):
    consumer = SimpleConsumer(cluster)
    out = []
    for tp in cluster.topic_layout(topic):
        offset = 0
        while True:
            batch = consumer.fetch(topic, tp.partition, offset)
            if not batch:
                break
            out.extend(d.message.payload for d in batch)
            offset = batch[-1].next_offset
    return out


def test_produce_consume_roundtrip(cluster):
    producer = Producer(cluster, batch_size=10)
    sent = [f"event-{i}".encode() for i in range(100)]
    for payload in sent:
        producer.send("activity", payload)
    producer.flush()
    assert sorted(all_payloads(cluster, "activity")) == sorted(sent)


def test_batching_reduces_publish_requests(cluster):
    small = Producer(cluster, batch_size=1, seed=1)
    for i in range(50):
        small.send("activity", b"x")
    small.flush()
    big = Producer(cluster, batch_size=50, seed=1)
    for i in range(50):
        big.send("activity", b"x")
    big.flush()
    assert big.publish_requests < small.publish_requests


def test_key_hash_partitioning_is_sticky(cluster):
    producer = Producer(cluster)
    partitions = {producer._choose_partition("activity", b"member-42")
                  for _ in range(20)}
    assert len(partitions) == 1


def test_random_partitioning_spreads(cluster):
    producer = Producer(cluster, seed=3)
    partitions = {producer._choose_partition("activity", None)
                  for _ in range(200)}
    assert len(partitions) == 4


def test_compressed_producer_roundtrip(cluster):
    producer = Producer(cluster, batch_size=20, compress=True)
    sent = [f"page_view member={i % 5} page=feed".encode() for i in range(100)]
    for payload in sent:
        producer.send("activity", payload)
    producer.flush()
    assert sorted(all_payloads(cluster, "activity")) == sorted(sent)


def test_compression_saves_bandwidth(cluster):
    """'In practice, we save about 2/3 of the network bandwidth with
    compression enabled.'"""
    payloads = [(b"page_view member=%d page=feed server=app-01 " % (i % 50)) * 3
                for i in range(600)]
    plain = Producer(cluster, batch_size=100, compress=False, seed=5)
    for p in payloads:
        plain.send("activity", p)
    plain.flush()
    gzip = Producer(cluster, batch_size=100, compress=True, seed=5)
    for p in payloads:
        gzip.send("activity", p)
    gzip.flush()
    saving = 1 - gzip.bytes_on_wire / plain.bytes_on_wire
    assert saving > 0.5  # the paper reports ~2/3


def test_message_stream_iterates_all(cluster):
    producer = Producer(cluster, batch_size=10, seed=7)
    for i in range(60):
        producer.send("activity", f"e{i}".encode())
    producer.flush()
    consumer = SimpleConsumer(cluster)
    assignments = [("activity", tp.partition)
                   for tp in cluster.topic_layout("activity")]
    stream = MessageStream(consumer, assignments,
                           {a: 0 for a in assignments})
    got = [m.payload for m in stream]
    assert sorted(got) == sorted(f"e{i}".encode() for i in range(60))


def test_stream_rewind_reconsumes(cluster):
    producer = Producer(cluster, batch_size=1, seed=7)
    for i in range(10):
        producer.send("activity", f"e{i}".encode(), key=b"fixed")
    partition = Producer(cluster)._choose_partition("activity", b"fixed")
    consumer = SimpleConsumer(cluster)
    stream = MessageStream(consumer, [("activity", partition)],
                           {("activity", partition): 0})
    first_pass = [m.payload for m in stream.poll()]
    assert len(first_pass) == 10
    assert stream.poll() == []
    stream.seek("activity", partition, 0)
    second_pass = [m.payload for m in stream.poll()]
    assert second_pass == first_pass  # deliberate re-consumption


def test_stream_seek_validates_ownership(cluster):
    stream = MessageStream(SimpleConsumer(cluster), [("activity", 0)],
                           {("activity", 0): 0})
    with pytest.raises(ConfigurationError):
        stream.seek("activity", 3, 0)


def test_stream_recovers_from_retention_gap(tmp_path):
    clock = SimClock()
    cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path),
                           clock=clock, partitions_per_topic=1,
                           segment_bytes=100)
    cluster.create_topic("t")
    producer = Producer(cluster, batch_size=1)
    for i in range(10):
        producer.send("t", bytes(40))
    clock.advance(100.0)
    cluster.run_retention(10.0)
    producer.send("t", b"fresh")
    stream = MessageStream(SimpleConsumer(cluster), [("t", 0)], {("t", 0): 0})
    got = [m.payload for m in stream]  # drains to the head
    assert got[-1] == b"fresh"  # jumped to the oldest retained offset
    cluster.shutdown()


def test_stream_lag(cluster):
    producer = Producer(cluster, batch_size=1, seed=7)
    assignments = [("activity", tp.partition)
                   for tp in cluster.topic_layout("activity")]
    stream = MessageStream(SimpleConsumer(cluster), assignments,
                           {a: 0 for a in assignments})
    assert stream.lag() == 0
    producer.send("activity", b"x" * 100)
    producer.flush()
    assert stream.lag() > 100
    stream.poll()
    assert stream.lag() == 0


def test_batch_size_validation(cluster):
    with pytest.raises(ConfigurationError):
        Producer(cluster, batch_size=0)
