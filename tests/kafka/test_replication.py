"""Intra-cluster replication (the paper's §V.D future work):
leader/follower logs, ISR, committed offsets, leader election."""

import json

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    ConfigurationError,
    NodeUnavailableError,
    OffsetOutOfRangeError,
)
from repro.kafka import KafkaCluster
from repro.kafka.message import Message, MessageSet, iter_messages
from repro.kafka.replication import (
    NotEnoughReplicasError,
    ReplicatedTopic,
)


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=3, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=2)
    yield built
    built.shutdown()


@pytest.fixture
def topic(cluster):
    return ReplicatedTopic(cluster, "activity", partitions=2,
                           replication_factor=3, min_insync_replicas=2)


def produce(topic, partition, payloads):
    return topic.produce(partition,
                         MessageSet([Message(p) for p in payloads]))


def fetch_payloads(topic, partition, offset=0):
    out = []
    while True:
        data = topic.fetch(partition, offset)
        if not data:
            return out
        decoded = list(iter_messages(data, offset))
        out.extend(d.message.payload for d in decoded)
        offset = decoded[-1].next_offset


def test_replication_factor_validation(cluster):
    with pytest.raises(ConfigurationError):
        ReplicatedTopic(cluster, "t", 1, replication_factor=4)


def test_messages_invisible_until_replicated(topic):
    produce(topic, 0, [b"m1"])
    # leader has it, but followers have not pulled: committed stays 0
    # only after replication does the consumer see it...
    # (ISR lag is 0-tolerance by default, so followers fell out of ISR
    # at produce time and committed tracks the remaining ISR = leader)
    topic.poll_replication()
    assert fetch_payloads(topic, 0) == [b"m1"]


def test_followers_hold_identical_bytes(topic, cluster):
    produce(topic, 0, [b"a", b"b"])
    produce(topic, 0, [b"c"])
    topic.poll_replication()
    state = topic.partitions[0]
    leader_log = cluster.brokers[state.leader_id].log("activity", 0)
    leader_bytes = leader_log.read(0, 1 << 20)
    for broker_id in state.replica_ids:
        if broker_id == state.leader_id:
            continue
        follower_log = cluster.brokers[broker_id].log("activity", 0)
        assert follower_log.read(0, 1 << 20) == leader_bytes


def test_isr_tracks_lag(topic, cluster):
    state = topic.partitions[0]
    assert state.isr == set(state.replica_ids)
    produce(topic, 0, [b"x"])
    # followers lag until they pull
    state.poll_replication()
    assert state.isr == set(state.replica_ids)
    # kill a follower: it drops out of the ISR on the next poll
    follower = next(b for b in state.replica_ids if b != state.leader_id)
    cluster.brokers[follower].shutdown()
    produce(topic, 0, [b"y"])
    state.poll_replication()
    assert follower not in state.isr


def test_commit_requires_full_isr(topic, cluster):
    state = topic.partitions[0]
    produce(topic, 0, [b"first"])
    topic.poll_replication()
    committed_before = state.committed_offset
    # one follower stops pulling (still alive, so it stays lagging and
    # is dropped from the ISR by the lag rule)
    produce(topic, 0, [b"second"])
    # no replication poll: committed must not advance past ISR coverage
    assert state.committed_offset == committed_before
    with pytest.raises(OffsetOutOfRangeError):
        topic.fetch(0, state.committed_offset + 1)


def test_min_insync_replicas_blocks_writes(topic, cluster):
    state = topic.partitions[0]
    followers = [b for b in state.replica_ids if b != state.leader_id]
    for follower in followers:
        cluster.brokers[follower].shutdown()
    topic.poll_replication()
    assert state.isr == {state.leader_id}
    with pytest.raises(NotEnoughReplicasError):
        produce(topic, 0, [b"unsafe"])


def test_leader_failure_elects_isr_member(topic, cluster):
    produce(topic, 0, [b"durable-1", b"durable-2"])
    topic.poll_replication()
    state = topic.partitions[0]
    old_leader = state.leader_id
    cluster.brokers[old_leader].shutdown()
    with pytest.raises(NodeUnavailableError):
        produce(topic, 0, [b"while-down"])
    moved = topic.handle_failures()
    assert 0 in moved
    assert state.leader_id != old_leader
    assert state.leader_id in state.isr
    # no committed message lost
    assert fetch_payloads(topic, 0) == [b"durable-1", b"durable-2"]
    # and writes continue on the new leader (ISR shrank to 2: ok)
    produce(topic, 0, [b"after-failover"])
    topic.poll_replication()
    assert fetch_payloads(topic, 0)[-1] == b"after-failover"


def test_no_live_isr_member_raises(topic, cluster):
    state = topic.partitions[0]
    for broker_id in state.replica_ids:
        cluster.brokers[broker_id].shutdown()
    with pytest.raises(NotEnoughReplicasError):
        state.handle_failures()


def test_leadership_published_to_zookeeper(topic, cluster):
    session = cluster.zookeeper.connect()
    data, _ = session.get("/replicated-topics/activity/0")
    record = json.loads(data)
    state = topic.partitions[0]
    assert record["leader"] == state.leader_id
    assert set(record["isr"]) == state.isr
    assert record["replicas"] == state.replica_ids
    # failover updates the registry
    cluster.brokers[state.leader_id].shutdown()
    topic.handle_failures()
    data, _ = session.get("/replicated-topics/activity/0")
    assert json.loads(data)["leader"] == state.leader_id


def test_leaders_spread_over_brokers(cluster):
    topic = ReplicatedTopic(cluster, "spread", partitions=6,
                            replication_factor=2)
    leaders = set(topic.leaders().values())
    assert len(leaders) == 3  # round-robin over 3 brokers


def test_recovered_follower_catches_up_and_rejoins_isr(topic, cluster):
    state = topic.partitions[0]
    follower = next(b for b in state.replica_ids if b != state.leader_id)
    cluster.brokers[follower].shutdown()
    produce(topic, 0, [b"while-away-1", b"while-away-2"])
    topic.poll_replication()
    assert follower not in state.isr
    cluster.brokers[follower].register()
    topic.poll_replication()
    assert follower in state.isr
    follower_log = cluster.brokers[follower].log("activity", 0)
    leader_log = cluster.brokers[state.leader_id].log("activity", 0)
    assert follower_log.high_watermark == leader_log.high_watermark
