"""Consumer groups: ZK coordination, rebalancing, delivery models."""

import pytest

from repro.common.clock import SimClock
from repro.kafka import KafkaCluster, Producer
from repro.kafka.consumer import BrokerAckTracker, ConsumerGroupMember


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=2, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=8)
    built.create_topic("activity")
    yield built
    built.shutdown()


def produce(cluster, count, prefix="e"):
    producer = Producer(cluster, batch_size=10, seed=11)
    for i in range(count):
        producer.send("activity", f"{prefix}{i}".encode())
    producer.flush()


def drain(member, rounds=10):
    got = []
    for _ in range(rounds):
        batch = member.poll()
        if not batch:
            break
        got.extend(m.payload for m in batch)
    return got


def test_single_member_gets_all_partitions(cluster):
    member = ConsumerGroupMember(cluster, "g1", "c1", ["activity"])
    assignments = member.rebalance()
    assert len(assignments) == 8
    produce(cluster, 40)
    assert len(drain(member)) == 40
    member.close()


def test_group_divides_partitions_without_overlap(cluster):
    a = ConsumerGroupMember(cluster, "g1", "c-a", ["activity"])
    b = ConsumerGroupMember(cluster, "g1", "c-b", ["activity"])
    a.poll()
    b.poll()
    set_a = set(a.stream.assignments)
    set_b = set(b.stream.assignments)
    assert not set_a & set_b
    assert len(set_a | set_b) == 8
    a.close()
    b.close()


def test_point_to_point_each_message_once(cluster):
    a = ConsumerGroupMember(cluster, "g1", "c-a", ["activity"])
    b = ConsumerGroupMember(cluster, "g1", "c-b", ["activity"])
    a.poll()
    b.poll()
    produce(cluster, 80)
    got_a = drain(a)
    got_b = drain(b)
    assert len(got_a) + len(got_b) == 80
    assert not set(got_a) & set(got_b)
    assert got_a and got_b  # both did work
    a.close()
    b.close()


def test_pub_sub_each_group_gets_full_copy(cluster):
    produce(cluster, 30)
    g1 = ConsumerGroupMember(cluster, "g1", "c1", ["activity"])
    g2 = ConsumerGroupMember(cluster, "g2", "c1", ["activity"])
    assert len(drain(g1)) == 30
    assert len(drain(g2)) == 30
    g1.close()
    g2.close()


def test_member_join_triggers_rebalance(cluster):
    a = ConsumerGroupMember(cluster, "g1", "c-a", ["activity"])
    a.poll()
    assert len(a.stream.assignments) == 8
    b = ConsumerGroupMember(cluster, "g1", "c-b", ["activity"])
    # a's watch fired; next polls shuffle ownership (a releases first)
    a.poll()
    b.poll()
    a.poll()
    assert len(a.stream.assignments) == 4
    assert len(b.stream.assignments) == 4
    a.close()
    b.close()


def test_member_departure_triggers_takeover(cluster):
    a = ConsumerGroupMember(cluster, "g1", "c-a", ["activity"])
    b = ConsumerGroupMember(cluster, "g1", "c-b", ["activity"])
    a.poll()
    b.poll()
    b.close()
    produce(cluster, 40)
    got = drain(a)
    assert len(a.stream.assignments) == 8
    assert len(got) == 40
    a.close()


def test_offsets_survive_member_restart(cluster):
    produce(cluster, 30)
    member = ConsumerGroupMember(cluster, "g1", "c1", ["activity"])
    assert len(drain(member)) == 30
    member.close(commit=True)
    produce(cluster, 10, prefix="late")
    restarted = ConsumerGroupMember(cluster, "g1", "c1", ["activity"])
    got = drain(restarted)
    assert len(got) == 10  # only the new messages
    assert all(p.startswith(b"late") for p in got)
    restarted.close()


def test_no_coordination_across_groups(cluster):
    """Different groups never contend for ownership znodes."""
    a = ConsumerGroupMember(cluster, "g1", "c1", ["activity"])
    b = ConsumerGroupMember(cluster, "g2", "c1", ["activity"])
    a.poll()
    b.poll()
    assert len(a.stream.assignments) == 8
    assert len(b.stream.assignments) == 8
    a.close()
    b.close()


def test_over_partitioning_limits_idle_consumers(cluster):
    """More partitions than consumers => every consumer works; more
    consumers than partitions => some idle (§V.C load balancing)."""
    members = [ConsumerGroupMember(cluster, "g1", f"c{i}", ["activity"])
               for i in range(3)]
    for _ in range(4):
        for member in members:
            member.poll()
    sizes = sorted(len(m.stream.assignments) for m in members)
    assert sizes == [2, 3, 3]
    for member in members:
        member.close()


def test_broker_ack_tracker_ablation():
    """Broker-held state grows with messages; consumer-held offsets
    are one integer per (consumer, partition)."""
    tracker = BrokerAckTracker()
    for offset in range(1000):
        tracker.deliver("c1", "t", 0, offset)
    assert tracker.total_state_entries() == 1000
    for offset in range(0, 1000, 2):
        tracker.acknowledge("c1", "t", 0, offset)
    assert tracker.outstanding("c1", "t", 0) == 500
    # the Kafka equivalent is a single integer — compare entry counts
    kafka_equivalent_entries = 1
    assert tracker.total_state_entries() > 100 * kafka_equivalent_entries
