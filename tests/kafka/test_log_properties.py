"""Property-based tests of the partition log's core invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import SimClock
from repro.kafka.log import PartitionLog
from repro.kafka.message import Message, MessageSet, iter_messages


def drain(log, start=0):
    """Read everything flushed, following next_offsets."""
    out = []
    offset = start
    while offset < log.high_watermark:
        decoded = list(iter_messages(log.read(offset), offset))
        if not decoded:
            break
        out.extend(d.message.payload for d in decoded)
        offset = decoded[-1].next_offset
    return out, offset


message_sets = st.lists(
    st.lists(st.binary(min_size=0, max_size=120), min_size=1, max_size=5),
    min_size=1, max_size=20)


@settings(max_examples=40, deadline=None)
@given(message_sets, st.integers(64, 512))
def test_consume_equals_produce(tmp_path_factory, sets, segment_bytes):
    """Whatever is appended and flushed is consumed, once, in order."""
    directory = tmp_path_factory.mktemp("log")
    log = PartitionLog(str(directory / "p"), segment_bytes=segment_bytes,
                       clock=SimClock())
    sent = []
    for payloads in sets:
        log.append(MessageSet([Message(p) for p in payloads]))
        sent.extend(payloads)
    log.flush()
    got, end = drain(log)
    assert got == sent
    assert end == log.high_watermark
    log.close()


@settings(max_examples=25, deadline=None)
@given(message_sets)
def test_reopen_preserves_log(tmp_path_factory, sets):
    directory = tmp_path_factory.mktemp("log")
    path = str(directory / "p")
    log = PartitionLog(path, segment_bytes=256, clock=SimClock())
    sent = []
    for payloads in sets:
        log.append(MessageSet([Message(p) for p in payloads]))
        sent.extend(payloads)
    log.flush()
    end = log.high_watermark
    log.close()
    reopened = PartitionLog(path, segment_bytes=256, clock=SimClock())
    got, _ = drain(reopened)
    assert got == sent
    assert reopened.high_watermark == end
    reopened.close()


@settings(max_examples=25, deadline=None)
@given(message_sets, st.integers(0, 10))
def test_offsets_are_strictly_increasing_and_dense(tmp_path_factory, sets, _):
    directory = tmp_path_factory.mktemp("log")
    log = PartitionLog(str(directory / "p"), clock=SimClock())
    expected_offset = 0
    for payloads in sets:
        message_set = MessageSet([Message(p) for p in payloads])
        first = log.append(message_set)
        assert first == expected_offset
        expected_offset += message_set.wire_size
    assert log.log_end_offset == expected_offset
    log.close()


@settings(max_examples=20, deadline=None)
@given(message_sets)
def test_rewind_replays_identical_prefix(tmp_path_factory, sets):
    directory = tmp_path_factory.mktemp("log")
    log = PartitionLog(str(directory / "p"), clock=SimClock())
    for payloads in sets:
        log.append(MessageSet([Message(p) for p in payloads]))
    log.flush()
    first_pass, _ = drain(log)
    second_pass, _ = drain(log)  # "rewind" = read from 0 again
    assert first_pass == second_pass
    log.close()
