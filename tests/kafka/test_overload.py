"""Broker admission control, producer backpressure, and bulk-class
replication shedding."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    BackpressureError,
    ConfigurationError,
    ServerOverloadedError,
)
from repro.common.overload import PRIORITY_LIVE
from repro.kafka import KafkaCluster, Producer
from repro.kafka.message import Message, MessageSet
from repro.kafka.replication import ReplicatedTopic


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=3, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=2,
                         admission_rate=10.0, admission_burst=10.0)
    yield built
    built.shutdown()


def one_message(payload=b"m"):
    return MessageSet([Message(payload)])


def drain(admission, tokens_left=0.0):
    while admission.bucket.available > tokens_left:
        assert admission.try_admit(PRIORITY_LIVE)


def broker_of(cluster, topic, partition=0):
    return cluster.broker_for(topic, partition)


# -- broker admission -----------------------------------------------------


def test_broker_sheds_produce_when_bucket_drains(cluster):
    cluster.create_topic("activity")
    broker = broker_of(cluster, "activity")
    drain(broker.admission)
    with pytest.raises(ServerOverloadedError) as exc_info:
        broker.produce("activity", 0, one_message())
    assert exc_info.value.retry_after > 0
    cluster.clock.advance(1.0)   # 10 tokens back at rate 10/s
    assert broker.produce("activity", 0, one_message()) >= 0


def test_consumer_fetches_outrank_produces(cluster):
    # 1 token left: below the write floor (0.15 * 10 = 1.5), enough
    # for a live-class fetch
    cluster.create_topic("activity")
    broker = broker_of(cluster, "activity")
    broker.produce("activity", 0, one_message())
    drain(broker.admission, tokens_left=1.0)
    with pytest.raises(ServerOverloadedError):
        broker.produce("activity", 0, one_message())
    assert broker.fetch("activity", 0, 0)   # the read still serves


def test_admission_disabled_by_default(tmp_path):
    cluster = KafkaCluster(num_brokers=1, data_root=str(tmp_path / "plain"),
                           clock=SimClock())
    assert cluster.brokers[0].admission is None
    cluster.shutdown()


# -- producer backpressure ------------------------------------------------


def test_producer_max_pending_validation(cluster):
    with pytest.raises(ConfigurationError):
        Producer(cluster, batch_size=10, max_pending=5)


def test_producer_backpressure_when_broker_sheds(cluster):
    cluster.create_topic("activity", partitions=1)
    broker = broker_of(cluster, "activity")
    producer = Producer(cluster, batch_size=4, max_pending=4)
    drain(broker.admission)
    # the flush at batch_size hits the shedding broker: the batch is
    # requeued (nothing dropped) and the shed surfaces
    with pytest.raises(ServerOverloadedError):
        for i in range(4):
            producer.send("activity", b"m%d" % i, key=b"k")
    assert producer.pending == 4
    # the bound now refuses further buffering instead of growing
    with pytest.raises(BackpressureError):
        producer.send("activity", b"overflow", key=b"k")
    assert producer.metrics.counters["produce.backpressure"].value == 1
    # once the broker stops shedding, the parked batch drains
    cluster.clock.advance(1.0)
    producer.flush()
    assert producer.pending == 0
    assert producer.messages_acked == 4


def test_producer_unbounded_without_max_pending(cluster):
    cluster.create_topic("activity", partitions=1)
    broker = broker_of(cluster, "activity")
    producer = Producer(cluster, batch_size=100)
    drain(broker.admission)
    for i in range(50):
        producer.send("activity", b"m%d" % i, key=b"k")
    assert producer.pending == 50    # no bound, no error — by choice


# -- replication under pressure -------------------------------------------


def test_replication_catchup_is_bulk_class(cluster):
    topic = ReplicatedTopic(cluster, "activity", partitions=1,
                            replication_factor=3, min_insync_replicas=1)
    partition = topic.partitions[0]
    leader = cluster.brokers[partition.leader_id]
    topic.produce(0, one_message(b"committed"))
    topic.poll_replication()
    followers = [r for r in partition.replica_ids
                 if r != partition.leader_id]
    synced_end = partition._replicas[followers[0]].log_end_offset

    topic.produce(0, one_message(b"new"))
    # 2 tokens left: below the bulk floor (0.4 * 10 = 4) — catch-up
    # reads shed, the follower stays lagged, and no error surfaces
    drain(leader.admission, tokens_left=2.0)
    topic.poll_replication()
    assert partition._replicas[followers[0]].log_end_offset == synced_end
    # live traffic kept its tokens through the shed
    assert leader.fetch("activity", 0, 0)
    # the next poll after refill completes catch-up
    cluster.clock.advance(1.0)
    topic.poll_replication()
    assert partition._replicas[followers[0]].log_end_offset > synced_end
