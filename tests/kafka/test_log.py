"""Partition logs: segments, flush visibility, retention, recovery."""

import os

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError, OffsetOutOfRangeError
from repro.kafka.log import MessageIdIndexedLog, PartitionLog
from repro.kafka.message import Message, MessageSet, iter_messages


def make_log(tmp_path, **kwargs):
    kwargs.setdefault("clock", SimClock())
    return PartitionLog(str(tmp_path / "p0"), **kwargs)


def payloads_in(log, offset=0, max_bytes=1 << 20):
    data = log.read(offset, max_bytes)
    return [d.message.payload for d in iter_messages(data, offset)]


def test_append_assigns_byte_offsets(tmp_path):
    log = make_log(tmp_path)
    first = log.append(MessageSet([Message(b"aaa")]))
    second = log.append(MessageSet([Message(b"bbbb")]))
    assert first == 0
    assert second == Message(b"aaa").wire_size
    log.close()


def test_read_returns_appended_messages(tmp_path):
    log = make_log(tmp_path)
    log.append(MessageSet([Message(b"one"), Message(b"two")]))
    assert payloads_in(log) == [b"one", b"two"]
    log.close()


def test_flush_gates_visibility(tmp_path):
    log = make_log(tmp_path, flush_interval_messages=10)
    log.append(MessageSet([Message(b"pending")]))
    assert log.read(0) == b""  # not flushed yet
    assert log.high_watermark == 0
    log.flush()
    assert payloads_in(log) == [b"pending"]
    log.close()


def test_flush_by_message_count(tmp_path):
    log = make_log(tmp_path, flush_interval_messages=3)
    for i in range(2):
        log.append(MessageSet([Message(b"x")]))
    assert log.high_watermark == 0
    log.append(MessageSet([Message(b"x")]))
    assert log.high_watermark == log.log_end_offset
    log.close()


def test_flush_by_elapsed_time(tmp_path):
    clock = SimClock()
    log = make_log(tmp_path, clock=clock, flush_interval_messages=1000,
                   flush_interval_seconds=5.0)
    log.append(MessageSet([Message(b"early")]))
    assert log.high_watermark == 0
    clock.advance(6.0)
    log.append(MessageSet([Message(b"later")]))
    assert log.high_watermark == log.log_end_offset
    log.close()


def test_segments_roll_at_size(tmp_path):
    log = make_log(tmp_path, segment_bytes=200)
    for i in range(20):
        log.append(MessageSet([Message(bytes(30))]))
    assert len(log.segment_base_offsets()) > 1
    bases = log.segment_base_offsets()
    assert bases == sorted(bases)
    log.close()


def test_read_across_segments(tmp_path):
    log = make_log(tmp_path, segment_bytes=100)
    sent = []
    for i in range(30):
        payload = f"m{i:02d}".encode()
        sent.append(payload)
        log.append(MessageSet([Message(payload)]))
    # read the whole log by following next_offsets
    got = []
    offset = 0
    while offset < log.high_watermark:
        chunk = log.read(offset, max_bytes=64)
        decoded = list(iter_messages(chunk, offset))
        if not decoded:
            break
        got.extend(d.message.payload for d in decoded)
        offset = decoded[-1].next_offset
    assert got == sent
    log.close()


def test_offset_out_of_range(tmp_path):
    log = make_log(tmp_path)
    log.append(MessageSet([Message(b"x")]))
    with pytest.raises(OffsetOutOfRangeError):
        log.read(9999)
    with pytest.raises(ConfigurationError):
        log.read(0, max_bytes=0)
    log.close()


def test_fetch_at_watermark_is_empty(tmp_path):
    log = make_log(tmp_path)
    log.append(MessageSet([Message(b"x")]))
    assert log.read(log.high_watermark) == b""
    log.close()


def test_retention_deletes_old_segments(tmp_path):
    clock = SimClock()
    log = make_log(tmp_path, clock=clock, segment_bytes=100)
    for i in range(10):
        log.append(MessageSet([Message(bytes(40))]))
    clock.advance(100.0)
    old_oldest = log.oldest_offset
    deleted = log.delete_old_segments(retention_seconds=50.0)
    assert deleted > 0
    assert log.oldest_offset > old_oldest
    with pytest.raises(OffsetOutOfRangeError):
        log.read(0)
    # newest data still readable
    assert log.read(log.oldest_offset) != b""
    log.close()


def test_retention_spares_recent_and_active(tmp_path):
    clock = SimClock()
    log = make_log(tmp_path, clock=clock, segment_bytes=100)
    log.append(MessageSet([Message(bytes(40))]))
    assert log.delete_old_segments(retention_seconds=50.0) == 0
    log.close()


def test_recovery_after_reopen(tmp_path):
    clock = SimClock()
    path = tmp_path / "p0"
    log = PartitionLog(str(path), clock=clock, segment_bytes=150)
    sent = []
    for i in range(12):
        payload = f"m{i}".encode()
        sent.append(payload)
        log.append(MessageSet([Message(payload)]))
    end = log.high_watermark
    log.close()
    reopened = PartitionLog(str(path), clock=clock, segment_bytes=150)
    assert reopened.high_watermark == end
    got = []
    offset = 0
    while offset < reopened.high_watermark:
        decoded = list(iter_messages(reopened.read(offset), offset))
        got.extend(d.message.payload for d in decoded)
        offset = decoded[-1].next_offset
    assert got == sent
    # appends continue at the right offset
    assert reopened.append(MessageSet([Message(b"new")])) == end
    reopened.close()


def test_no_auxiliary_index_files(tmp_path):
    """The design point: offsets are addresses, no id index on disk."""
    log = make_log(tmp_path)
    for i in range(50):
        log.append(MessageSet([Message(b"x" * 20)]))
    files = os.listdir(log.directory)
    assert all(f.endswith(".kafka") for f in files)
    log.close()


def test_message_id_index_ablation(tmp_path):
    indexed = MessageIdIndexedLog(str(tmp_path / "indexed"), clock=SimClock())
    ids = []
    for i in range(100):
        ids.extend(indexed.append(MessageSet([Message(f"m{i}".encode())])))
    assert ids == list(range(100))
    assert indexed.index_entries() == 100  # O(messages) memory
    data = indexed.read_by_id(42)
    first = next(iter_messages(data, 0))
    assert first.message.payload == b"m42"
    with pytest.raises(OffsetOutOfRangeError):
        indexed.read_by_id(9999)
    indexed.close()


def test_empty_message_set_rejected(tmp_path):
    log = make_log(tmp_path)
    with pytest.raises(ConfigurationError):
        log.append(MessageSet([]))
    log.close()


def test_flush_keeps_concurrent_append_pending(tmp_path):
    """Bytes appended while the flush fsync is in flight are neither
    written nor durable; that flush must not expose or ack them."""
    log = make_log(tmp_path, flush_interval_messages=10)
    log.append(MessageSet([Message(b"first")]))
    handle = log._active_file
    orig_fsync = handle.fsync

    def racing_fsync():
        orig_fsync()
        log.append(MessageSet([Message(b"late")]))  # lands mid-fsync

    handle.fsync = racing_fsync
    log.flush()
    handle.fsync = orig_fsync

    assert payloads_in(log) == [b"first"]
    assert log._pending  # the late append is still buffered
    assert log.high_watermark == log.log_end_offset - len(log._pending)

    log.flush()
    assert payloads_in(log) == [b"first", b"late"]
    assert log.high_watermark == log.log_end_offset
    log.close()
