"""Message framing, sets, compression, offset arithmetic."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ChecksumError
from repro.kafka.message import (
    ATTR_GZIP,
    FRAME_OVERHEAD,
    Message,
    MessageSet,
    iter_messages,
)


def test_encode_decode_single():
    message = Message(b"test msg str")
    decoded = list(iter_messages(message.encode()))
    assert len(decoded) == 1
    assert decoded[0].message.payload == b"test msg str"
    assert decoded[0].next_offset == message.wire_size


def test_next_offset_is_cumulative_length():
    """'To compute the id of the next message, we have to add the
    length of the current message to its id.'"""
    messages = [Message(b"a"), Message(b"bb"), Message(b"ccc")]
    data = MessageSet(messages).encode()
    decoded = list(iter_messages(data, base_offset=100))
    expected = 100
    for original, got in zip(messages, decoded):
        expected += original.wire_size
        assert got.next_offset == expected


def test_partial_tail_ignored():
    data = MessageSet([Message(b"whole")]).encode()
    truncated = data + Message(b"partial").encode()[:-3]
    decoded = list(iter_messages(truncated))
    assert [d.message.payload for d in decoded] == [b"whole"]


def test_crc_corruption_detected():
    data = bytearray(Message(b"payload-bytes").encode())
    data[-1] ^= 0xFF
    with pytest.raises(ChecksumError):
        list(iter_messages(bytes(data)))


def test_compressed_set_roundtrip():
    originals = [Message(f"event-{i}".encode()) for i in range(50)]
    compressed = MessageSet.compressed(originals)
    assert len(compressed) == 1
    assert compressed.messages[0].attributes == ATTR_GZIP
    decoded = list(iter_messages(compressed.encode()))
    assert [d.message.payload for d in decoded] == \
        [m.payload for m in originals]


def test_compressed_messages_share_wrapper_next_offset():
    originals = [Message(b"a"), Message(b"b")]
    compressed = MessageSet.compressed(originals)
    wrapper_size = compressed.wire_size
    decoded = list(iter_messages(compressed.encode(), base_offset=10))
    assert all(d.next_offset == 10 + wrapper_size for d in decoded)


def test_compression_shrinks_redundant_data():
    originals = [Message(b"page_view member=123 page=feed " * 4)
                 for _ in range(100)]
    plain = MessageSet(originals)
    compressed = MessageSet.compressed(originals)
    assert compressed.wire_size < plain.wire_size / 2


def test_wire_size_accounts_overhead():
    assert Message(b"xyz").wire_size == FRAME_OVERHEAD + 3
    assert len(Message(b"xyz").encode()) == Message(b"xyz").wire_size


@given(st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=30))
def test_roundtrip_property(payloads):
    data = MessageSet([Message(p) for p in payloads]).encode()
    decoded = [d.message.payload for d in iter_messages(data)]
    assert decoded == payloads


@given(st.lists(st.binary(min_size=1, max_size=100), min_size=1, max_size=20))
def test_compression_roundtrip_property(payloads):
    compressed = MessageSet.compressed([Message(p) for p in payloads])
    decoded = [d.message.payload for d in iter_messages(compressed.encode())]
    assert decoded == payloads
