"""EXP-K6: the audit pipeline detects loss (and confirms completeness)."""

import pytest

from repro.common.clock import SimClock
from repro.kafka import KafkaCluster
from repro.kafka.audit import AUDIT_TOPIC, AuditingProducer, AuditReconciler


@pytest.fixture
def setup(tmp_path):
    clock = SimClock()
    cluster = KafkaCluster(num_brokers=2, data_root=str(tmp_path),
                           clock=clock, partitions_per_topic=4)
    cluster.create_topic("activity")
    cluster.create_topic(AUDIT_TOPIC, partitions=1)
    yield cluster, clock
    cluster.shutdown()


def test_counts_match_when_nothing_lost(setup):
    cluster, clock = setup
    producers = [AuditingProducer(cluster, f"app-{i:02d}", clock=clock)
                 for i in range(3)]
    for tick in range(50):
        clock.advance(1.0)
        for producer in producers:
            producer.send("activity", {"event": "page_view", "n": tick})
    for producer in producers:
        producer.flush()
        producer.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.complete
    assert sum(report.produced.values()) == 150
    assert report.missing() == {}


def test_windows_aggregate_across_producers(setup):
    cluster, clock = setup
    a = AuditingProducer(cluster, "app-a", window_seconds=10.0, clock=clock)
    b = AuditingProducer(cluster, "app-b", window_seconds=10.0, clock=clock)
    a.send("activity", {"x": 1})
    b.send("activity", {"x": 2})
    clock.advance(15.0)
    a.send("activity", {"x": 3})
    a.flush()
    b.flush()
    a.publish_monitoring_events()
    b.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.produced[("activity", 0)] == 2
    assert report.produced[("activity", 1)] == 1
    assert report.complete


def test_loss_detected(setup):
    """Simulate loss: monitoring says N were produced, but some data
    messages never reached the cluster."""
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a", clock=clock)
    for i in range(10):
        producer.send("activity", {"i": i})
    producer.flush()
    # claim 3 more than were actually published
    producer._counts[("activity", 0)] += 3
    producer.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert not report.complete
    assert report.missing() == {("activity", 0): 3}


def test_default_clock_is_the_cluster_clock(setup):
    """No hidden wall clock: windows must bucket on the same
    deterministic time source as everything else in a simulation."""
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a")
    assert producer.clock is cluster.clock is clock
    clock.advance(25.0)
    producer.send("activity", {"x": 1})
    producer.flush()
    producer.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.produced == {("activity", 2): 1}  # window 25//10


def test_producer_crash_loses_unflushed_batch_and_audit_says_so(setup):
    """The §V.D failure the audit trail exists for: a producer counts
    and claims messages, crashes with the data batch unflushed, and the
    loss surfaces as a per-window deficit — permanently, even after a
    replacement producer comes up and behaves."""
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a", batch_size=1000)
    for i in range(7):
        producer.send("activity", {"i": i})
    producer.publish_monitoring_events()   # claims land on the audit topic
    del producer                           # crash: the data batch dies

    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.missing() == {("activity", 0): 7}

    clock.advance(30.0)                    # restart in a fresh window
    replacement = AuditingProducer(cluster, "app-a", batch_size=1000)
    replacement.send("activity", {"i": 99})
    replacement.flush()
    replacement.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.missing() == {("activity", 0): 7}   # old loss persists
    assert report.produced[("activity", 3)] == 1      # new window is clean
    assert report.unaccounted() == {}


def test_lost_monitoring_events_show_as_unaccounted(setup):
    """The dual failure: data arrived but the producer died before
    claiming it — consumed exceeds every claim for the window."""
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a")
    for i in range(4):
        producer.send("activity", {"i": i})
    producer.flush()
    del producer  # crash before publish_monitoring_events
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.missing() == {}
    assert report.unaccounted() == {("activity", 0): 4}
    assert not report.complete


def test_unflushed_messages_show_as_missing_until_flush(setup):
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a", clock=clock,
                                batch_size=1000)
    for i in range(5):
        producer.send("activity", {"i": i})
    producer.publish_monitoring_events()  # flushes the audit topic only
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    # data messages still sitting in the producer batch
    assert not report.complete
    producer.flush()
    assert AuditReconciler(cluster, ["activity"]).reconcile().complete
