"""EXP-K6: the audit pipeline detects loss (and confirms completeness)."""

import pytest

from repro.common.clock import SimClock
from repro.kafka import KafkaCluster
from repro.kafka.audit import AUDIT_TOPIC, AuditingProducer, AuditReconciler


@pytest.fixture
def setup(tmp_path):
    clock = SimClock()
    cluster = KafkaCluster(num_brokers=2, data_root=str(tmp_path),
                           clock=clock, partitions_per_topic=4)
    cluster.create_topic("activity")
    cluster.create_topic(AUDIT_TOPIC, partitions=1)
    yield cluster, clock
    cluster.shutdown()


def test_counts_match_when_nothing_lost(setup):
    cluster, clock = setup
    producers = [AuditingProducer(cluster, f"app-{i:02d}", clock=clock)
                 for i in range(3)]
    for tick in range(50):
        clock.advance(1.0)
        for producer in producers:
            producer.send("activity", {"event": "page_view", "n": tick})
    for producer in producers:
        producer.flush()
        producer.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.complete
    assert sum(report.produced.values()) == 150
    assert report.missing() == {}


def test_windows_aggregate_across_producers(setup):
    cluster, clock = setup
    a = AuditingProducer(cluster, "app-a", window_seconds=10.0, clock=clock)
    b = AuditingProducer(cluster, "app-b", window_seconds=10.0, clock=clock)
    a.send("activity", {"x": 1})
    b.send("activity", {"x": 2})
    clock.advance(15.0)
    a.send("activity", {"x": 3})
    a.flush()
    b.flush()
    a.publish_monitoring_events()
    b.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert report.produced[("activity", 0)] == 2
    assert report.produced[("activity", 1)] == 1
    assert report.complete


def test_loss_detected(setup):
    """Simulate loss: monitoring says N were produced, but some data
    messages never reached the cluster."""
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a", clock=clock)
    for i in range(10):
        producer.send("activity", {"i": i})
    producer.flush()
    # claim 3 more than were actually published
    producer._counts[("activity", 0)] += 3
    producer.publish_monitoring_events()
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    assert not report.complete
    assert report.missing() == {("activity", 0): 3}


def test_unflushed_messages_show_as_missing_until_flush(setup):
    cluster, clock = setup
    producer = AuditingProducer(cluster, "app-a", clock=clock,
                                batch_size=1000)
    for i in range(5):
        producer.send("activity", {"i": i})
    producer.publish_monitoring_events()  # flushes the audit topic only
    report = AuditReconciler(cluster, ["activity"]).reconcile()
    # data messages still sitting in the producer batch
    assert not report.complete
    producer.flush()
    assert AuditReconciler(cluster, ["activity"]).reconcile().complete
