"""Avro-style serialization and schema resolution."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import (
    SchemaCompatibilityError,
    SchemaError,
    SerializationError,
)
from repro.common.serialization import (
    Field,
    RecordSchema,
    SchemaRegistry,
    check_compatible,
    decode_record,
    decode_with_resolution,
    encode_record,
)

PROFILE_V1 = RecordSchema("Profile", [
    Field("member_id", "long"),
    Field("name", "string"),
    Field("headline", ["null", "string"]),
    Field("skills", {"array": "string"}, default=[], has_default=True),
])


def test_roundtrip_simple_record():
    record = {"member_id": 7, "name": "Reid", "headline": None, "skills": ["ceo"]}
    data = encode_record(PROFILE_V1, record)
    assert decode_record(PROFILE_V1, data) == record


def test_defaults_applied_on_encode():
    data = encode_record(PROFILE_V1, {"member_id": 1, "name": "x"})
    decoded = decode_record(PROFILE_V1, data)
    assert decoded["skills"] == []
    assert decoded["headline"] is None


def test_missing_required_field_rejected():
    with pytest.raises(SerializationError):
        encode_record(PROFILE_V1, {"name": "no id"})


def test_parse_and_to_json_roundtrip():
    spec = PROFILE_V1.to_json()
    parsed = RecordSchema.parse(spec)
    assert [f.name for f in parsed.fields] == [f.name for f in PROFILE_V1.fields]


def test_parse_rejects_non_record():
    with pytest.raises(SchemaError):
        RecordSchema.parse({"type": "enum", "name": "X"})


def test_unknown_primitive_rejected():
    with pytest.raises(SchemaError):
        RecordSchema("Bad", [Field("x", "decimal")])


def test_duplicate_field_rejected():
    with pytest.raises(SchemaError):
        RecordSchema("Bad", [Field("x", "int"), Field("x", "int")])


def test_map_and_nested_types_roundtrip():
    schema = RecordSchema("Counts", [
        Field("by_page", {"map": "long"}),
        Field("tags", {"array": ["null", "string"]}),
    ])
    record = {"by_page": {"feed": 10, "jobs": 2}, "tags": ["a", None]}
    assert decode_record(schema, encode_record(schema, record)) == record


# -- schema evolution --------------------------------------------------------

def test_added_field_with_default_is_compatible():
    v2 = RecordSchema("Profile", PROFILE_V1.fields + [
        Field("industry", "string", default="unknown", has_default=True)])
    check_compatible(PROFILE_V1, v2)
    data = encode_record(PROFILE_V1, {"member_id": 1, "name": "a"})
    decoded = decode_with_resolution(PROFILE_V1, v2, data)
    assert decoded["industry"] == "unknown"


def test_added_field_without_default_is_incompatible():
    v2 = RecordSchema("Profile", PROFILE_V1.fields + [Field("industry", "string")])
    with pytest.raises(SchemaCompatibilityError):
        check_compatible(PROFILE_V1, v2)


def test_removed_field_is_skipped_on_read():
    v2 = RecordSchema("Profile", [f for f in PROFILE_V1.fields if f.name != "headline"])
    data = encode_record(PROFILE_V1,
                         {"member_id": 1, "name": "a", "headline": "boss"})
    decoded = decode_with_resolution(PROFILE_V1, v2, data)
    assert "headline" not in decoded


def test_numeric_promotion_int_to_double():
    v1 = RecordSchema("Score", [Field("value", "int")])
    v2 = RecordSchema("Score", [Field("value", "double")])
    data = encode_record(v1, {"value": 42})
    assert decode_with_resolution(v1, v2, data) == {"value": 42.0}


def test_narrowing_promotion_rejected():
    v1 = RecordSchema("Score", [Field("value", "double")])
    v2 = RecordSchema("Score", [Field("value", "int")])
    with pytest.raises(SchemaCompatibilityError):
        check_compatible(v1, v2)


def test_field_made_nullable_is_compatible():
    v1 = RecordSchema("Doc", [Field("body", "string")])
    v2 = RecordSchema("Doc", [Field("body", ["null", "string"])])
    data = encode_record(v1, {"body": "hello"})
    assert decode_with_resolution(v1, v2, data) == {"body": "hello"}


def test_registry_assigns_monotonic_versions():
    registry = SchemaRegistry()
    v1 = registry.register(PROFILE_V1)
    v2 = registry.register(RecordSchema("Profile", PROFILE_V1.fields + [
        Field("industry", "string", default="", has_default=True)]))
    assert (v1, v2) == (1, 2)
    assert registry.latest("Profile").version == 2
    assert registry.get("Profile", 1).version == 1


def test_registry_rejects_incompatible_evolution():
    registry = SchemaRegistry()
    registry.register(PROFILE_V1)
    bad = RecordSchema("Profile", [Field("member_id", "string"), Field("name", "string")])
    with pytest.raises(SchemaCompatibilityError):
        registry.register(bad)


# -- property-based roundtrips -----------------------------------------------

_field_values = st.fixed_dictionaries({
    "member_id": st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    "name": st.text(max_size=50),
    "headline": st.one_of(st.none(), st.text(max_size=20)),
    "skills": st.lists(st.text(max_size=10), max_size=5),
})


@given(_field_values)
def test_roundtrip_property(record):
    assert decode_record(PROFILE_V1, encode_record(PROFILE_V1, record)) == record


@given(st.integers(min_value=-(2 ** 62), max_value=2 ** 62))
def test_varint_roundtrip(value):
    import io
    from repro.common.serialization import read_varint, write_varint
    buf = io.BytesIO()
    write_varint(buf, value)
    buf.seek(0)
    assert read_varint(buf) == value
