"""Coverage for small public surfaces not exercised elsewhere."""

import pytest

from repro.common.errors import ConfigurationError, SchemaError
from repro.common.serialization import Field, RecordSchema, SchemaRegistry


class TestRegisterExact:
    def test_mirrors_declared_versions(self):
        registry = SchemaRegistry()
        v3 = RecordSchema("T", [Field("a", "int")], version=3)
        registry.register_exact(v3)
        assert registry.latest("T").version == 3
        assert registry.get("T", 3) is v3

    def test_idempotent(self):
        registry = SchemaRegistry()
        schema = RecordSchema("T", [Field("a", "int")], version=2)
        registry.register_exact(schema)
        registry.register_exact(schema)
        assert registry.latest("T").version == 2

    def test_never_downgrades_latest(self):
        registry = SchemaRegistry()
        registry.register_exact(RecordSchema("T", [Field("a", "int")],
                                             version=5))
        registry.register_exact(RecordSchema("T", [Field("a", "int")],
                                             version=2))
        assert registry.latest("T").version == 5
        assert registry.get("T", 2).version == 2

    def test_missing_version_still_raises(self):
        registry = SchemaRegistry()
        registry.register_exact(RecordSchema("T", [Field("a", "int")],
                                             version=3))
        with pytest.raises(SchemaError):
            registry.get("T", 1)


class TestTransformRegistry:
    def test_duplicate_registration_rejected(self):
        from repro.voldemort.transforms import TransformRegistry
        registry = TransformRegistry()
        registry.register("x", lambda v: v)
        with pytest.raises(ConfigurationError):
            registry.register("x", lambda v: v)

    def test_unknown_transform(self):
        from repro.voldemort.transforms import TransformRegistry
        with pytest.raises(ConfigurationError):
            TransformRegistry().get_transform("ghost")

    def test_builtins_registered(self):
        from repro.voldemort.transforms import TRANSFORM_REGISTRY
        assert {"list_append", "list_slice", "list_remove",
                "counter_add"} <= set(TRANSFORM_REGISTRY.names())

    def test_list_transform_rejects_non_list_value(self):
        from repro.voldemort.transforms import list_append
        with pytest.raises(ConfigurationError):
            list_append(b'{"not": "a list"}', 1)

    def test_list_transform_handles_empty_value(self):
        from repro.voldemort.transforms import list_append
        assert list_append(None, 1) == b"[1]"
        assert list_append(b"", 2) == b"[2]"


class TestEventHelpers:
    def test_row_schema_maps_sql_types(self):
        from repro.databus.events import row_schema_for
        from repro.sqlstore import Column, TableSchema
        table = TableSchema("t", (
            Column("id", int), Column("name", str),
            Column("score", float), Column("blob", bytes, nullable=True),
            Column("flag", bool),
        ), primary_key=("id",))
        schema = row_schema_for(table)
        types = {f.name: f.type for f in schema.fields}
        assert types == {"id": "long", "name": "string", "score": "double",
                         "blob": ["null", "bytes"], "flag": "boolean"}

    def test_and_filters(self):
        from repro.databus.events import (
            DatabusEvent,
            and_filters,
            partition_filter,
            source_filter,
        )
        from repro.sqlstore.binlog import ChangeKind
        combined = and_filters(source_filter("member"),
                               partition_filter(1, 0))
        event = DatabusEvent(1, "member", ChangeKind.INSERT, (1,), b"")
        other = DatabusEvent(1, "other", ChangeKind.INSERT, (1,), b"")
        assert combined(event)
        assert not combined(other)


class TestSimnetAccounting:
    def test_payload_bytes_counted(self):
        from repro.simnet import SimNetwork
        net = SimNetwork()
        net.invoke("a", "b", lambda: None, payload_bytes=123)
        assert net.bytes_sent == 123

    def test_async_payload_counted(self):
        from repro.common.clock import SimClock
        from repro.simnet import SimNetwork
        clock = SimClock()
        net = SimNetwork(clock=clock)
        net.send("a", "b", lambda: None, payload_bytes=77)
        assert net.bytes_sent == 77
