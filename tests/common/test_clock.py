"""SimClock discrete-event semantics."""

import pytest

from repro.common.clock import SimClock, WallClock


def test_wall_clock_advances():
    clock = WallClock()
    a = clock.now()
    clock.sleep(0.001)
    assert clock.now() >= a


def test_sim_clock_starts_at_zero():
    assert SimClock().now() == 0.0


def test_events_fire_in_timestamp_order():
    clock = SimClock()
    fired = []
    clock.call_at(2.0, lambda: fired.append("b"))
    clock.call_at(1.0, lambda: fired.append("a"))
    clock.call_at(3.0, lambda: fired.append("c"))
    clock.advance(2.5)
    assert fired == ["a", "b"]
    clock.advance(1.0)
    assert fired == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order():
    clock = SimClock()
    fired = []
    clock.call_at(1.0, lambda: fired.append(1))
    clock.call_at(1.0, lambda: fired.append(2))
    clock.advance(1.0)
    assert fired == [1, 2]


def test_callbacks_can_schedule_more_events():
    clock = SimClock()
    fired = []

    def chain():
        fired.append(clock.now())
        if len(fired) < 3:
            clock.call_later(1.0, chain)

    clock.call_later(1.0, chain)
    clock.advance(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_cancelled_events_do_not_fire():
    clock = SimClock()
    fired = []
    event = clock.call_at(1.0, lambda: fired.append("x"))
    SimClock.cancel(event)
    clock.advance(2.0)
    assert fired == []
    assert clock.pending_events == 0


def test_cannot_schedule_in_the_past():
    clock = SimClock(start=10.0)
    with pytest.raises(ValueError):
        clock.call_at(5.0, lambda: None)


def test_negative_sleep_rejected():
    with pytest.raises(ValueError):
        SimClock().sleep(-1)


def test_run_all_guards_against_infinite_loops():
    clock = SimClock()

    def forever():
        clock.call_later(1.0, forever)

    clock.call_later(1.0, forever)
    with pytest.raises(RuntimeError):
        clock.run_all(limit=50)


def test_sleep_advances_sim_time_and_fires_events():
    clock = SimClock()
    fired = []
    clock.call_at(0.5, lambda: fired.append(clock.now()))
    clock.sleep(1.0)
    assert clock.now() == 1.0
    assert fired == [0.5]
