"""Regression tests for the escaped-internal-error cleanup.

The interprocedural lint convicted every raw ``ValueError`` /
``TypeError`` / ``RuntimeError`` / ``FileNotFoundError`` escaping a
package-exported public API; each was replaced with a taxonomy type
that *dual-inherits* the builtin (the ``KeyNotFoundError`` precedent),
so callers written against either vocabulary keep working.  These
tests pin both halves of that contract per fixed call site: the new
type is raised, and the legacy builtin still catches it.
"""

import random

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    ConfigurationError,
    DuplicateKeyError,
    FileMissingError,
    InvalidRequestError,
    NonConvergenceError,
    ReplicationOrderError,
    ReproError,
    SchemaError,
    SchemaValidationError,
    UnsupportedTypeError,
)
from repro.common.metrics import Counter, LatencyHistogram
from repro.common.resilience import RetryPolicy
from repro.common.ring import hash_key
from repro.common.vectorclock import VectorClock
from repro.databus.events import partition_filter
from repro.hadoop.hdfs import MiniHDFS
from repro.simnet.disk import SimDisk
from repro.simnet.network import uniform_latency
from repro.sqlstore.binlog import Binlog
from repro.sqlstore.table import Column, TableSchema
from repro.zookeeper import ZooKeeperServer


def test_every_new_type_dual_inherits_its_builtin():
    for taxonomy, builtin in [
        (ConfigurationError, ValueError),
        (InvalidRequestError, ValueError),
        (SchemaValidationError, ValueError),
        (DuplicateKeyError, ValueError),
        (ReplicationOrderError, ValueError),
        (UnsupportedTypeError, TypeError),
        (NonConvergenceError, RuntimeError),
        (FileMissingError, FileNotFoundError),
    ]:
        assert issubclass(taxonomy, ReproError)
        assert issubclass(taxonomy, builtin)
    assert issubclass(SchemaValidationError, SchemaError)


def test_clock_rejections_are_taxonomy_errors():
    clock = SimClock()
    with pytest.raises(InvalidRequestError):
        clock.sleep(-1.0)
    with pytest.raises(ValueError):
        clock.call_at(-5.0, lambda: None)


def test_runaway_event_loop_is_nonconvergence():
    clock = SimClock()

    def reschedule():
        clock.call_later(0.1, reschedule)

    clock.call_later(0.1, reschedule)
    with pytest.raises(NonConvergenceError):
        clock.run_all(limit=50)


def test_metrics_rejections():
    with pytest.raises(ConfigurationError):
        LatencyHistogram(min_value=0.0)
    histogram = LatencyHistogram()
    with pytest.raises(InvalidRequestError):
        histogram.record(-1.0)
    with pytest.raises(InvalidRequestError):
        histogram.percentile(0.0)
    with pytest.raises(InvalidRequestError):
        Counter().increment(-1)


def test_retry_policy_rejects_zero_based_retry():
    with pytest.raises(InvalidRequestError):
        RetryPolicy().backoff(0, random.Random(1))


def test_ring_requires_bytes_keys():
    with pytest.raises(UnsupportedTypeError):
        hash_key("not-bytes")
    with pytest.raises(TypeError):
        hash_key(42)


def test_vectorclock_rejects_nonpositive_counters():
    with pytest.raises(ConfigurationError):
        VectorClock({1: 0})


def test_partition_filter_range_check():
    with pytest.raises(ConfigurationError):
        partition_filter(4, 9)


def test_hdfs_path_and_chunk_validation():
    hdfs = MiniHDFS()
    with pytest.raises(InvalidRequestError):
        hdfs.create("relative/path", b"data")
    hdfs.create("/a", b"data")
    with pytest.raises(InvalidRequestError):
        list(hdfs.read_chunks("/a", chunk_size=0))


def test_simdisk_missing_files():
    disk = SimDisk(clock=SimClock(), seed=42)
    with pytest.raises(FileMissingError):
        disk.open("node/missing", "rb")
    with pytest.raises(FileNotFoundError):
        disk.getsize("node/missing")
    with pytest.raises(FileMissingError):
        disk.remove("node/missing")
    with pytest.raises(FileMissingError):
        disk.replace("node/missing", "node/other")


def test_network_latency_model_validation():
    with pytest.raises(ConfigurationError):
        uniform_latency(2.0, 1.0)


def test_binlog_scn_contract():
    from repro.sqlstore.binlog import BinlogTransaction

    binlog = Binlog()
    with pytest.raises(ReplicationOrderError):
        binlog.append(BinlogTransaction(scn=7, changes=[]))
    with pytest.raises(InvalidRequestError):
        binlog.reset_to(-1)


def test_table_schema_validation_errors():
    schema = TableSchema(
        name="member", columns=(Column("id", int), Column("name", bytes)),
        primary_key=("id",))
    with pytest.raises(SchemaValidationError):
        schema.validate_row({"id": None, "name": b"x"})
    with pytest.raises(SchemaValidationError):
        schema.validate_row({"id": 1, "name": b"x", "bogus": 1})
    with pytest.raises(SchemaValidationError):
        schema.key_of({"name": b"x"})
    from repro.sqlstore.table import Table

    table = Table(schema)
    table.insert({"id": 1, "name": b"x"})
    with pytest.raises(DuplicateKeyError):
        table.insert({"id": 1, "name": b"y"})


def test_zookeeper_path_validation():
    session = ZooKeeperServer().connect()
    with pytest.raises(InvalidRequestError):
        session.ensure_path("no-leading-slash")
