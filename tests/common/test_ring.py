"""Consistent-hash ring placement properties (Voldemort §II.A-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.ring import HashRing, Node, Zone, build_balanced_ring, hash_key


def make_ring(nodes=4, partitions=16, zones=1):
    return build_balanced_ring(nodes, partitions, zones)


def test_hash_key_requires_bytes():
    with pytest.raises(TypeError):
        hash_key("not-bytes")


def test_hash_key_is_stable():
    assert hash_key(b"member:42") == hash_key(b"member:42")


def test_every_partition_has_exactly_one_owner():
    ring = make_ring()
    owners = [ring.node_for_partition(p).node_id for p in range(16)]
    assert len(owners) == 16


def test_duplicate_partition_ownership_rejected():
    with pytest.raises(ConfigurationError):
        HashRing([Node(0, (0, 1)), Node(1, (1,))], num_partitions=2)


def test_unowned_partition_rejected():
    with pytest.raises(ConfigurationError):
        HashRing([Node(0, (0,))], num_partitions=2)


def test_replicas_land_on_distinct_nodes():
    ring = make_ring(nodes=5, partitions=20)
    for partition in range(20):
        replicas = ring.replica_partitions(partition, replication_factor=3)
        owners = {ring.node_for_partition(p).node_id for p in replicas}
        assert len(owners) == 3
        assert replicas[0] == partition


def test_replication_factor_cannot_exceed_nodes():
    ring = make_ring(nodes=2, partitions=8)
    with pytest.raises(ConfigurationError):
        ring.replica_partitions(0, replication_factor=3)


def test_key_routing_is_deterministic():
    ring = make_ring()
    key = b"company:linkedin"
    assert ring.master_for_key(key).node_id == ring.master_for_key(key).node_id
    nodes_a = [n.node_id for n in ring.replica_nodes_for_key(key, 3)]
    nodes_b = [n.node_id for n in ring.replica_nodes_for_key(key, 3)]
    assert nodes_a == nodes_b


def test_zone_aware_placement_spans_zones():
    ring = make_ring(nodes=6, partitions=24, zones=2)
    for partition in range(24):
        replicas = ring.zone_aware_replica_partitions(partition, 3, required_zones=2)
        zones = {ring.node_for_partition(p).zone_id for p in replicas}
        assert len(zones) >= 2


def test_zone_aware_rejects_impossible_requirements():
    ring = make_ring(nodes=4, partitions=8, zones=1)
    with pytest.raises(ConfigurationError):
        ring.zone_aware_replica_partitions(0, 2, required_zones=2)


def test_partition_move_transfers_ownership():
    ring = make_ring(nodes=2, partitions=4)
    victim = ring.node_for_partition(0).node_id
    target = 1 - victim
    moved = ring.with_partition_moved(0, target)
    assert moved.node_for_partition(0).node_id == target
    # original ring untouched
    assert ring.node_for_partition(0).node_id == victim


def test_node_added_starts_empty():
    ring = make_ring(nodes=2, partitions=4)
    grown = ring.with_node_added(9)
    assert grown.partition_counts()[9] == 0


@given(st.binary(min_size=1, max_size=40))
@settings(max_examples=200)
def test_partition_for_key_in_range(key):
    ring = make_ring(nodes=3, partitions=12)
    assert 0 <= ring.partition_for_key(key) < 12


@given(st.integers(2, 8), st.integers(1, 4))
def test_balanced_ring_is_balanced(nodes, per_node):
    partitions = nodes * per_node
    ring = build_balanced_ring(nodes, partitions)
    counts = set(ring.partition_counts().values())
    assert counts == {per_node}


@given(st.binary(min_size=1, max_size=16), st.integers(2, 5))
@settings(max_examples=100)
def test_expansion_moves_minimal_partitions(key, nodes):
    """Adding a node and moving one partition changes routing only for
    keys in the moved partition — the paper's no-downtime expansion."""
    ring = build_balanced_ring(nodes, nodes * 4)
    grown = ring.with_node_added(99)
    moved_partition = 0
    rebalanced = grown.with_partition_moved(moved_partition, 99)
    partition = ring.partition_for_key(key)
    if partition != moved_partition:
        assert (rebalanced.master_for_key(key).node_id
                == ring.master_for_key(key).node_id)
    else:
        assert rebalanced.master_for_key(key).node_id == 99
