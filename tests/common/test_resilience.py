"""The shared resilience layer: retries, deadlines, circuit breakers."""

import random

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    NodeUnavailableError,
    TransientNetworkError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    call_with_retries,
)


# -- RetryPolicy ------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_delay=1.0, max_delay=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.5)


def test_backoff_grows_exponentially_without_jitter():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0,
                         max_delay=10.0, jitter=0.0)
    rng = random.Random(0)
    delays = list(policy.delays(rng))
    assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])


def test_backoff_capped_at_max_delay():
    policy = RetryPolicy(max_attempts=10, base_delay=0.1, multiplier=4.0,
                         max_delay=0.5, jitter=0.0)
    rng = random.Random(0)
    assert max(policy.delays(rng)) == pytest.approx(0.5)


def test_jitter_deterministic_under_fixed_seed():
    policy = RetryPolicy(max_attempts=6, base_delay=0.05, jitter=0.5)
    schedule_a = list(policy.delays(random.Random(42)))
    schedule_b = list(policy.delays(random.Random(42)))
    schedule_c = list(policy.delays(random.Random(43)))
    assert schedule_a == schedule_b
    assert schedule_a != schedule_c


def test_jitter_stays_within_proportional_band():
    policy = RetryPolicy(max_attempts=50, base_delay=0.1, multiplier=1.0,
                         max_delay=0.1, jitter=0.3)
    rng = random.Random(7)
    for delay in policy.delays(rng):
        assert 0.1 * 0.7 <= delay <= 0.1


def test_backoff_retry_number_is_one_based():
    policy = RetryPolicy()
    with pytest.raises(ValueError):
        policy.backoff(0, random.Random(0))


# -- Deadline ------------------------------------------------------------------

def test_deadline_budget_must_be_positive():
    with pytest.raises(ConfigurationError):
        Deadline(SimClock(), 0.0)


def test_deadline_shrinks_with_time():
    clock = SimClock()
    deadline = Deadline.after(clock, 1.0)
    assert deadline.remaining() == pytest.approx(1.0)
    clock.advance(0.4)
    assert deadline.remaining() == pytest.approx(0.6)
    assert not deadline.expired
    clock.advance(0.6)
    assert deadline.expired
    assert deadline.remaining() == 0.0


def test_deadline_check_raises_when_expired():
    clock = SimClock()
    deadline = Deadline.after(clock, 0.5)
    deadline.check("read")  # fine
    clock.advance(1.0)
    with pytest.raises(DeadlineExceededError):
        deadline.check("read")


def test_deadline_clamps_hop_timeouts():
    clock = SimClock()
    deadline = Deadline.after(clock, 1.0)
    assert deadline.clamp(5.0) == pytest.approx(1.0)
    assert deadline.clamp(0.2) == pytest.approx(0.2)
    clock.advance(0.9)
    assert deadline.clamp(0.2) == pytest.approx(0.1)


# -- CircuitBreaker --------------------------------------------------------------

def test_breaker_validation():
    clock = SimClock()
    with pytest.raises(ConfigurationError):
        CircuitBreaker(clock, failure_threshold=0.0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(clock, window=0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(clock, minimum_samples=20, window=10)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(clock, reset_timeout=0.0)


def test_breaker_full_lifecycle():
    clock = SimClock()
    metrics = MetricsRegistry()
    breaker = CircuitBreaker(clock, name="db", failure_threshold=0.5,
                             window=8, minimum_samples=4, reset_timeout=2.0,
                             metrics=metrics)
    assert breaker.state == "closed"
    for _ in range(4):
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()  # rejected without touching the target
    clock.advance(2.0)
    assert breaker.state == "half-open"
    assert breaker.allow()  # the probe is admitted
    breaker.record_success()
    assert breaker.state == "closed"

    assert metrics.counter("db.breaker.opened").value == 1
    assert metrics.counter("db.breaker.half_open").value == 1
    assert metrics.counter("db.breaker.closed").value == 1
    assert metrics.counter("db.breaker.rejected").value == 1


def test_breaker_failed_probe_reopens():
    clock = SimClock()
    breaker = CircuitBreaker(clock, minimum_samples=2, reset_timeout=1.0)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(1.0)
    assert breaker.state == "half-open"
    breaker.record_failure()
    assert breaker.state == "open"
    # and the reset timer restarted from the failed probe
    clock.advance(0.5)
    assert breaker.state == "open"
    clock.advance(0.5)
    assert breaker.state == "half-open"


def test_breaker_requires_minimum_samples():
    breaker = CircuitBreaker(SimClock(), minimum_samples=4)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == "closed"


def test_breaker_reset_force_closes():
    clock = SimClock()
    breaker = CircuitBreaker(clock, minimum_samples=2)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    breaker.reset()
    assert breaker.state == "closed"
    assert breaker.success_ratio() == 1.0


# -- call_with_retries -----------------------------------------------------------

def _flaky(failures: int, exc=TransientNetworkError):
    """A callable that fails ``failures`` times then succeeds."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc(f"injected failure {state['calls']}")
        return state["calls"]

    fn.state = state
    return fn


def test_retries_until_success_and_counts_metrics():
    clock = SimClock()
    metrics = MetricsRegistry()
    fn = _flaky(2)
    result = call_with_retries(fn, clock=clock,
                               policy=RetryPolicy(max_attempts=5),
                               rng=random.Random(0), metrics=metrics,
                               name="op")
    assert result == 3
    assert metrics.counter("op.attempts").value == 3
    assert metrics.counter("op.retries").value == 2
    assert "op.exhausted" not in metrics.counters
    assert clock.now() > 0.0  # backoff actually slept on the clock


def test_exhausted_retries_reraise_last_error():
    metrics = MetricsRegistry()
    fn = _flaky(10)
    with pytest.raises(TransientNetworkError):
        call_with_retries(fn, clock=SimClock(),
                          policy=RetryPolicy(max_attempts=3),
                          metrics=metrics, name="op")
    assert fn.state["calls"] == 3
    assert metrics.counter("op.exhausted").value == 1


def test_non_retryable_errors_propagate_immediately():
    fn = _flaky(10, exc=ValueError)
    with pytest.raises(ValueError):
        call_with_retries(fn, clock=SimClock(),
                          policy=RetryPolicy(max_attempts=5))
    assert fn.state["calls"] == 1


def test_deadline_stops_retry_loop():
    clock = SimClock()
    metrics = MetricsRegistry()
    deadline = Deadline.after(clock, 0.05)
    fn = _flaky(100)
    with pytest.raises(DeadlineExceededError):
        call_with_retries(
            fn, clock=clock,
            policy=RetryPolicy(max_attempts=100, base_delay=0.02, jitter=0.0),
            deadline=deadline, metrics=metrics, name="op")
    assert fn.state["calls"] < 100  # the budget, not the attempt cap, stopped us
    assert metrics.counter("op.deadline_exceeded").value == 1


def test_open_breaker_rejects_first_attempt():
    clock = SimClock()
    breaker = CircuitBreaker(clock, minimum_samples=2)
    breaker.record_failure()
    breaker.record_failure()
    with pytest.raises(CircuitOpenError):
        call_with_retries(lambda: 1, clock=clock, breaker=breaker)


def test_breaker_records_outcomes_through_engine():
    clock = SimClock()
    breaker = CircuitBreaker(clock, minimum_samples=2, reset_timeout=0.01)
    fn = _flaky(2, exc=NodeUnavailableError)
    # the two failures open the breaker; backoff sleeps past the reset
    # timeout, so the third (half-open) attempt is admitted and closes it
    result = call_with_retries(fn, clock=clock,
                               policy=RetryPolicy(max_attempts=5,
                                                  base_delay=0.02, jitter=0.0),
                               breaker=breaker)
    assert result == 3
    assert breaker.state == "closed"


def test_on_retry_hook_runs_between_attempts():
    seen = []
    fn = _flaky(2)
    call_with_retries(fn, clock=SimClock(),
                      policy=RetryPolicy(max_attempts=5),
                      on_retry=lambda n, exc: seen.append((n, type(exc))))
    assert seen == [(1, TransientNetworkError), (2, TransientNetworkError)]


def test_retry_schedule_reproducible_across_runs():
    def run():
        clock = SimClock()
        call_with_retries(_flaky(3), clock=clock,
                          policy=RetryPolicy(max_attempts=5, jitter=0.5),
                          rng=random.Random(99))
        return clock.now()
    assert run() == run()
