"""Latency histogram accuracy and metric plumbing."""

import random

import pytest

from repro.common.metrics import (
    Counter,
    LatencyHistogram,
    Meter,
    MetricsRegistry,
    percentile_of_sorted,
)


def test_empty_histogram_summary():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(99) == 0.0


def test_single_sample():
    hist = LatencyHistogram()
    hist.record(0.003)
    assert hist.count == 1
    assert hist.mean == pytest.approx(0.003)
    assert hist.percentile(50) == pytest.approx(0.003, rel=0.10)


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram().record(-1.0)


def test_percentile_bounds_validated():
    hist = LatencyHistogram()
    hist.record(0.001)
    with pytest.raises(ValueError):
        hist.percentile(0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_percentiles_within_bucket_error():
    rng = random.Random(7)
    samples = sorted(rng.uniform(0.0001, 0.1) for _ in range(5000))
    hist = LatencyHistogram()
    for s in samples:
        hist.record(s)
    for p in (50, 90, 99):
        exact = percentile_of_sorted(samples, p)
        assert hist.percentile(p) == pytest.approx(exact, rel=0.12)


def test_max_is_exact():
    hist = LatencyHistogram()
    for s in (0.001, 0.5, 0.002):
        hist.record(s)
    assert hist.max == 0.5
    assert hist.percentile(100) == 0.5


def test_out_of_range_samples_clamp_to_edge_buckets():
    hist = LatencyHistogram(min_value=1e-6, max_value=1.0)
    hist.record(1e-9)
    hist.record(50.0)
    assert hist.count == 2
    assert hist.percentile(100) == 50.0


def test_counter_only_increments():
    counter = Counter()
    counter.increment()
    counter.increment(5)
    assert counter.value == 6
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_meter_rates():
    meter = Meter(started_at=0.0)
    meter.mark(events=100, nbytes=1000)
    assert meter.events_per_second(now=2.0) == 50.0
    assert meter.bytes_per_second(now=2.0) == 500.0
    assert meter.events_per_second(now=0.0) == 0.0


def test_registry_creates_and_reuses():
    registry = MetricsRegistry()
    registry.histogram("get").record(0.001)
    registry.histogram("get").record(0.002)
    registry.counter("errors").increment()
    snap = registry.snapshot()
    assert snap["get"]["count"] == 2
    assert snap["errors"]["count"] == 1


def test_percentile_of_sorted_empty_and_edges():
    assert percentile_of_sorted([], 50) == 0.0
    assert percentile_of_sorted([1.0, 2.0, 3.0, 4.0], 50) == 2.0
    assert percentile_of_sorted([1.0, 2.0, 3.0, 4.0], 100) == 4.0
    with pytest.raises(ValueError):
        percentile_of_sorted([1.0], 0)
