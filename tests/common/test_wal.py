"""WriteAheadLog: framing, torn-tail recovery, durability boundary."""

import pytest

from repro.common.clock import SimClock
from repro.common.wal import FRAME_OVERHEAD, WriteAheadLog, frame, scan_frames
from repro.simnet.disk import SimDisk


@pytest.fixture
def disk():
    return SimDisk(clock=SimClock(), seed=1)


class TestFraming:
    def test_scan_roundtrip(self):
        data = frame(b"one") + frame(b"two") + frame(b"")
        frames, good_end = scan_frames(data)
        assert [p for _, p in frames] == [b"one", b"two", b""]
        assert good_end == len(data)

    def test_scan_stops_at_corrupt_frame(self):
        good = frame(b"good")
        bad = bytearray(frame(b"bad!"))
        bad[-1] ^= 0xFF
        frames, good_end = scan_frames(good + bytes(bad) + frame(b"after"))
        assert [p for _, p in frames] == [b"good"]
        assert good_end == len(good)

    def test_scan_stops_at_overrun_length(self):
        good = frame(b"good")
        torn = frame(b"a-full-record")[:-5]
        frames, good_end = scan_frames(good + torn)
        assert [p for _, p in frames] == [b"good"]
        assert good_end == len(good)

    def test_scan_short_header(self):
        frames, good_end = scan_frames(b"\x01\x02")
        assert frames == []
        assert good_end == 0


class TestAppendReplay:
    def test_append_fsync_replay(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        offset_a = wal.append(b"alpha")
        offset_b = wal.append(b"beta")
        wal.fsync()
        assert offset_a == 0
        assert offset_b == FRAME_OVERHEAD + 5
        assert list(wal.replay()) == [b"alpha", b"beta"]

    def test_append_is_not_durable_until_fsync(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        wal.append(b"acked")
        wal.fsync()
        wal.append(b"staged")
        assert wal.unsynced_bytes == FRAME_OVERHEAD + 6
        disk.crash_node("node")
        recovered = WriteAheadLog("node/x.wal", disk=disk)
        assert list(recovered.replay()) == [b"acked"]

    def test_reopen_resumes_appending(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        wal.append(b"first")
        wal.fsync()
        wal.close()
        wal2 = WriteAheadLog("node/x.wal", disk=disk)
        assert wal2.recovered_frames == 1
        wal2.append(b"second")
        wal2.fsync()
        assert list(wal2.replay()) == [b"first", b"second"]


class TestRecovery:
    def test_torn_tail_truncated(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        wal.append(b"durable-record")
        wal.fsync()
        wal.append(b"torn-away-record")
        disk.arm_torn_write("node", path="x.wal", keep_bytes=6)
        disk.crash_node("node")

        recovered = WriteAheadLog("node/x.wal", disk=disk)
        assert recovered.recovered_frames == 1
        assert recovered.truncated_bytes == 6
        assert list(recovered.replay()) == [b"durable-record"]

    def test_truncation_is_fsynced(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        wal.append(b"keep")
        wal.fsync()
        wal.append(b"lose")
        disk.arm_torn_write("node", path="x.wal", keep_bytes=2)
        disk.crash_node("node")
        WriteAheadLog("node/x.wal", disk=disk)  # truncates + fsyncs the cut
        # a second crash must not resurrect the torn garbage
        disk.crash_node("node")
        again = WriteAheadLog("node/x.wal", disk=disk)
        assert list(again.replay()) == [b"keep"]
        assert again.truncated_bytes == 0

    def test_corrupt_middle_frame_cuts_everything_after(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        wal.append(b"first")
        second_offset = wal.append(b"second")
        wal.append(b"third")
        wal.fsync()
        wal.close()
        # flip a payload byte of the middle record
        disk.flip_bit("node", "x.wal",
                      offset=second_offset + FRAME_OVERHEAD, bit=0)
        recovered = WriteAheadLog("node/x.wal", disk=disk)
        assert list(recovered.replay()) == [b"first"]
        assert recovered.truncated_bytes > 0

    def test_append_after_recovery_reuses_good_end(self, disk):
        wal = WriteAheadLog("node/x.wal", disk=disk)
        wal.append(b"a")
        wal.fsync()
        wal.append(b"b")
        disk.crash_node("node")
        recovered = WriteAheadLog("node/x.wal", disk=disk)
        offset = recovered.append(b"c")
        recovered.fsync()
        assert offset == FRAME_OVERHEAD + 1
        assert list(recovered.replay()) == [b"a", b"c"]


class TestLocalDiskWal:
    def test_wal_on_real_filesystem(self, tmp_path):
        path = str(tmp_path / "logs" / "test.wal")
        wal = WriteAheadLog(path)
        wal.append(b"payload")
        wal.fsync()
        wal.close()
        reopened = WriteAheadLog(path)
        assert list(reopened.replay()) == [b"payload"]
        reopened.close()
