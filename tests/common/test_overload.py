"""Overload primitives: token buckets, admission classes, CoDel
shedding, adaptive concurrency, and hedged calls (DESIGN.md §12)."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import (
    BackpressureError,
    ConfigurationError,
    NodeUnavailableError,
    ServerOverloadedError,
)
from repro.common.metrics import MetricsRegistry
from repro.common.overload import (
    PRIORITY_BULK,
    PRIORITY_LIVE,
    PRIORITY_WRITE,
    AdmissionController,
    CoDelShedder,
    ConcurrencyLimiter,
    HedgedCall,
    TokenBucket,
)

# -- TokenBucket ----------------------------------------------------------


def test_token_bucket_starts_full_and_drains():
    bucket = TokenBucket(SimClock(), rate=10.0, burst=5.0)
    assert bucket.available == 5.0
    for _ in range(5):
        assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_token_bucket_refills_with_time_capped_at_burst():
    clock = SimClock()
    bucket = TokenBucket(clock, rate=10.0, burst=5.0)
    for _ in range(5):
        bucket.try_acquire()
    clock.advance(0.2)  # 2 tokens back
    assert bucket.available == pytest.approx(2.0)
    clock.advance(100.0)  # refill saturates at burst
    assert bucket.available == pytest.approx(5.0)


def test_token_bucket_fractional_costs():
    bucket = TokenBucket(SimClock(), rate=1.0, burst=1.0)
    assert bucket.try_acquire(0.75)
    assert not bucket.try_acquire(0.5)
    assert bucket.try_acquire(0.25)


def test_token_bucket_validation():
    with pytest.raises(ConfigurationError):
        TokenBucket(SimClock(), rate=0.0, burst=1.0)
    with pytest.raises(ConfigurationError):
        TokenBucket(SimClock(), rate=1.0, burst=0.0)


# -- AdmissionController --------------------------------------------------


def test_admission_sheds_bulk_before_writes_before_live():
    # burst 10: bulk floor 4 tokens, write floor 1.5, live floor 0
    clock = SimClock()
    admission = AdmissionController(clock, rate=1.0, burst=10.0)
    drained = 0
    while admission.try_admit(PRIORITY_BULK):
        drained += 1
    assert drained == 6  # 10 - floor(4)
    # bulk is now shed but writes still flow...
    assert not admission.try_admit(PRIORITY_BULK)
    assert admission.try_admit(PRIORITY_WRITE)
    assert admission.try_admit(PRIORITY_WRITE)
    assert not admission.try_admit(PRIORITY_WRITE)
    # ...and live reads drain the bucket to the last token
    assert admission.try_admit(PRIORITY_LIVE)
    assert admission.try_admit(PRIORITY_LIVE)
    assert not admission.try_admit(PRIORITY_LIVE)


def test_admission_admit_raises_with_retry_after_hint():
    clock = SimClock()
    admission = AdmissionController(clock, rate=2.0, burst=1.0)
    admission.admit(PRIORITY_LIVE, what="read")
    with pytest.raises(ServerOverloadedError) as exc_info:
        admission.admit(PRIORITY_LIVE, what="read")
    # one token short at 2 tokens/s => half a second until admittable
    assert exc_info.value.retry_after == pytest.approx(0.5)
    clock.advance(exc_info.value.retry_after)
    admission.admit(PRIORITY_LIVE)  # the hint was honest


def test_admission_counts_per_class_metrics():
    metrics = MetricsRegistry()
    admission = AdmissionController(SimClock(), rate=1.0, burst=1.0,
                                    metrics=metrics, name="adm")
    assert admission.try_admit(PRIORITY_LIVE)
    assert not admission.try_admit(PRIORITY_BULK)
    assert metrics.counters["adm.admitted.live"].value == 1
    assert metrics.counters["adm.shed.bulk"].value == 1
    assert admission.admitted == 1
    assert admission.shed == 1


def test_admission_custom_reserve_overrides_default():
    admission = AdmissionController(SimClock(), rate=1.0, burst=10.0,
                                    reserve={PRIORITY_BULK: 0.0})
    drained = 0
    while admission.try_admit(PRIORITY_BULK):
        drained += 1
    assert drained == 10  # no reservation: bulk drains the whole bucket


# -- CoDelShedder ---------------------------------------------------------


def test_codel_dormant_below_target():
    shedder = CoDelShedder(SimClock(), target=0.005, interval=0.1)
    for _ in range(100):
        assert not shedder.offer(0.004, PRIORITY_BULK)
    assert not shedder.dropping
    assert shedder.shed == 0


def test_codel_tolerates_bursts_shorter_than_interval():
    clock = SimClock()
    shedder = CoDelShedder(clock, target=0.005, interval=0.1)
    # delay above target, but only for half an interval
    for _ in range(5):
        assert not shedder.offer(0.02, PRIORITY_BULK)
        clock.advance(0.01)
    # back under target: the burst never became a standing queue
    assert not shedder.offer(0.001, PRIORITY_BULK)
    assert not shedder.dropping


def test_codel_enters_dropping_after_full_interval_above_target():
    clock = SimClock()
    shedder = CoDelShedder(clock, target=0.005, interval=0.1)
    assert not shedder.offer(0.02, PRIORITY_BULK)  # arms the timer
    clock.advance(0.11)
    assert shedder.offer(0.02, PRIORITY_BULK)      # standing queue: shed
    assert shedder.dropping
    # recovery: one sample under target exits dropping mode
    assert not shedder.offer(0.004, PRIORITY_BULK)
    assert not shedder.dropping


def test_codel_class_targets_shed_bulk_first():
    clock = SimClock()
    shedder = CoDelShedder(clock, target=0.005, interval=0.1)
    shedder.offer(0.008, PRIORITY_BULK)
    clock.advance(0.11)
    # 8ms delay: above bulk's 5ms target, below write's 10ms and
    # live's 20ms — only bulk sheds
    assert shedder.offer(0.008, PRIORITY_BULK)
    assert not shedder.offer(0.008, PRIORITY_WRITE)
    assert not shedder.offer(0.008, PRIORITY_LIVE)
    # at 25ms every class sheds
    assert shedder.offer(0.025, PRIORITY_LIVE)


def test_codel_validation():
    with pytest.raises(ConfigurationError):
        CoDelShedder(SimClock(), target=0.0)
    with pytest.raises(ConfigurationError):
        CoDelShedder(SimClock(), interval=0.0)


# -- ConcurrencyLimiter ---------------------------------------------------


def test_limiter_bounds_in_flight():
    limiter = ConcurrencyLimiter(initial=2)
    assert limiter.try_acquire()
    assert limiter.try_acquire()
    assert not limiter.try_acquire()
    with pytest.raises(BackpressureError):
        limiter.acquire("send")
    limiter.release(latency=0.01)
    assert limiter.try_acquire()


def test_limiter_shrinks_multiplicatively_on_overload():
    limiter = ConcurrencyLimiter(initial=100, decrease=0.5)
    limiter.try_acquire()
    limiter.release(overloaded=True)
    assert limiter.limit == 50
    assert limiter.overload_shrinks == 1


def test_limiter_gradient_shrink_on_latency_blowup():
    limiter = ConcurrencyLimiter(initial=100, decrease=0.5,
                                 latency_factor=2.0)
    limiter.try_acquire()
    limiter.release(latency=0.010)  # establishes the baseline
    limiter.try_acquire()
    limiter.release(latency=0.050)  # 5x baseline: gray slowness
    assert limiter.limit == 50
    assert limiter.overload_shrinks == 1


def test_limiter_grows_additively_on_clean_success():
    limiter = ConcurrencyLimiter(initial=4, max_limit=8)
    limiter.try_acquire()
    limiter.release(latency=0.010)  # baseline
    for _ in range(20):
        limiter.try_acquire()
        limiter.release(latency=0.010)
    assert 4 < limiter.limit <= 8  # +1/limit per success, AIMD probing


def test_limiter_respects_min_and_max():
    limiter = ConcurrencyLimiter(initial=2, min_limit=2, max_limit=4,
                                 decrease=0.5)
    limiter.try_acquire()
    limiter.release(overloaded=True)
    assert limiter.limit == 2  # clamped at min


def test_limiter_validation():
    with pytest.raises(ConfigurationError):
        ConcurrencyLimiter(initial=0)
    with pytest.raises(ConfigurationError):
        ConcurrencyLimiter(initial=8, min_limit=9)
    with pytest.raises(ConfigurationError):
        ConcurrencyLimiter(decrease=1.0)
    with pytest.raises(ConfigurationError):
        ConcurrencyLimiter(latency_factor=1.0)
    with pytest.raises(ConfigurationError):
        ConcurrencyLimiter(smoothing=1.0)


# -- HedgedCall -----------------------------------------------------------


def make_attempt(latencies, failures=()):
    """An attempt fn mapping target -> (target, latency) with scripted
    per-target failures."""
    def attempt(target):
        if target in failures:
            exc = NodeUnavailableError(f"{target} down")
            exc.simulated_latency = 0.002
            raise exc
        return f"from-{target}", latencies[target]
    return attempt


def test_hedge_uses_fallback_delay_until_warmup():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.05, warmup=10)
    assert hedge.hedge_delay() == 0.05


def test_hedge_fast_primary_never_hedges():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.05, warmup=1)
    attempt = make_attempt({"a": 0.002, "b": 0.002})
    target, result, latency, hedged = hedge.run(["a", "b"], attempt)
    assert (target, result, hedged) == ("a", "from-a", False)
    assert latency == 0.002
    assert hedge.launched == 0


def test_hedge_backup_wins_against_slow_primary():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.005, warmup=50)
    attempt = make_attempt({"a": 0.100, "b": 0.002})
    target, result, latency, hedged = hedge.run(["a", "b"], attempt)
    assert (target, result, hedged) == ("b", "from-b", True)
    # backup fired at the 5ms delay and took 2ms: effective 7ms << 100ms
    assert latency == pytest.approx(0.007)
    assert hedge.launched == 1
    assert hedge.backup_wins == 1


def test_hedge_slow_backup_loses_to_primary():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.005, warmup=50)
    attempt = make_attempt({"a": 0.010, "b": 0.100})
    target, result, latency, hedged = hedge.run(["a", "b"], attempt)
    assert (target, hedged) == ("a", True)   # hedge fired but lost
    assert latency == 0.010
    assert hedge.backup_wins == 0


def test_hedge_doubles_as_failover_on_primary_failure():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.005, warmup=50)
    attempt = make_attempt({"a": 0.1, "b": 0.002}, failures={"a"})
    target, result, latency, hedged = hedge.run(["a", "b"], attempt)
    assert (target, result, hedged) == ("b", "from-b", True)
    # burned the primary's 2ms failure latency, then the backup's 2ms
    assert latency == pytest.approx(0.004)


def test_hedge_backup_failure_keeps_primary_result():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.005, warmup=50)
    attempt = make_attempt({"a": 0.100, "b": 0.0}, failures={"b"})
    target, result, latency, hedged = hedge.run(["a", "b"], attempt)
    assert (target, result, hedged) == ("a", "from-a", True)
    assert latency == 0.100


def test_hedge_single_target_failure_propagates():
    hedge = HedgedCall()
    attempt = make_attempt({}, failures={"a"})
    with pytest.raises(NodeUnavailableError):
        hedge.run(["a"], attempt)
    with pytest.raises(ConfigurationError):
        hedge.run([], attempt)


def test_hedge_delay_tracks_p99_of_observed_latencies():
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.5, warmup=20)
    attempt = make_attempt({"a": 0.010})
    for _ in range(100):
        hedge.run(["a"], attempt)
    assert hedge.hedge_delay() == pytest.approx(0.010, rel=0.2)


def test_hedge_delay_median_clamp_survives_persistent_gray_failure():
    # a limping replica serves ~10% of reads 50x slow.  The raw p99
    # converges to the slow latency — which would disable the hedge
    # exactly when it matters.  The median clamp keeps the delay near
    # 3x the healthy median instead.
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.005, warmup=20,
                       median_multiplier=3.0)
    for i in range(200):
        hedge.histogram.record(0.500 if i % 10 == 0 else 0.010)
    assert hedge.hedge_delay() == pytest.approx(0.030, rel=0.2)


def test_hedge_validation():
    with pytest.raises(ConfigurationError):
        HedgedCall(min_delay=-0.001)
    with pytest.raises(ConfigurationError):
        HedgedCall(min_delay=0.01, fallback_delay=0.005)
    with pytest.raises(ConfigurationError):
        HedgedCall(median_multiplier=1.0)
