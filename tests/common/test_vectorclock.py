"""Vector clock semantics (Voldemort §II.B)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.vectorclock import Occurred, VectorClock, prune_obsolete


def test_empty_clocks_are_equal():
    assert VectorClock().compare(VectorClock()) is Occurred.EQUAL


def test_increment_creates_new_clock():
    base = VectorClock()
    bumped = base.incremented(1)
    assert base.counter_of(1) == 0
    assert bumped.counter_of(1) == 1
    assert bumped.compare(base) is Occurred.AFTER
    assert base.compare(bumped) is Occurred.BEFORE


def test_concurrent_writes_detected():
    base = VectorClock().incremented(1)
    a = base.incremented(1)
    b = base.incremented(2)
    assert a.compare(b) is Occurred.CONCURRENT
    assert b.compare(a) is Occurred.CONCURRENT


def test_merge_dominates_both_parents():
    a = VectorClock().incremented(1).incremented(1)
    b = VectorClock().incremented(2)
    merged = a.merged(b)
    assert merged.descends_from(a)
    assert merged.descends_from(b)


def test_positive_counters_enforced():
    with pytest.raises(ValueError):
        VectorClock({1: 0})


def test_prune_obsolete_keeps_concurrent_frontier():
    base = VectorClock().incremented(1)
    newer = base.incremented(1)
    sibling = base.incremented(2)
    survivors = prune_obsolete([(base, "old"), (newer, "new"), (sibling, "side")])
    values = {v for _, v in survivors}
    assert values == {"new", "side"}


def test_prune_obsolete_deduplicates_equal_versions():
    clock = VectorClock().incremented(1)
    survivors = prune_obsolete([(clock, "a"), (clock, "a")])
    assert len(survivors) == 1


def test_repr_is_stable():
    clock = VectorClock().incremented(2).incremented(1)
    assert repr(clock) == "VectorClock({1:1, 2:1})"


# -- property-based laws ----------------------------------------------------

clock_entries = st.dictionaries(st.integers(0, 6), st.integers(1, 5), max_size=5)


@given(clock_entries, clock_entries)
def test_compare_antisymmetry(a_entries, b_entries):
    a, b = VectorClock(a_entries), VectorClock(b_entries)
    relation = a.compare(b)
    inverse = b.compare(a)
    expected = {
        Occurred.BEFORE: Occurred.AFTER,
        Occurred.AFTER: Occurred.BEFORE,
        Occurred.EQUAL: Occurred.EQUAL,
        Occurred.CONCURRENT: Occurred.CONCURRENT,
    }[relation]
    assert inverse is expected


@given(clock_entries, clock_entries)
def test_merge_is_least_upper_bound(a_entries, b_entries):
    a, b = VectorClock(a_entries), VectorClock(b_entries)
    merged = a.merged(b)
    assert merged.descends_from(a)
    assert merged.descends_from(b)
    # least: every entry equals one of the parents' counters
    for node, counter in merged.entries.items():
        assert counter == max(a.counter_of(node), b.counter_of(node))


@given(clock_entries, st.integers(0, 6))
def test_increment_always_moves_forward(entries, node):
    clock = VectorClock(entries)
    assert clock.incremented(node).compare(clock) is Occurred.AFTER


@given(st.lists(clock_entries, max_size=6))
def test_prune_survivors_pairwise_concurrent_or_equalfree(entry_sets):
    versions = [(VectorClock(e), i) for i, e in enumerate(entry_sets)]
    survivors = prune_obsolete(versions)
    for i, (clock_a, _) in enumerate(survivors):
        for j, (clock_b, _) in enumerate(survivors):
            if i != j:
                assert clock_a.compare(clock_b) is Occurred.CONCURRENT
