"""The client API: transforms, optimistic updates, serializers."""

import json

import pytest

from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.client import StoreClient, json_client, last_writer_wins
from repro.voldemort.versioned import Versioned


@pytest.fixture
def cluster():
    built = VoldemortCluster(num_nodes=3, partitions_per_node=4)
    built.define_store(StoreDefinition("kv", 3, 2, 2))
    return built


@pytest.fixture
def client(cluster):
    return StoreClient(RoutedStore(cluster, "kv"))


def test_get_absent_returns_empty(client):
    assert client.get(b"ghost") == []
    assert client.get_value(b"ghost", default="none") == "none"


def test_put_then_get(client):
    client.put(b"k", b"hello")
    versions = client.get(b"k")
    assert len(versions) == 1
    assert versions[0].value == b"hello"
    assert client.get_value(b"k") == b"hello"


def test_put_autoincrements_version(client):
    clock1 = client.put(b"k", b"v1")
    clock2 = client.put(b"k", b"v2")
    assert clock2.dominates(clock1)
    assert client.get_value(b"k") == b"v2"


def test_stale_clock_rejected(client):
    from repro.common.errors import ObsoleteVersionError
    clock1 = client.put(b"k", b"v1")
    client.put(b"k", b"v2")
    with pytest.raises(ObsoleteVersionError):
        client.put(b"k", b"v3", version=clock1)


def test_delete(client):
    client.put(b"k", b"v")
    assert client.delete(b"k")
    assert client.get(b"k") == []
    assert not client.delete(b"k")


def test_string_values_accepted(client):
    client.put(b"k", "text")
    assert client.get_value(b"k") == b"text"


def test_default_serializer_rejects_other_types(client):
    with pytest.raises(TypeError):
        client.put(b"k", 123)


def test_json_client_roundtrip(cluster):
    client = json_client(RoutedStore(cluster, "kv"))
    client.put(b"member:1", {"companies": [10, 20]})
    assert client.get_value(b"member:1") == {"companies": [10, 20]}


def test_transformed_put_appends_server_side(cluster):
    client = json_client(RoutedStore(cluster, "kv"))
    client.put(b"follows", [])
    client.put(b"follows", None, transform=("list_append", 42))
    client.put(b"follows", None, transform=("list_append", 43, 44))
    assert client.get_value(b"follows") == [42, 43, 44]


def test_transformed_get_returns_sublist(cluster):
    client = json_client(RoutedStore(cluster, "kv"))
    client.put(b"follows", [1, 2, 3, 4, 5])
    versions = client.get(b"follows", transform=("list_slice", 1, 3))
    assert json.loads(versions[0].value) == [2, 3]
    # underlying value untouched
    assert client.get_value(b"follows") == [1, 2, 3, 4, 5]


def test_transform_list_remove(cluster):
    client = json_client(RoutedStore(cluster, "kv"))
    client.put(b"follows", [1, 2, 3, 2])
    client.put(b"follows", None, transform=("list_remove", 2))
    assert client.get_value(b"follows") == [1, 3]


def test_counter_transform(cluster):
    client = StoreClient(RoutedStore(cluster, "kv"))
    client.put(b"count", b"0")
    client.put(b"count", None, transform=("counter_add", 5))
    client.put(b"count", None, transform=("counter_add",))
    assert client.get_value(b"count") == b"6"


def test_apply_update_retries_on_conflict(client):
    client.put(b"counter", b"0")
    conflicts = {"remaining": 2}

    def increment(c: StoreClient):
        versions = c.get(b"counter")
        current = versions[0]
        value = int(current.value) + 1
        clock = current.clock
        if conflicts["remaining"] > 0:
            # simulate a concurrent writer slipping in
            conflicts["remaining"] -= 1
            c.put(b"counter", str(value).encode())
            # now our original clock is stale
            from repro.common.errors import ObsoleteVersionError
            raise ObsoleteVersionError("lost the race")
        c.put(b"counter", str(value).encode(), version=clock)

    assert client.apply_update(increment, retries=3)
    assert int(client.get_value(b"counter")) == 3


def test_apply_update_gives_up_after_retries(client):
    from repro.common.errors import ObsoleteVersionError

    def always_conflicts(c):
        raise ObsoleteVersionError("busy key")

    assert not client.apply_update(always_conflicts, retries=2)


def test_get_resolved_merges_siblings(cluster):
    client = StoreClient(RoutedStore(cluster, "kv"))
    # create two concurrent versions directly at the engines
    base = Versioned.initial(b"base", 0)
    client.put_versioned(b"k", base)
    left = base.next_version(b"left", 1)
    right = base.next_version(b"zright", 2)
    routed = client._routed
    for node_id in routed.replica_nodes(b"k"):
        engine = cluster.server_for(node_id).engine("kv")
        engine.put(b"k", left)
        engine.put(b"k", right)
    resolved = client.get_resolved(b"k")
    assert resolved.value == b"zright"  # lww tie-break by value
    # the merged clock dominates both siblings
    assert resolved.clock.descends_from(left.clock)
    assert resolved.clock.descends_from(right.clock)


def test_last_writer_wins_resolver():
    a = Versioned.initial(b"a", 1)
    b = a.next_version(b"b", 1)
    assert last_writer_wins([a, b]) is b
