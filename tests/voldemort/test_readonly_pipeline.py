"""Figure II.3: the build / pull / swap data cycle end to end."""

import pytest

from repro.common.errors import ConfigurationError, KeyNotFoundError
from repro.hadoop import MiniHDFS
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.readonly_pipeline import ReadOnlyPipelineController


@pytest.fixture
def setup(tmp_path):
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition(
        "pymk", replication_factor=2, required_reads=1, required_writes=1,
        engine_type="read-only"))
    hdfs = MiniHDFS()
    controller = ReadOnlyPipelineController(cluster, hdfs, "pymk")
    return cluster, hdfs, controller


def recommendations(count=100):
    return [(f"member-{i}".encode(), f"recs-{i}".encode()) for i in range(count)]


def test_requires_readonly_store(tmp_path):
    cluster = VoldemortCluster(num_nodes=2, partitions_per_node=2,
                               data_root=str(tmp_path))
    cluster.define_store(StoreDefinition("rw", 1, 1, 1))
    with pytest.raises(ConfigurationError):
        ReadOnlyPipelineController(cluster, MiniHDFS(), "rw")


def test_build_writes_per_node_files(setup):
    cluster, hdfs, controller = setup
    build = controller.build(recommendations())
    assert build.version == 1
    for node_id in cluster.ring.nodes:
        assert hdfs.exists(f"{build.hdfs_dir}/node-{node_id}.data")
        assert hdfs.exists(f"{build.hdfs_dir}/node-{node_id}.index")
    # replication factor 2: total records across nodes = 2x input
    assert sum(build.records_per_node.values()) == 200


def test_full_cycle_serves_all_keys(setup):
    cluster, _, controller = setup
    controller.run_cycle(recommendations())
    routed = RoutedStore(cluster, "pymk")
    for key, value in recommendations():
        frontier, _ = routed.get(key)
        assert frontier[0].value == value


def test_swap_before_pull_rejected(setup):
    _, _, controller = setup
    build = controller.build(recommendations(10))
    with pytest.raises(ConfigurationError):
        controller.swap(build)


def test_new_deployment_replaces_old(setup):
    cluster, _, controller = setup
    controller.run_cycle([(b"m1", b"old")])
    controller.run_cycle([(b"m1", b"new"), (b"m2", b"added")])
    routed = RoutedStore(cluster, "pymk")
    assert routed.get(b"m1")[0][0].value == b"new"
    assert routed.get(b"m2")[0][0].value == b"added"


def test_rollback_restores_previous_dataset(setup):
    cluster, _, controller = setup
    controller.run_cycle([(b"m1", b"v1-data")])
    controller.run_cycle([(b"m1", b"v2-data")])
    restored = controller.rollback()
    assert restored == 1
    routed = RoutedStore(cluster, "pymk")
    assert routed.get(b"m1")[0][0].value == b"v1-data"


def test_keys_missing_after_old_version_lacks_them(setup):
    cluster, _, controller = setup
    controller.run_cycle([(b"m1", b"v1")])
    controller.run_cycle([(b"m1", b"v1"), (b"m2", b"v2")])
    controller.rollback()
    routed = RoutedStore(cluster, "pymk")
    with pytest.raises(KeyNotFoundError):
        routed.get(b"m2")


def test_throttled_pull_advances_sim_clock(setup):
    cluster, _, controller = setup
    controller.pull_throttle_bytes_per_sec = 10_000
    start = cluster.clock.now()
    controller.run_cycle(recommendations(200))
    assert cluster.clock.now() > start


def test_replicas_allow_reads_with_node_down(setup):
    cluster, _, controller = setup
    controller.run_cycle(recommendations(50))
    routed = RoutedStore(cluster, "pymk")
    replicas = routed.replica_nodes(b"member-0")
    cluster.network.failures.crash(cluster.node_name(replicas[0]))
    frontier, _ = routed.get(b"member-0")
    assert frontier[0].value == b"recs-0"
