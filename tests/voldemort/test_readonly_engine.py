"""Read-only engine: index format, binary search, swap/rollback."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, KeyNotFoundError
from repro.voldemort.engines import ReadOnlyStorageEngine, build_store_files
from repro.voldemort.engines.readonly import INDEX_ENTRY, write_version_dir


def make_engine(tmp_path, pairs, version=1):
    index, data = build_store_files(pairs)
    store_dir = str(tmp_path / "store")
    write_version_dir(store_dir, version, index, data)
    return ReadOnlyStorageEngine(store_dir)


def test_build_files_sorted_by_md5():
    pairs = [(f"key-{i}".encode(), b"v") for i in range(50)]
    index, data = build_store_files(pairs)
    assert len(index) == 50 * INDEX_ENTRY.size
    digests = [index[i * 24:i * 24 + 16] for i in range(50)]
    assert digests == sorted(digests)


def test_duplicate_keys_rejected_at_build():
    with pytest.raises(ConfigurationError):
        build_store_files([(b"k", b"1"), (b"k", b"2")])


def test_get_all_keys(tmp_path):
    pairs = [(f"member-{i}".encode(), f"value-{i}".encode()) for i in range(200)]
    engine = make_engine(tmp_path, pairs)
    for key, value in pairs:
        assert engine.get(key)[0].value == value
    engine.close()


def test_missing_key(tmp_path):
    engine = make_engine(tmp_path, [(b"present", b"v")])
    with pytest.raises(KeyNotFoundError):
        engine.get(b"absent")
    engine.close()


def test_empty_store(tmp_path):
    engine = make_engine(tmp_path, [])
    assert engine.entry_count == 0
    with pytest.raises(KeyNotFoundError):
        engine.get(b"anything")
    engine.close()


def test_put_rejected(tmp_path):
    engine = make_engine(tmp_path, [(b"k", b"v")])
    from repro.voldemort.versioned import Versioned
    with pytest.raises(ConfigurationError):
        engine.put(b"k", Versioned.initial(b"x", 1))
    engine.close()


def test_swap_to_new_version(tmp_path):
    engine = make_engine(tmp_path, [(b"k", b"old")], version=1)
    index, data = build_store_files([(b"k", b"new")])
    write_version_dir(engine.store_dir, 2, index, data)
    engine.swap(2)
    assert engine.get(b"k")[0].value == b"new"
    assert engine.current_version == 2
    engine.close()


def test_rollback_restores_previous(tmp_path):
    engine = make_engine(tmp_path, [(b"k", b"v1")], version=1)
    index, data = build_store_files([(b"k", b"v2")])
    write_version_dir(engine.store_dir, 2, index, data)
    engine.swap(2)
    restored = engine.rollback()
    assert restored == 1
    assert engine.get(b"k")[0].value == b"v1"
    engine.close()


def test_rollback_without_older_version_fails(tmp_path):
    engine = make_engine(tmp_path, [(b"k", b"v")])
    with pytest.raises(ConfigurationError):
        engine.rollback()
    engine.close()


def test_opens_latest_version_on_start(tmp_path):
    store_dir = str(tmp_path / "store")
    for version, value in ((1, b"a"), (3, b"c"), (2, b"b")):
        index, data = build_store_files([(b"k", value)])
        write_version_dir(store_dir, version, index, data)
    engine = ReadOnlyStorageEngine(store_dir)
    assert engine.current_version == 3
    assert engine.get(b"k")[0].value == b"c"
    engine.close()


def test_incomplete_version_rejected(tmp_path):
    store_dir = str(tmp_path / "store")
    os.makedirs(os.path.join(store_dir, "version-1"))
    with pytest.raises(ConfigurationError):
        ReadOnlyStorageEngine(store_dir).swap(1)


def test_delete_version(tmp_path):
    engine = make_engine(tmp_path, [(b"k", b"v1")], version=1)
    index, data = build_store_files([(b"k", b"v2")])
    write_version_dir(engine.store_dir, 2, index, data)
    engine.swap(2)
    engine.delete_version(1)
    assert engine.versions_on_disk() == [2]
    with pytest.raises(ConfigurationError):
        engine.delete_version(2)
    engine.close()


def test_keys_iteration(tmp_path):
    pairs = [(f"k{i}".encode(), b"v") for i in range(10)]
    engine = make_engine(tmp_path, pairs)
    assert sorted(engine.keys()) == sorted(k for k, _ in pairs)
    engine.close()


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.binary(min_size=1, max_size=32),
                       st.binary(max_size=128), min_size=1, max_size=50))
def test_readonly_roundtrip_property(tmp_path_factory, mapping):
    directory = tmp_path_factory.mktemp("ro")
    index, data = build_store_files(mapping.items())
    store_dir = str(directory / "store")
    write_version_dir(store_dir, 1, index, data)
    engine = ReadOnlyStorageEngine(store_dir)
    try:
        for key, value in mapping.items():
            assert engine.get(key)[0].value == value
    finally:
        engine.close()
