"""Chord baseline vs full-topology routing (EXP-V4 substrate)."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.voldemort.chord import ChordRing, FullTopologyRouter, chord_hash


def names(n):
    return [f"node-{i:03d}" for i in range(n)]


def test_empty_ring_rejected():
    with pytest.raises(ConfigurationError):
        ChordRing([])
    with pytest.raises(ConfigurationError):
        FullTopologyRouter([])


def test_single_node_owns_everything():
    ring = ChordRing(["only"])
    owner, hops = ring.lookup(b"any-key")
    assert owner == "only"
    assert hops == 0


def test_chord_and_full_topology_agree_on_owner():
    ring = ChordRing(names(32))
    router = FullTopologyRouter(names(32))
    for i in range(200):
        key = f"key-{i}".encode()
        chord_owner, _ = ring.lookup(key)
        full_owner, _ = router.lookup(key)
        assert chord_owner == full_owner


def test_full_topology_is_always_one_hop():
    router = FullTopologyRouter(names(64))
    assert all(router.lookup(f"k{i}".encode())[1] == 1 for i in range(100))


def test_chord_hops_scale_logarithmically():
    def mean_hops(n):
        ring = ChordRing(names(n))
        start = names(n)[0]
        total = sum(ring.lookup(f"key-{i}".encode(), start_name=start)[1]
                    for i in range(300))
        return total / 300

    small, large = mean_hops(8), mean_hops(128)
    assert large > small  # more nodes, more hops
    assert large <= 2 * math.log2(128)  # classic Chord bound


def test_lookup_from_unknown_node_rejected():
    ring = ChordRing(names(4))
    with pytest.raises(ConfigurationError):
        ring.lookup(b"k", start_name="ghost")


def test_chord_hash_deterministic():
    assert chord_hash(b"x") == chord_hash(b"x")
