"""Overload behaviour of quorum routing: front-door admission, shed vs
breaker ordering, replica sheds, least-loaded selection, hedged reads."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ServerOverloadedError
from repro.common.overload import (
    PRIORITY_BULK,
    PRIORITY_LIVE,
    AdmissionController,
    HedgedCall,
)
from repro.simnet import SimNetwork, fixed_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster


def make_cluster(nodes=4, n=3, r=2, w=2, **kwargs):
    cluster = VoldemortCluster(num_nodes=nodes, partitions_per_node=4,
                               **kwargs)
    cluster.define_store(StoreDefinition(
        "test", replication_factor=n, required_reads=r, required_writes=w))
    return cluster


def drain_to(admission, tokens):
    """Spend live-class admissions until exactly ``tokens`` remain."""
    while admission.bucket.available > tokens:
        assert admission.try_admit(PRIORITY_LIVE)


# -- front-door admission ------------------------------------------------


def test_shed_read_happens_before_any_replica_work():
    cluster = make_cluster()
    setup = RoutedStore(cluster, "test")
    setup.put(b"key", Versioned.initial(b"v", 0))

    admission = AdmissionController(cluster.clock, rate=0.001, burst=2.0)
    routed = RoutedStore(cluster, "test", admission=admission)
    routed.get(b"key")          # spends the admission budget
    drain_to(admission, 0.0)
    network = cluster.network
    hops_before = network.hops_delivered + network.hops_failed
    with pytest.raises(ServerOverloadedError) as exc_info:
        routed.get(b"key")
    assert exc_info.value.retry_after > 0
    # shed at the front door: zero network traffic, zero breaker or
    # detector outcomes — the cluster is fine, the client is overloaded
    assert network.hops_delivered + network.hops_failed == hops_before
    assert routed.detector.nodes_marked_down == 0
    assert all(b.state == "closed" for b in routed._breakers.values())


def test_shed_write_uses_write_class():
    cluster = make_cluster()
    admission = AdmissionController(cluster.clock, rate=0.001, burst=10.0)
    routed = RoutedStore(cluster, "test", admission=admission)
    # 1 token left: below the write floor (0.15 * 10 = 1.5), above live's
    drain_to(admission, 1.0)
    with pytest.raises(ServerOverloadedError):
        routed.put(b"key", Versioned.initial(b"v", 0))
    routed_reads_still_flow = admission.try_admit(PRIORITY_LIVE)
    assert routed_reads_still_flow


# -- replica-level sheds -------------------------------------------------


def saturate(network, node_name, capacity):
    for _ in range(capacity):
        network.invoke("filler", node_name, lambda: None)


def test_replica_shed_records_success_not_failure():
    network = SimNetwork(latency_model=fixed_latency(0.0002))
    cluster = make_cluster(network=network)
    routed = RoutedStore(cluster, "test")
    routed.put(b"key", Versioned.initial(b"v", 0))
    victim = routed.replica_nodes(b"key")[0]
    network.add_server_queue(cluster.node_name(victim),
                             service_time=0.01, capacity=1)
    saturate(network, cluster.node_name(victim), 1)
    outcome = routed._call_get(victim, b"key", None)
    assert outcome is None                       # shed: no answer
    assert routed.metrics.counters["get.replica_shed"].value == 1
    # the replica is alive — shed is an *answered* request
    assert routed.detector.is_available(victim)
    assert routed.detector.success_ratio(victim) == 1.0
    assert routed.breaker_for(victim).state == "closed"


def test_write_treats_shed_replica_as_failed_and_succeeds_on_quorum():
    network = SimNetwork(latency_model=fixed_latency(0.0002))
    cluster = make_cluster(n=3, w=2, network=network)
    routed = RoutedStore(cluster, "test", enable_hinted_handoff=False)
    victim = routed.replica_nodes(b"key")[0]
    network.add_server_queue(cluster.node_name(victim),
                             service_time=0.01, capacity=1)
    saturate(network, cluster.node_name(victim), 1)
    routed.put(b"key", Versioned.initial(b"v", 0))   # W=2 of the healthy 2
    assert routed.metrics.counters["put.replica_shed"].value == 1
    assert routed.detector.is_available(victim)
    frontier, _ = routed.get(b"key")
    assert frontier[0].value == b"v"


# -- least-loaded replica selection --------------------------------------


def test_reads_prefer_least_loaded_replicas():
    network = SimNetwork(latency_model=fixed_latency(0.0002))
    cluster = make_cluster(network=network)
    routed = RoutedStore(cluster, "test")
    replicas = routed.replica_nodes(b"key")
    for node_id in replicas:
        network.add_server_queue(cluster.node_name(node_id),
                                 service_time=0.01, capacity=50)
    saturate(network, cluster.node_name(replicas[0]), 10)
    ordered = routed._ordered_by_availability(replicas)
    assert ordered[-1] == replicas[0]     # deepest queue sorts last
    assert set(ordered) == set(replicas)


# -- read repair under bulk pressure -------------------------------------


def test_read_repair_sheds_as_bulk_class():
    cluster = make_cluster(nodes=3, n=3, r=2, w=2)
    routed = RoutedStore(cluster, "test")
    first = Versioned.initial(b"v1", 0)
    routed.put(b"key", first)
    replicas = routed.replica_nodes(b"key")
    cluster.network.failures.crash(cluster.node_name(replicas[2]))
    second = first.next_version(b"v2", 0)
    admission = AdmissionController(cluster.clock, rate=0.001, burst=10.0)
    relaxed = RoutedStore(cluster, "test", enable_hinted_handoff=False,
                          admission=admission)
    relaxed.definition = StoreDefinition("test", 3, 2, 2)
    relaxed.put(b"key", second)
    cluster.network.failures.recover(cluster.node_name(replicas[2]))
    # drain to 2 tokens: live reads admit (floor 0), bulk repair (floor
    # 0.4 * 10 = 4) sheds
    drain_to(admission, 2.0)
    relaxed.definition = StoreDefinition("test", 3, 3, 2)
    frontier, _ = relaxed.get(b"key")
    assert frontier[0].value == b"v2"
    assert relaxed.metrics.counters["read_repair.shed"].value >= 1
    stale = cluster.server_for(replicas[2]).engine("test").get(b"key")
    assert stale[0].value == b"v1"        # repair was shed, not done


# -- hedged reads --------------------------------------------------------


def run_reads(hedged, reads=1200):
    network = SimNetwork(seed=3, latency_model=fixed_latency(0.0008))
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4,
                               network=network, seed=3)
    cluster.define_store(StoreDefinition(
        "test", replication_factor=3, required_reads=1, required_writes=1))
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.01,
                       warmup=20) if hedged else None
    routed = RoutedStore(cluster, "test", hedge=hedge)
    keys = [b"k%03d" % i for i in range(40)]
    for key in keys:
        routed.put(key, Versioned.initial(b"v", 0))
    network.failures.limp(cluster.node_name(0), 20.0)
    latencies = sorted(routed.get(keys[i % len(keys)])[1]
                       for i in range(reads))
    p99 = latencies[int(len(latencies) * 0.99)]
    return p99, routed, hedge


def test_hedged_reads_cut_tail_latency_under_limping_replica():
    unhedged_p99, _, _ = run_reads(hedged=False)
    hedged_p99, routed, hedge = run_reads(hedged=True)
    assert hedge.launched > 0
    assert hedge.backup_wins > 0
    assert routed.metrics.counters["get.hedged"].value == hedge.launched
    assert hedged_p99 * 3 <= unhedged_p99    # the ISSUE acceptance bar


def test_hedge_returns_correct_values_and_keeps_detector_clean():
    _, routed, _ = run_reads(hedged=True)
    frontier, _ = routed.get(b"k000")
    assert frontier[0].value == b"v"
    assert routed.detector.nodes_marked_down == 0
