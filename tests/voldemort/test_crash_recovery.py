"""Node kill + restart: acked keys, vector clocks, and hints survive."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import KeyNotFoundError
from repro.simnet.disk import SimDisk
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)
from repro.voldemort.server import Hint


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def disk(clock):
    return SimDisk(clock=clock, seed=3)


@pytest.fixture
def cluster(clock, disk):
    built = VoldemortCluster(num_nodes=4, partitions_per_node=4,
                             clock=clock, disk=disk)
    built.define_store(StoreDefinition("s", replication_factor=3,
                                       required_reads=2, required_writes=2,
                                       engine_type="log-structured"))
    return built


class TestEngineRecovery:
    def test_acked_keys_survive_kill_restart(self, cluster, disk):
        routed = RoutedStore(cluster, "s")
        victim = routed.replica_nodes(b"key-0")[0]
        for i in range(10):
            routed.put(b"key-%d" % i, Versioned.initial(b"value-%d" % i, 0))

        lost = cluster.kill_node(victim)
        assert lost == 0  # every acked write was fsynced
        cluster.restart_node(victim)

        server = cluster.server_for(victim)
        for i in range(10):
            key = b"key-%d" % i
            if victim not in routed.replica_nodes(key):
                continue
            versions = server.engine("s").get(key)
            assert versions[0].value == b"value-%d" % i

    def test_vector_clocks_survive_restart(self, cluster):
        routed = RoutedStore(cluster, "s")
        routed.put(b"k", Versioned.initial(b"v1", 0))
        frontier, _ = routed.get(b"k")
        routed.put(b"k", Versioned(b"v2", frontier[0].clock.incremented(0)))
        victim = routed.replica_nodes(b"k")[0]
        expected_clock = cluster.server_for(victim).engine("s").get(b"k")[0].clock

        cluster.kill_node(victim)
        cluster.restart_node(victim)

        recovered = cluster.server_for(victim).engine("s").get(b"k")
        assert len(recovered) == 1
        assert recovered[0].value == b"v2"
        assert recovered[0].clock.entries == expected_clock.entries

    def test_torn_tail_never_yields_partial_record(self, cluster, disk):
        routed = RoutedStore(cluster, "s")
        routed.put(b"stable", Versioned.initial(b"stable-value", 0))
        victim = routed.replica_nodes(b"stable")[0]
        engine = cluster.server_for(victim).engine("s")
        # bypass the quorum to write an unsynced record on one node
        engine._sync = False
        engine.put(b"at-risk", Versioned.initial(b"gone", 0))
        disk.arm_torn_write(cluster.node_name(victim),
                            path="s/data.log", keep_bytes=9)
        cluster.kill_node(victim)
        cluster.restart_node(victim)

        recovered = cluster.server_for(victim).engine("s")
        assert recovered.torn_bytes_truncated > 0
        assert recovered.get(b"stable")[0].value == b"stable-value"
        with pytest.raises(KeyNotFoundError):
            recovered.get(b"at-risk")  # lost whole, never partial


class TestSlopStoreRecovery:
    def park_a_hint(self, cluster):
        routed = RoutedStore(cluster, "s")
        dead = routed.replica_nodes(b"key")[2]
        cluster.network.failures.crash(cluster.node_name(dead))
        routed.put(b"key", Versioned.initial(b"v", 0))
        holders = [n for n, s in cluster.servers.items() if s.hints]
        assert holders
        return dead, holders[0]

    def test_outstanding_hints_survive_restart(self, cluster):
        dead, holder = self.park_a_hint(cluster)
        hint_before = cluster.server_for(holder).hints[0]

        cluster.kill_node(holder)
        cluster.restart_node(holder)

        server = cluster.server_for(holder)
        assert len(server.hints) == 1
        recovered = server.hints[0]
        assert isinstance(recovered, Hint)
        assert recovered.store == hint_before.store
        assert recovered.key == hint_before.key
        assert recovered.destination_node == dead
        assert recovered.versioned.value == hint_before.versioned.value
        assert recovered.versioned.clock.entries == \
            hint_before.versioned.clock.entries

    def test_delivered_hints_do_not_resurrect(self, cluster):
        dead, holder = self.park_a_hint(cluster)
        cluster.network.failures.recover(cluster.node_name(dead))
        assert cluster.server_for(holder).deliver_hints(dead) == 1

        cluster.kill_node(holder)
        cluster.restart_node(holder)
        assert cluster.server_for(holder).hints == []

    def test_redelivery_after_restart(self, cluster):
        dead, holder = self.park_a_hint(cluster)
        cluster.kill_node(holder)
        cluster.restart_node(holder)
        cluster.network.failures.recover(cluster.node_name(dead))

        assert cluster.server_for(holder).deliver_hints(dead) == 1
        value = cluster.server_for(dead).engine("s").get(b"key")
        assert value[0].value == b"v"


class TestHintDeliveryRaces:
    def test_hint_stored_during_delivery_survives(self, cluster):
        """A hint queued while the delivery fsync is in flight must be
        carried over, not dropped with the delivered batch."""
        routed = RoutedStore(cluster, "s")
        dead = routed.replica_nodes(b"key")[2]
        cluster.network.failures.crash(cluster.node_name(dead))
        routed.put(b"key", Versioned.initial(b"v", 0))
        holder = next(n for n, s in cluster.servers.items() if s.hints)
        server = cluster.server_for(holder)
        parked = server.hints[0]
        late = Hint(parked.store, b"late-key", parked.versioned, dead)
        cluster.network.failures.recover(cluster.node_name(dead))

        orig_fsync = server._slop_wal.fsync

        def racing_fsync():
            server._slop_wal.fsync = orig_fsync  # race only once
            server.store_hint(late)  # arrives mid-delivery
            orig_fsync()

        server._slop_wal.fsync = racing_fsync
        assert server.deliver_hints(dead) == 1
        assert [h.key for h in server.hints] == [b"late-key"]
        assert len(server.hints) == len(server._hint_seqs)
