"""Versioned value semantics."""

from repro.common.vectorclock import VectorClock
from repro.voldemort import Versioned


def test_initial_version_attributed_to_node():
    versioned = Versioned.initial(b"v", node_id=3)
    assert versioned.clock.counter_of(3) == 1
    assert not versioned.is_tombstone


def test_next_version_dominates():
    first = Versioned.initial(b"v1", 1)
    second = first.next_version(b"v2", 1)
    assert second.dominates(first)
    assert not first.dominates(second)


def test_concurrent_versions():
    base = Versioned.initial(b"v", 1)
    left = base.next_version(b"a", 1)
    right = base.next_version(b"b", 2)
    assert left.concurrent_with(right)


def test_tombstone():
    versioned = Versioned(None, VectorClock({1: 1}))
    assert versioned.is_tombstone
