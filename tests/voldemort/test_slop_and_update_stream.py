"""Slop pusher scheduling and the read-only update stream."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.hadoop import MiniHDFS
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)
from repro.voldemort.readonly_pipeline import ReadOnlyPipelineController
from repro.voldemort.slop import SlopPusherService


class TestSlopPusher:
    @pytest.fixture
    def cluster(self):
        built = VoldemortCluster(num_nodes=4, partitions_per_node=4)
        built.define_store(StoreDefinition("s", 3, 2, 2))
        return built

    def park_a_hint(self, cluster):
        routed = RoutedStore(cluster, "s")
        dead = routed.replica_nodes(b"key")[2]
        cluster.network.failures.crash(cluster.node_name(dead))
        routed.put(b"key", Versioned.initial(b"v", 0))
        return dead

    def test_interval_validation(self, cluster):
        with pytest.raises(ConfigurationError):
            SlopPusherService(cluster, interval=0)

    def test_sweeps_run_on_schedule(self, cluster):
        pusher = SlopPusherService(cluster, interval=5.0)
        pusher.start()
        cluster.clock.advance(26.0)
        assert pusher.sweeps == 5
        pusher.stop()
        cluster.clock.advance(20.0)
        assert pusher.sweeps == 5

    def test_hints_delivered_after_recovery(self, cluster):
        dead = self.park_a_hint(cluster)
        pusher = SlopPusherService(cluster, interval=5.0)
        pusher.start()
        assert pusher.outstanding_hints() == 1
        cluster.clock.advance(6.0)  # destination still down
        assert pusher.outstanding_hints() == 1
        cluster.network.failures.recover(cluster.node_name(dead))
        cluster.clock.advance(5.0)
        assert pusher.outstanding_hints() == 0
        assert pusher.hints_delivered == 1
        value = cluster.server_for(dead).engine("s").get(b"key")
        assert value[0].value == b"v"

    def test_push_once_is_idempotent(self, cluster):
        dead = self.park_a_hint(cluster)
        pusher = SlopPusherService(cluster)
        cluster.network.failures.recover(cluster.node_name(dead))
        assert pusher.push_once() == 1
        assert pusher.push_once() == 0


class TestUpdateStream:
    @pytest.fixture
    def controller(self, tmp_path):
        cluster = VoldemortCluster(num_nodes=2, partitions_per_node=4,
                                   data_root=str(tmp_path))
        cluster.define_store(StoreDefinition(
            "pymk", 2, 1, 1, engine_type="read-only"))
        return ReadOnlyPipelineController(cluster, MiniHDFS(), "pymk")

    def test_first_swap_reports_all_keys_added(self, controller):
        events = []
        controller.subscribe(events.append)
        controller.run_cycle([(b"a", b"1"), (b"b", b"2")])
        assert len(events) == 1
        event = events[0]
        assert event.version == 1
        assert event.previous_version is None
        assert event.keys_added == {b"a", b"b"}
        assert not event.keys_removed and not event.keys_changed

    def test_incremental_swap_reports_delta(self, controller):
        events = []
        controller.subscribe(events.append)
        controller.run_cycle([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        controller.run_cycle([(b"a", b"1"), (b"b", b"CHANGED"),
                              (b"d", b"4")])
        event = events[-1]
        assert event.previous_version == 1
        assert event.keys_added == {b"d"}
        assert event.keys_removed == {b"c"}
        assert event.keys_changed == {b"b"}
        assert event.total_delta == 3

    def test_rollback_event_inverts_delta(self, controller):
        events = []
        controller.subscribe(events.append)
        controller.run_cycle([(b"a", b"1")])
        controller.run_cycle([(b"a", b"2"), (b"b", b"1")])
        controller.rollback()
        event = events[-1]
        assert event.is_rollback
        assert event.version == 1
        assert event.keys_removed == {b"b"}
        assert event.keys_changed == {b"a"}

    def test_cache_invalidation_consumer(self, controller):
        """The motivating consumer: a cache that invalidates only the
        delta instead of flushing on every deployment."""
        cache = {b"a": "cached-a", b"b": "cached-b", b"c": "cached-c"}

        def invalidate(event):
            for key in event.keys_changed | event.keys_removed:
                cache.pop(key, None)

        controller.subscribe(invalidate)
        controller.run_cycle([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
        controller.run_cycle([(b"a", b"1"), (b"b", b"new"), (b"c", b"3")])
        assert cache == {b"a": "cached-a", b"c": "cached-c"}
