"""Multi-datacenter read locality: zone-proximity replica ordering."""

import pytest

from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster


@pytest.fixture
def cluster():
    # 6 nodes across 2 zones, zone-aware store spanning both
    built = VoldemortCluster(num_nodes=6, partitions_per_node=4, num_zones=2)
    built.define_store(StoreDefinition(
        "s", replication_factor=4, required_reads=1, required_writes=2,
        required_zones=2))
    return built


def zone_of(cluster, node_id):
    return cluster.ring.nodes[node_id].zone_id


def test_local_zone_replica_preferred(cluster):
    for zone in (0, 1):
        routed = RoutedStore(cluster, "s", client_zone=zone)
        key = b"key-%d" % zone
        routed.put(key, Versioned.initial(b"v-%d" % zone, 0))
        ordered = routed._ordered_by_availability(routed.replica_nodes(key))
        # with 4 replicas over 2 zones, the first read target is local
        assert zone_of(cluster, ordered[0]) == zone


def test_reads_hit_local_zone_servers(cluster):
    routed = RoutedStore(cluster, "s", client_zone=0)
    keys = [b"k-%d" % i for i in range(20)]
    for key in keys:
        routed.put(key, Versioned.initial(b"v", 0))
    served_before = {n: s.requests_served for n, s in cluster.servers.items()}
    for key in keys:
        routed.get(key)
    remote_reads = sum(
        cluster.servers[n].requests_served - served_before[n]
        for n in cluster.servers if zone_of(cluster, n) == 1)
    local_reads = sum(
        cluster.servers[n].requests_served - served_before[n]
        for n in cluster.servers if zone_of(cluster, n) == 0)
    assert remote_reads == 0  # R=1 and a local replica always exists
    assert local_reads == len(keys)


def test_failover_to_remote_zone(cluster):
    routed = RoutedStore(cluster, "s", client_zone=0)
    routed.put(b"key", Versioned.initial(b"v", 0))
    # crash every zone-0 node
    for node_id, node in cluster.ring.nodes.items():
        if node.zone_id == 0:
            cluster.network.failures.crash(cluster.node_name(node_id))
    # mark them down so ordering demotes them, then read from zone 1
    for _ in range(10):
        try:
            routed.get(b"key")
        except Exception:
            pass
    frontier, _ = routed.get(b"key")
    assert frontier[0].value == b"v"


def test_no_zone_preference_without_client_zone(cluster):
    routed = RoutedStore(cluster, "s")
    replicas = routed.replica_nodes(b"key")
    assert routed._ordered_by_availability(replicas) == replicas
