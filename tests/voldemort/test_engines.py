"""Storage engines: multi-version contract, durability, compaction."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ChecksumError, KeyNotFoundError, ObsoleteVersionError
from repro.common.vectorclock import VectorClock
from repro.voldemort.engines import InMemoryStorageEngine, LogStructuredEngine
from repro.voldemort.versioned import Versioned


@pytest.fixture(params=["memory", "log"])
def engine(request, tmp_path):
    if request.param == "memory":
        built = InMemoryStorageEngine()
    else:
        built = LogStructuredEngine(str(tmp_path / "store"))
    yield built
    built.close()


def v(value: bytes, **entries) -> Versioned:
    return Versioned(value, VectorClock(entries or {1: 1}))


class TestVersionContract:
    def test_get_missing_key(self, engine):
        with pytest.raises(KeyNotFoundError):
            engine.get(b"missing")

    def test_put_get_roundtrip(self, engine):
        engine.put(b"k", v(b"value"))
        versions = engine.get(b"k")
        assert [x.value for x in versions] == [b"value"]

    def test_newer_version_replaces(self, engine):
        first = Versioned.initial(b"v1", 1)
        engine.put(b"k", first)
        engine.put(b"k", first.next_version(b"v2", 1))
        versions = engine.get(b"k")
        assert [x.value for x in versions] == [b"v2"]

    def test_obsolete_write_rejected(self, engine):
        first = Versioned.initial(b"v1", 1)
        second = first.next_version(b"v2", 1)
        engine.put(b"k", second)
        with pytest.raises(ObsoleteVersionError):
            engine.put(b"k", first)
        with pytest.raises(ObsoleteVersionError):
            engine.put(b"k", second)  # equal clock also rejected

    def test_concurrent_versions_coexist(self, engine):
        base = Versioned.initial(b"v", 1)
        engine.put(b"k", base)
        left = base.next_version(b"a", 1)
        right = base.next_version(b"b", 2)
        engine.put(b"k", left)
        engine.put(b"k", right)
        values = {x.value for x in engine.get(b"k")}
        assert values == {b"a", b"b"}

    def test_merge_resolves_siblings(self, engine):
        base = Versioned.initial(b"v", 1)
        engine.put(b"k", base)
        left = base.next_version(b"a", 1)
        right = base.next_version(b"b", 2)
        engine.put(b"k", left)
        engine.put(b"k", right)
        merged = Versioned(b"merged", left.clock.merged(right.clock).incremented(1))
        engine.put(b"k", merged)
        assert [x.value for x in engine.get(b"k")] == [b"merged"]

    def test_delete_writes_tombstone(self, engine):
        first = Versioned.initial(b"v", 1)
        engine.put(b"k", first)
        engine.delete(b"k", first.next_version(None, 1))
        with pytest.raises(KeyNotFoundError):
            engine.get(b"k")
        assert b"k" not in list(engine.keys())

    def test_keys_and_entries(self, engine):
        engine.put(b"a", v(b"1"))
        engine.put(b"b", v(b"2"))
        assert sorted(engine.keys()) == [b"a", b"b"]
        entries = {(k, x.value) for k, x in engine.entries()}
        assert entries == {(b"a", b"1"), (b"b", b"2")}


class TestLogStructuredDurability:
    def test_recovery_after_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        engine = LogStructuredEngine(path)
        first = Versioned.initial(b"v1", 1)
        engine.put(b"k", first)
        engine.put(b"k", first.next_version(b"v2", 1))
        engine.put(b"other", v(b"x"))
        engine.close()

        reopened = LogStructuredEngine(path)
        assert [x.value for x in reopened.get(b"k")] == [b"v2"]
        assert [x.value for x in reopened.get(b"other")] == [b"x"]
        reopened.close()

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        path = str(tmp_path / "store")
        engine = LogStructuredEngine(path)
        engine.put(b"good", v(b"value"))
        engine.close()
        log_file = os.path.join(path, LogStructuredEngine.LOG_NAME)
        with open(log_file, "ab") as f:
            f.write(b"\x01\x02\x03garbage-partial-record")

        reopened = LogStructuredEngine(path)
        assert [x.value for x in reopened.get(b"good")] == [b"value"]
        with pytest.raises(KeyNotFoundError):
            reopened.get(b"garbage")
        reopened.close()

    def test_corrupt_record_detected_on_read(self, tmp_path):
        path = str(tmp_path / "store")
        engine = LogStructuredEngine(path)
        engine.put(b"k", v(b"A" * 100))
        log_file = os.path.join(path, LogStructuredEngine.LOG_NAME)
        engine._log.flush()
        # flip a byte in the middle of the value region
        with open(log_file, "r+b") as f:
            f.seek(60)
            f.write(b"\xff")
        with pytest.raises(ChecksumError):
            engine.get(b"k")
        engine.close()

    def test_compaction_reclaims_space(self, tmp_path):
        path = str(tmp_path / "store")
        engine = LogStructuredEngine(path)
        current = Versioned.initial(b"0" * 1000, 1)
        engine.put(b"k", current)
        for i in range(20):
            current = current.next_version(str(i).encode() * 100, 1)
            engine.put(b"k", current)
        before = engine.log_size_bytes()
        reclaimed = engine.compact()
        assert reclaimed > 0
        assert engine.log_size_bytes() < before
        assert [x.value for x in engine.get(b"k")] == [current.value]
        engine.close()

    def test_compaction_drops_tombstones(self, tmp_path):
        path = str(tmp_path / "store")
        engine = LogStructuredEngine(path)
        first = Versioned.initial(b"v", 1)
        engine.put(b"k", first)
        engine.delete(b"k", first.next_version(None, 1))
        engine.compact()
        assert list(engine.keys()) == []
        engine.close()

    def test_survives_compaction_then_reopen(self, tmp_path):
        path = str(tmp_path / "store")
        engine = LogStructuredEngine(path)
        engine.put(b"a", v(b"1"))
        engine.put(b"b", v(b"2"))
        engine.compact()
        engine.close()
        reopened = LogStructuredEngine(path)
        assert sorted(reopened.keys()) == [b"a", b"b"]
        reopened.close()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.binary(min_size=1, max_size=20),
                          st.binary(max_size=64)), max_size=30))
def test_log_engine_matches_memory_engine(tmp_path_factory, pairs):
    """The on-disk engine and dict engine agree on every history."""
    directory = tmp_path_factory.mktemp("prop")
    log_engine = LogStructuredEngine(str(directory / "store"))
    memory_engine = InMemoryStorageEngine()
    clocks: dict[bytes, Versioned] = {}
    try:
        for key, value in pairs:
            if key in clocks:
                versioned = clocks[key].next_version(value, 1)
            else:
                versioned = Versioned.initial(value, 1)
            clocks[key] = versioned
            log_engine.put(key, versioned)
            memory_engine.put(key, versioned)
        for key in clocks:
            assert ([x.value for x in log_engine.get(key)]
                    == [x.value for x in memory_engine.get(key)])
    finally:
        log_engine.close()


def test_compact_aborts_when_put_races_the_fsync(tmp_path):
    """A put landing while the compacted file is being fsynced must not
    be lost: the swap aborts and the next compaction retries."""
    engine = LogStructuredEngine(str(tmp_path / "store"))
    base = Versioned.initial(b"a-value", 1)
    engine.put(b"a", base)
    engine.put(b"a", base.next_version(b"a-newer", 1))  # leaves garbage
    engine.put(b"b", v(b"x"))

    real_open = engine.disk.open

    class RacingFile:
        def __init__(self, inner):
            self._inner = inner

        def __getattr__(self, name):
            return getattr(self._inner, name)

        def __enter__(self):
            self._inner.__enter__()
            return self

        def __exit__(self, *exc):
            return self._inner.__exit__(*exc)

        def fsync(self):
            engine.disk.open = real_open  # race only once
            engine.put(b"late", v(b"9"))  # lands mid-fsync
            self._inner.fsync()

    def racing_open(path, mode="rb"):
        handle = real_open(path, mode)
        if path.endswith(".compact"):
            return RacingFile(handle)
        return handle

    engine.disk.open = racing_open
    assert engine.compact() == 0  # swap aborted, nothing replaced
    assert engine.get(b"late")[0].value == b"9"
    assert engine.get(b"a")[0].value == b"a-newer"

    assert engine.compact() > 0  # clean retry reclaims the garbage
    assert engine.get(b"late")[0].value == b"9"
    assert engine.get(b"b")[0].value == b"x"
    engine.close()
