"""Admin service: store lifecycle and online rebalancing."""

import pytest

from repro.common.errors import ConfigurationError
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
from repro.voldemort.admin import AdminService


@pytest.fixture
def cluster():
    return VoldemortCluster(num_nodes=3, partitions_per_node=4)


def test_add_and_delete_store(cluster):
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s1", 2, 1, 1))
    assert "s1" in cluster.stores
    for server in cluster.servers.values():
        assert "s1" in server.stores_open()
    admin.delete_store("s1")
    assert "s1" not in cluster.stores
    for server in cluster.servers.values():
        assert "s1" not in server.stores_open()


def test_duplicate_store_rejected(cluster):
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s1", 2, 1, 1))
    with pytest.raises(ConfigurationError):
        admin.add_store(StoreDefinition("s1", 2, 1, 1))


def test_expansion_plan_balances_partition_counts(cluster):
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s1", 2, 1, 1))
    plan = admin.plan_expansion(99)
    # 12 partitions over 4 nodes -> 3 each
    assert plan.partitions_moved() == 3
    donors = {m.from_node for m in plan.moves}
    assert 99 not in donors


def test_rebalance_moves_data_and_ownership(cluster):
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s1", 1, 1, 1))
    routed = RoutedStore(cluster, "s1")
    keys = [f"key-{i}".encode() for i in range(60)]
    for key in keys:
        routed.put(key, Versioned.initial(b"v:" + key, 0))

    plan = admin.plan_expansion(99)
    migrated = admin.execute_rebalance(plan)
    assert migrated > 0
    counts = cluster.ring.partition_counts()
    assert counts[99] == 3

    # every key still readable after the rebalance, via fresh routing
    routed_after = RoutedStore(cluster, "s1")
    for key in keys:
        frontier, _ = routed_after.get(key)
        assert frontier[0].value == b"v:" + key
    # and the new node actually serves some of them
    newcomer = cluster.server_for(99)
    assert len(list(newcomer.engine("s1").keys())) > 0


def test_reads_during_migration_follow_redirects(cluster):
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s1", 1, 1, 1))
    plan = admin.plan_expansion(99)
    move = plan.moves[0]
    # mid-migration state: redirect set, ownership not yet flipped
    admin.redirects[move.partition] = move.to_node
    assert admin.effective_owner(move.partition) == move.to_node
    del admin.redirects[move.partition]
    assert admin.effective_owner(move.partition) == move.from_node


def test_move_validates_current_owner(cluster):
    from repro.voldemort.admin import PartitionMove, RebalancePlan
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s1", 1, 1, 1))
    owner = cluster.ring.node_for_partition(0).node_id
    wrong_donor = (owner + 1) % 3
    plan = RebalancePlan([PartitionMove(0, wrong_donor, owner)])
    with pytest.raises(ConfigurationError):
        admin.execute_rebalance(plan)
