"""Server-side routing (Figure II.1 pluggability) and batched get_all."""

import pytest

from repro.common.errors import (
    InsufficientOperationalNodesError,
    NodeUnavailableError,
)
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
from repro.voldemort.server_routing import ServerSideRoutedStore


@pytest.fixture
def cluster():
    built = VoldemortCluster(num_nodes=4, partitions_per_node=4)
    built.define_store(StoreDefinition("s", 3, 2, 2))
    return built


class TestServerSideRouting:
    def test_roundtrip_through_coordinator(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        thin.put(b"k", Versioned.initial(b"v", 0))
        frontier, latency = thin.get(b"k")
        assert frontier[0].value == b"v"
        assert latency > 0

    def test_same_data_visible_to_client_side_router(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        fat = RoutedStore(cluster, "s")
        thin.put(b"k", Versioned.initial(b"v", 0))
        assert fat.get(b"k")[0][0].value == b"v"
        fat.put(b"k2", Versioned.initial(b"v2", 0))
        assert thin.get(b"k2")[0][0].value == b"v2"

    def test_coordinators_rotate(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        served_before = {n: s.requests_served
                         for n, s in cluster.servers.items()}
        thin.put(b"k", Versioned.initial(b"v", 0))
        for _ in range(8):
            thin.get(b"k")
        touched = sum(1 for n, s in cluster.servers.items()
                      if s.requests_served > served_before[n])
        assert touched >= 3  # load spread over coordinators

    def test_extra_hop_costs_latency(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        fat = RoutedStore(cluster, "s")
        fat.put(b"k", Versioned.initial(b"v", 0))
        _, fat_latency = fat.get(b"k")
        _, thin_latency = thin.get(b"k")
        assert thin_latency > fat_latency  # client->coordinator hop

    def test_skips_crashed_coordinator(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        thin.put(b"k", Versioned.initial(b"v", 0))
        cluster.network.failures.crash(cluster.node_name(0))
        for _ in range(6):  # rotation passes node 0 and skips it
            frontier, _ = thin.get(b"k")
            assert frontier

    def test_all_coordinators_down(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        for node_id in cluster.ring.nodes:
            cluster.network.failures.crash(cluster.node_name(node_id))
        with pytest.raises(NodeUnavailableError):
            thin.get(b"k")

    def test_delete_through_coordinator(self, cluster):
        thin = ServerSideRoutedStore(cluster, "s")
        first = Versioned.initial(b"v", 0)
        thin.put(b"k", first)
        thin.delete(b"k", first.next_version(None, 0))
        from repro.common.errors import KeyNotFoundError
        with pytest.raises(KeyNotFoundError):
            thin.get(b"k")


class TestGetAll:
    def test_batch_returns_all_present_keys(self, cluster):
        routed = RoutedStore(cluster, "s")
        keys = [b"key-%d" % i for i in range(30)]
        for key in keys:
            routed.put(key, Versioned.initial(b"v:" + key, 0))
        found, latency = routed.get_all(keys + [b"missing-1", b"missing-2"])
        assert set(found) == set(keys)
        for key in keys:
            assert found[key][0].value == b"v:" + key
        assert latency > 0

    def test_batch_uses_fewer_requests_than_loop(self, cluster):
        routed = RoutedStore(cluster, "s")
        keys = [b"key-%d" % i for i in range(40)]
        for key in keys:
            routed.put(key, Versioned.initial(b"v", 0))
        hops_before = cluster.network.hops_delivered
        routed.get_all(keys)
        batch_hops = cluster.network.hops_delivered - hops_before
        hops_before = cluster.network.hops_delivered
        for key in keys:
            routed.get(key)
        loop_hops = cluster.network.hops_delivered - hops_before
        assert batch_hops <= len(cluster.ring.nodes)
        assert loop_hops >= len(keys)

    def test_batch_respects_read_quorum(self, cluster):
        routed = RoutedStore(cluster, "s", enable_hinted_handoff=False)
        key = b"quorum-key"
        routed.put(key, Versioned.initial(b"v", 0))
        replicas = routed.replica_nodes(key)
        for node_id in replicas[:2]:
            cluster.network.failures.crash(cluster.node_name(node_id))
        with pytest.raises(InsufficientOperationalNodesError):
            routed.get_all([key])

    def test_batch_survives_one_replica_down(self, cluster):
        routed = RoutedStore(cluster, "s")
        keys = [b"key-%d" % i for i in range(10)]
        for key in keys:
            routed.put(key, Versioned.initial(b"v", 0))
        crashed = routed.replica_nodes(keys[0])[0]
        cluster.network.failures.crash(cluster.node_name(crashed))
        # mark it down so assignment avoids it
        for _ in range(10):
            try:
                routed.get(keys[0])
            except Exception:
                pass
        found, _ = routed.get_all(keys)
        assert set(found) == set(keys)

    def test_empty_batch(self, cluster):
        routed = RoutedStore(cluster, "s")
        found, latency = routed.get_all([])
        assert found == {}
        assert latency == 0.0
