"""Routers consult the admin redirect table during rebalancing (§II.B:
"We maintain consistency during rebalancing by redirecting requests of
moving partitions to their new destination.")."""

import pytest

from repro.common.errors import KeyNotFoundError
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
from repro.voldemort.admin import AdminService


@pytest.fixture
def setup():
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4)
    admin = AdminService(cluster)
    admin.add_store(StoreDefinition("s", 1, 1, 1))
    routed = RoutedStore(cluster, "s")
    routed.admin = admin
    return cluster, admin, routed


def test_routing_without_redirects_matches_ring(setup):
    cluster, admin, routed = setup
    key = b"stable-key"
    partition = cluster.ring.partition_for_key(key)
    owner = cluster.ring.node_for_partition(partition).node_id
    assert routed.replica_nodes(key) == [owner]


def test_mid_migration_requests_go_to_destination(setup):
    cluster, admin, routed = setup
    key = b"moving-key"
    partition = cluster.ring.partition_for_key(key)
    old_owner = cluster.ring.node_for_partition(partition).node_id
    destination = (old_owner + 1) % 3
    # the migration has started: redirect set, ownership not yet flipped
    admin.redirects[partition] = destination
    assert routed.replica_nodes(key) == [destination]
    # a write during migration lands on the destination
    routed.put(key, Versioned.initial(b"v", 0))
    assert cluster.server_for(destination).engine("s").get(key)[0].value == b"v"
    with pytest.raises(KeyNotFoundError):
        cluster.server_for(old_owner).engine("s").get(key)
    # migration finishes: redirect removed, ring flipped
    del admin.redirects[partition]
    cluster.ring = cluster.ring.with_partition_moved(partition, destination)
    frontier, _ = routed.get(key)
    assert frontier[0].value == b"v"


def test_full_expansion_with_attached_router(setup):
    cluster, admin, routed = setup
    keys = [b"key-%d" % i for i in range(40)]
    for key in keys:
        routed.put(key, Versioned.initial(b"v:" + key, 0))
    plan = admin.plan_expansion(99)
    admin.execute_rebalance(plan)
    for key in keys:
        frontier, _ = routed.get(key)
        assert frontier[0].value == b"v:" + key


def test_writes_during_each_move_never_lost(setup):
    """Interleave writes between the moves of a rebalance; all survive."""
    cluster, admin, routed = setup
    plan = admin.plan_expansion(99)
    written = []
    for i, move in enumerate(plan.moves):
        admin.execute_rebalance(type(plan)([move]))
        key = b"between-%d" % i
        routed.put(key, Versioned.initial(b"v", 0))
        written.append(key)
    for key in written:
        frontier, _ = routed.get(key)
        assert frontier[0].value == b"v"
