"""Success-ratio failure detection and async recovery probing."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.voldemort.failure_detector import FailureDetector


def test_nodes_start_available():
    detector = FailureDetector(SimClock())
    assert detector.is_available(0)
    assert detector.success_ratio(0) == 1.0


def test_threshold_validation():
    with pytest.raises(ConfigurationError):
        FailureDetector(SimClock(), threshold=0.0)
    with pytest.raises(ConfigurationError):
        FailureDetector(SimClock(), minimum_samples=0)


def test_marks_down_below_threshold():
    detector = FailureDetector(SimClock(), threshold=0.8, minimum_samples=5)
    for _ in range(4):
        detector.record_success(1)
    detector.record_failure(1)
    assert detector.is_available(1)  # 4/5 = 0.8, not below
    detector.record_failure(1)
    assert not detector.is_available(1)  # 4/6 < 0.8
    assert detector.nodes_marked_down == 1


def test_requires_minimum_samples():
    detector = FailureDetector(SimClock(), threshold=0.8, minimum_samples=10)
    for _ in range(5):
        detector.record_failure(1)
    assert detector.is_available(1)


def test_async_probe_recovers_node():
    clock = SimClock()
    alive = {"up": False}
    detector = FailureDetector(clock, threshold=0.9, minimum_samples=2,
                               ping_interval=1.0,
                               ping=lambda node: alive["up"])
    detector.record_failure(1)
    detector.record_failure(1)
    assert not detector.is_available(1)
    clock.advance(3.0)  # probes fail while node stays dead
    assert not detector.is_available(1)
    alive["up"] = True
    clock.advance(1.0)
    assert detector.is_available(1)
    assert detector.nodes_recovered == 1


def test_probe_exception_counts_as_down():
    clock = SimClock()

    def ping(node):
        raise RuntimeError("network down")

    detector = FailureDetector(clock, threshold=0.9, minimum_samples=1,
                               ping_interval=1.0, ping=ping)
    detector.record_failure(1)
    clock.advance(5.0)
    assert not detector.is_available(1)


def test_mark_up_clears_window():
    detector = FailureDetector(SimClock(), threshold=0.9, minimum_samples=1)
    detector.record_failure(1)
    assert not detector.is_available(1)
    detector.mark_up(1)
    assert detector.is_available(1)
    assert detector.success_ratio(1) == 1.0


def test_window_slides():
    detector = FailureDetector(SimClock(), threshold=0.5,
                               minimum_samples=4, window=4)
    for _ in range(4):
        detector.record_failure(1)
    assert not detector.is_available(1)
    detector.mark_up(1)
    # old failures fell out of the window after recovery
    for _ in range(4):
        detector.record_success(1)
    assert detector.success_ratio(1) == 1.0


def test_available_nodes_filter():
    detector = FailureDetector(SimClock(), threshold=0.9, minimum_samples=1)
    detector.record_failure(2)
    assert detector.available_nodes([1, 2, 3]) == [1, 3]


def test_window_size_configurable():
    detector = FailureDetector(SimClock(), threshold=0.9,
                               minimum_samples=2, window=2)
    detector.record_failure(1)
    detector.record_failure(1)
    assert not detector.is_available(1)
    # a window of 2 holds exactly 2 outcomes
    assert len(detector._node(1).outcomes) == 2
    detector.record_success(1)
    assert len(detector._node(1).outcomes) == 2


def test_window_validation():
    with pytest.raises(ConfigurationError):
        FailureDetector(SimClock(), window=0)
    with pytest.raises(ConfigurationError):
        # minimum_samples beyond the window could never be reached
        FailureDetector(SimClock(), minimum_samples=10, window=5)


def test_mark_up_hook_fires_for_external_recovery():
    detector = FailureDetector(SimClock(), threshold=0.9, minimum_samples=1)
    recovered = []
    detector.on_mark_up = recovered.append
    detector.record_failure(1)
    assert not detector.is_available(1)
    detector.mark_up(1)
    # fires even for nodes the detector never marked down: an explicit
    # mark_up is an external recovery signal for listeners (breakers)
    detector.mark_up(2)
    assert recovered == [1, 2]


# -- flapping nodes (rapid down/up cycles) --------------------------------


def test_flapping_node_is_remarked_down_each_cycle():
    clock = SimClock()
    alive = {"up": True}
    detector = FailureDetector(clock, threshold=0.9, minimum_samples=2,
                               ping_interval=1.0,
                               ping=lambda node: alive["up"])
    cycles = 5
    for _ in range(cycles):
        alive["up"] = False
        detector.record_failure(1)
        detector.record_failure(1)
        assert not detector.is_available(1)
        alive["up"] = True
        clock.advance(1.0)           # the probe brings it back
        assert detector.is_available(1)
    assert detector.nodes_marked_down == cycles
    assert detector.nodes_recovered == cycles


def test_flapping_recovery_clears_stale_failure_history():
    # each mark_up wipes the outcome window, so one failure right after
    # a recovery is judged on fresh samples — the detector neither
    # instantly re-marks a recovered node down on old history, nor
    # lets old successes mask a relapse
    clock = SimClock()
    detector = FailureDetector(clock, threshold=0.9, minimum_samples=3,
                               ping_interval=1.0, ping=lambda node: True)
    detector.record_failure(1)
    detector.record_failure(1)
    detector.record_failure(1)
    assert not detector.is_available(1)
    clock.advance(1.0)
    assert detector.is_available(1)
    detector.record_failure(1)       # 1 sample < minimum: still up
    assert detector.is_available(1)
    assert len(detector._node(1).outcomes) == 1


def test_flapping_fires_mark_up_hook_every_cycle():
    # breakers listen on on_mark_up; under flapping they must be reset
    # on every recovery, not just the first
    clock = SimClock()
    alive = {"up": True}
    recoveries = []
    detector = FailureDetector(clock, threshold=0.9, minimum_samples=2,
                               ping_interval=0.5,
                               ping=lambda node: alive["up"])
    detector.on_mark_up = recoveries.append
    for _ in range(3):
        alive["up"] = False
        detector.record_failure(7)
        detector.record_failure(7)
        alive["up"] = True
        clock.advance(0.5)
    assert recoveries == [7, 7, 7]


def test_flapping_probe_does_not_stack_duplicate_probes():
    # a node that flaps down again while probes are pending must not
    # accumulate probe storms: probes for an already-recovered node
    # exit without rescheduling
    clock = SimClock()
    alive = {"up": False, "pings": 0}

    def ping(node):
        alive["pings"] += 1
        return alive["up"]

    detector = FailureDetector(clock, threshold=0.9, minimum_samples=2,
                               ping_interval=1.0, ping=ping)
    detector.record_failure(1)
    detector.record_failure(1)
    clock.advance(3.0)               # three failed probes
    assert alive["pings"] == 3
    alive["up"] = True
    clock.advance(1.0)               # the fourth succeeds
    assert detector.is_available(1)
    pings_after_recovery = alive["pings"]
    clock.advance(5.0)               # no further probes for an up node
    assert alive["pings"] == pings_after_recovery
