"""Quorum routing, read repair, hinted handoff, zone-aware placement."""

import pytest

from repro.common.errors import (
    InsufficientOperationalNodesError,
    KeyNotFoundError,
    ObsoleteVersionError,
)
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster


def make_cluster(nodes=4, n=3, r=2, w=2, zones=1, required_zones=0, **kwargs):
    cluster = VoldemortCluster(num_nodes=nodes, partitions_per_node=4,
                               num_zones=zones, **kwargs)
    cluster.define_store(StoreDefinition(
        "test", replication_factor=n, required_reads=r, required_writes=w,
        required_zones=required_zones))
    return cluster


def crash(cluster, node_id):
    cluster.network.failures.crash(cluster.node_name(node_id))


def recover(cluster, node_id):
    cluster.network.failures.recover(cluster.node_name(node_id))


def test_store_definition_validation():
    with pytest.raises(Exception):
        StoreDefinition("s", replication_factor=2, required_reads=3)
    with pytest.raises(Exception):
        StoreDefinition("s", replication_factor=2, required_writes=0)
    assert StoreDefinition("s", 3, 2, 2).strongly_consistent
    assert not StoreDefinition("s", 3, 1, 1).strongly_consistent


def test_put_get_roundtrip():
    cluster = make_cluster()
    routed = RoutedStore(cluster, "test")
    versioned = Versioned.initial(b"value", 0)
    routed.put(b"key", versioned)
    frontier, latency = routed.get(b"key")
    assert [v.value for v in frontier] == [b"value"]
    assert latency > 0


def test_get_missing_raises_keynotfound():
    cluster = make_cluster()
    routed = RoutedStore(cluster, "test")
    with pytest.raises(KeyNotFoundError):
        routed.get(b"ghost")


def test_replicas_distinct_and_stable():
    cluster = make_cluster()
    routed = RoutedStore(cluster, "test")
    replicas = routed.replica_nodes(b"key")
    assert len(set(replicas)) == 3
    assert routed.replica_nodes(b"key") == replicas


def test_write_replicates_to_all_n():
    cluster = make_cluster()
    routed = RoutedStore(cluster, "test")
    versioned = Versioned.initial(b"v", 0)
    routed.put(b"key", versioned)
    stored = 0
    for server in cluster.servers.values():
        try:
            server.engine("test").get(b"key")
            stored += 1
        except KeyNotFoundError:
            pass
    assert stored == 3


def test_survives_one_node_down_with_quorum():
    cluster = make_cluster(nodes=4, n=3, r=2, w=2)
    routed = RoutedStore(cluster, "test")
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[0])
    routed.put(b"key", Versioned.initial(b"v", 0))
    frontier, _ = routed.get(b"key")
    assert frontier[0].value == b"v"


def test_insufficient_writes_raises():
    cluster = make_cluster(nodes=3, n=3, r=2, w=3)
    routed = RoutedStore(cluster, "test", enable_hinted_handoff=False)
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[1])
    with pytest.raises(InsufficientOperationalNodesError) as excinfo:
        routed.put(b"key", Versioned.initial(b"v", 0))
    assert excinfo.value.required == 3
    assert excinfo.value.achieved == 2


def test_insufficient_reads_raises():
    cluster = make_cluster(nodes=3, n=3, r=3, w=1)
    routed = RoutedStore(cluster, "test")
    routed.put(b"key", Versioned.initial(b"v", 0))
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[0])
    crash(cluster, replicas[1])
    with pytest.raises(InsufficientOperationalNodesError):
        routed.get(b"key")


def test_obsolete_version_conflict_surfaces():
    cluster = make_cluster()
    routed = RoutedStore(cluster, "test")
    first = Versioned.initial(b"v1", 0)
    routed.put(b"key", first)
    routed.put(b"key", first.next_version(b"v2", 0))
    with pytest.raises(ObsoleteVersionError):
        routed.put(b"key", first.next_version(b"stale", 0))


def test_read_repair_fixes_stale_replica():
    cluster = make_cluster(nodes=3, n=3, r=3, w=3)
    routed = RoutedStore(cluster, "test")
    first = Versioned.initial(b"v1", 0)
    routed.put(b"key", first)
    # one replica misses the second write
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[2])
    second = first.next_version(b"v2", 0)
    relaxed = RoutedStore(cluster, "test", enable_hinted_handoff=False)
    relaxed.definition = StoreDefinition("test", 3, 2, 2)
    relaxed.put(b"key", second)
    recover(cluster, replicas[2])
    # stale replica still has v1
    stale = cluster.server_for(replicas[2]).engine("test").get(b"key")
    assert stale[0].value == b"v1"
    # a quorum read touching all three nodes repairs it
    relaxed.definition = StoreDefinition("test", 3, 3, 2)
    frontier, _ = relaxed.get(b"key")
    assert frontier[0].value == b"v2"
    repaired = cluster.server_for(replicas[2]).engine("test").get(b"key")
    assert [v.value for v in repaired] == [b"v2"]
    assert relaxed.metrics.counters["read_repairs"].value >= 1


def test_read_repair_can_be_disabled():
    cluster = make_cluster(nodes=3, n=3, r=3, w=2)
    routed = RoutedStore(cluster, "test", enable_read_repair=False,
                         enable_hinted_handoff=False)
    first = Versioned.initial(b"v1", 0)
    routed.put(b"key", first)
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[2])
    routed.put(b"key", first.next_version(b"v2", 0))
    recover(cluster, replicas[2])
    routed.get(b"key")
    stale = cluster.server_for(replicas[2]).engine("test").get(b"key")
    assert stale[0].value == b"v1"  # never repaired


def test_hinted_handoff_stores_and_replays():
    cluster = make_cluster(nodes=4, n=3, r=2, w=2)
    routed = RoutedStore(cluster, "test")
    replicas = routed.replica_nodes(b"key")
    dead = replicas[2]
    crash(cluster, dead)
    routed.put(b"key", Versioned.initial(b"v", 0))
    assert routed.metrics.counters["hints_stored"].value == 1
    # find the node holding the hint
    holders = [s for s in cluster.servers.values() if s.hints_for(dead)]
    assert len(holders) == 1
    recover(cluster, dead)
    delivered = holders[0].deliver_hints(dead)
    assert delivered == 1
    assert not holders[0].hints_for(dead)
    value = cluster.server_for(dead).engine("test").get(b"key")
    assert value[0].value == b"v"


def test_hint_delivery_retries_until_destination_up():
    cluster = make_cluster(nodes=4, n=3, r=2, w=2)
    routed = RoutedStore(cluster, "test")
    replicas = routed.replica_nodes(b"key")
    dead = replicas[2]
    crash(cluster, dead)
    routed.put(b"key", Versioned.initial(b"v", 0))
    holder = next(s for s in cluster.servers.values() if s.hints_for(dead))
    assert holder.deliver_hints(dead) == 0  # still down
    assert holder.hints_for(dead)
    recover(cluster, dead)
    assert holder.deliver_hints(dead) == 1


def test_failure_detector_avoids_down_nodes():
    cluster = make_cluster(nodes=4, n=3, r=1, w=1)
    routed = RoutedStore(cluster, "test")
    routed.put(b"key", Versioned.initial(b"v", 0))
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[0])
    # repeated failures mark the node down in the detector
    for _ in range(10):
        routed.get(b"key")
    assert not routed.detector.is_available(replicas[0])
    # subsequent reads skip it entirely
    before = cluster.server_for(replicas[1]).requests_served
    routed.get(b"key")
    assert cluster.server_for(replicas[1]).requests_served > before


def test_zone_aware_routing_spans_zones():
    cluster = make_cluster(nodes=6, n=3, r=2, w=2, zones=2, required_zones=2)
    routed = RoutedStore(cluster, "test")
    for key in (b"a", b"b", b"c", b"d"):
        replicas = routed.replica_nodes(key)
        zones = {cluster.ring.nodes[n].zone_id for n in replicas}
        assert len(zones) >= 2


def test_delete_tombstones_key():
    cluster = make_cluster()
    routed = RoutedStore(cluster, "test")
    first = Versioned.initial(b"v", 0)
    routed.put(b"key", first)
    routed.delete(b"key", first.next_version(None, 0))
    with pytest.raises(KeyNotFoundError):
        routed.get(b"key")


def _stale_replica_scenario():
    """One replica left holding v1 after the quorum moved to v2."""
    cluster = make_cluster(nodes=3, n=3, r=3, w=3)
    routed = RoutedStore(cluster, "test")
    first = Versioned.initial(b"v1", 0)
    routed.put(b"key", first)
    replicas = routed.replica_nodes(b"key")
    crash(cluster, replicas[2])
    second = first.next_version(b"v2", 0)
    relaxed = RoutedStore(cluster, "test", enable_hinted_handoff=False)
    relaxed.definition = StoreDefinition("test", 3, 2, 2)
    relaxed.put(b"key", second)
    recover(cluster, replicas[2])
    relaxed.definition = StoreDefinition("test", 3, 3, 2)
    return cluster, relaxed, replicas[2], second


def test_read_repair_skipped_when_deadline_exhausted():
    # regression for the unbounded-rpc finding: repair rides on the
    # read's budget, so an exhausted deadline must skip it instead of
    # issuing unbounded RPCs
    from repro.common.resilience import Deadline

    cluster, relaxed, stale_node, second = _stale_replica_scenario()
    deadline = Deadline(cluster.clock, 0.001)
    cluster.clock.advance(1.0)  # budget gone before repair starts
    relaxed._read_repair(
        b"key", [second], {stale_node: [Versioned.initial(b"v1", 0)]},
        [], deadline)
    assert relaxed.metrics.counters[
        "read_repair.deadline_skipped"].value == 1
    still_stale = cluster.server_for(stale_node).engine("test").get(b"key")
    assert still_stale[0].value == b"v1"


def test_read_repair_runs_within_a_live_deadline():
    from repro.common.resilience import Deadline

    cluster, relaxed, stale_node, second = _stale_replica_scenario()
    deadline = Deadline(cluster.clock, 60.0)
    frontier, _ = relaxed.get(b"key", deadline=deadline)
    assert frontier[0].value == b"v2"
    repaired = cluster.server_for(stale_node).engine("test").get(b"key")
    assert [v.value for v in repaired] == [b"v2"]
    assert relaxed.metrics.counters["read_repairs"].value >= 1
