"""Every example script runs to completion — the walkthroughs in
``examples/`` are part of the public deliverable, so they are tested."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "audit_pipeline.py",
    "company_follow.py",
    "people_you_may_know.py",
    "espresso_music_db.py",
    "activity_events.py",
    "databus_replication.py",
    "social_graph.py",
    "site_pipeline.py",
    "live_migration.py",
    "stream_analytics.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run([sys.executable, path], capture_output=True,
                            text=True, timeout=120)
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{script} produced no output"


def test_example_list_is_complete():
    on_disk = sorted(f for f in os.listdir(EXAMPLES_DIR)
                     if f.endswith(".py"))
    assert on_disk == sorted(EXAMPLES), (
        "examples/ and the test list drifted apart")
