"""The coordinator state machine: transitions, SLO gates, rollback,
and the checkpoint journal's record of all of it."""

import pytest

from repro.common.errors import ConfigurationError
from repro.migration import MigrationPhase, MigrationSlo, MigrationStack

from tests.migration.conftest import FAST_SLO, drive_to_phase, make_source


def test_happy_path_reaches_cutover(clock, stack):
    drive_to_phase(stack, clock, MigrationPhase.CUTOVER)
    phases = [t.phase for t in stack.coordinator.transitions]
    assert phases == [MigrationPhase.CATCHUP, MigrationPhase.SHADOW,
                      MigrationPhase.RAMP, MigrationPhase.CUTOVER]
    assert stack.proxy.serve_target_only
    assert stack.proxy.full_comparison() == []


def test_cutover_requires_shadow_traffic(clock, stack):
    """No reads -> the shadow SLO can never be satisfied -> SHADOW."""
    for _ in range(40):
        stack.coordinator.tick()
        clock.advance(1.0)
    assert stack.coordinator.phase is MigrationPhase.SHADOW


def test_ramp_walks_the_whole_schedule(clock, stack):
    drive_to_phase(stack, clock, MigrationPhase.CUTOVER)
    counters = stack.coordinator.metrics.counter("migration.ramp_steps")
    assert counters.value == len(FAST_SLO.ramp_steps) - 1


def test_mismatch_in_shadow_rolls_back(clock, stack):
    drive_to_phase(stack, clock, MigrationPhase.SHADOW)
    stack.target.put_row("profiles", {"member_id": 7, "name": "BAD",
                                      "score": 0})
    stack.proxy.read("profiles", (7,))
    stack.coordinator.tick()
    assert stack.coordinator.phase is MigrationPhase.ROLLBACK
    assert "mismatch rate" in stack.coordinator.rollback_reason
    assert not stack.proxy.dual_writes_enabled
    assert stack.proxy.ramp_percent == 0
    # reads serve the intact source copy again
    assert stack.proxy.read("profiles", (7,))["name"] == "m7"


def test_mismatch_during_ramp_rolls_back(clock, stack):
    drive_to_phase(stack, clock, MigrationPhase.RAMP)
    stack.target.put_row("profiles", {"member_id": 9, "name": "BAD",
                                      "score": 0})
    stack.proxy.read("profiles", (9,))
    stack.coordinator.tick()
    assert stack.coordinator.phase is MigrationPhase.ROLLBACK


def test_cutover_gate_catches_unread_divergence(clock, stack):
    """A target row nobody shadow-read diverges; the full comparison at
    the cutover gate still refuses to finalize."""
    drive_to_phase(stack, clock, MigrationPhase.RAMP)
    stack.target.put_row("profiles", {"member_id": 33, "name": "BAD",
                                      "score": 0})
    drive_to_phase(stack, clock, MigrationPhase.ROLLBACK)
    assert "cutover verification" in stack.coordinator.rollback_reason
    assert not stack.proxy.serve_target_only


def test_catchup_deadline_breach_rolls_back(clock, source, disk):
    slo = MigrationSlo(min_shadow_reads=3, shadow_duration=1.0,
                       ramp_step_duration=1.0, catchup_deadline=5.0)
    stack = MigrationStack.build(source, disk.scope("c"), clock,
                                 slo=slo, chunk_size=16)
    while stack.coordinator.phase is MigrationPhase.BACKFILL:
        stack.coordinator.tick()
        clock.advance(1.0)
    # the binlog→relay feed stalls while writes keep landing: the lag
    # can only grow, so the deadline must fire and roll the whole
    # migration back instead of waiting forever
    stack.coordinator.capture = None
    for i in range(4):
        source.autocommit("profiles",
                          {"member_id": 1000 + i, "name": "w", "score": 0})
    ticks = 0
    while stack.coordinator.phase is MigrationPhase.CATCHUP and ticks < 50:
        stack.coordinator.tick()
        clock.advance(1.0)
        ticks += 1
    assert stack.coordinator.phase is MigrationPhase.ROLLBACK
    assert "did not converge" in stack.coordinator.rollback_reason


def test_declared_cutover_check_passes_a_clean_migration(clock, source, disk):
    """The ad-hoc full_comparison gate swapped for declared audit
    constraints: a converged migration still cuts over."""
    from repro.audit.wiring import cutover_check

    stack = MigrationStack.build(source, disk.scope("c"), clock,
                                 slo=FAST_SLO, chunk_size=16,
                                 cutover_check=cutover_check)
    drive_to_phase(stack, clock, MigrationPhase.CUTOVER)
    assert stack.proxy.serve_target_only


def test_declared_cutover_check_rolls_back_with_rendered_evidence(
        clock, source, disk):
    from repro.audit.wiring import cutover_check

    stack = MigrationStack.build(source, disk.scope("c"), clock,
                                 slo=FAST_SLO, chunk_size=16,
                                 cutover_check=cutover_check)
    drive_to_phase(stack, clock, MigrationPhase.RAMP)
    stack.target.delete_row("profiles", (21,))
    drive_to_phase(stack, clock, MigrationPhase.ROLLBACK)
    reason = stack.coordinator.rollback_reason
    assert "cutover verification" in reason
    # the constraint violation renders whole into the reason, so the
    # operator sees which declared invariant refused the cutover
    assert "cutover-containment-profiles" in reason
    assert "missing-key" in reason


def test_journal_records_every_transition(clock, stack):
    drive_to_phase(stack, clock, MigrationPhase.CUTOVER)
    phases = [c.phase for c in stack.journal.history()]
    assert phases[0] == "backfill"
    assert phases[-1] == "cutover"
    for phase in ("catchup", "shadow", "ramp"):
        assert phase in phases
    latest = stack.journal.load_latest()
    assert latest.stream_scn == stack.client.checkpoint


def test_slo_validation():
    with pytest.raises(ConfigurationError):
        MigrationSlo(ramp_steps=(5, 25))        # must end at 100
    with pytest.raises(ConfigurationError):
        MigrationSlo(ramp_steps=(50, 25, 100))  # must be non-decreasing
    with pytest.raises(ConfigurationError):
        MigrationSlo(chunks_per_tick=0)


def test_run_to_completion_helper(clock, source, disk):
    stack = MigrationStack.build(source, disk.scope("c"), clock,
                                 slo=MigrationSlo(min_shadow_reads=0,
                                                  shadow_duration=1.0,
                                                  ramp_step_duration=1.0),
                                 chunk_size=16)
    final = stack.coordinator.run_to_completion(tick_interval=1.0)
    assert final is MigrationPhase.CUTOVER


def test_rollback_journals_phase_before_cdc_catchup(clock, stack):
    """The ROLLBACK record must be durable before the catch-up polls: a
    crash mid-catch-up would otherwise leave a RAMP journal, and the
    restarted coordinator would resume with dual writes re-enabled."""
    drive_to_phase(stack, clock, MigrationPhase.RAMP)
    coordinator = stack.coordinator

    def crash_during_catchup():
        raise RuntimeError("node lost mid catch-up")

    coordinator.client.run_to_head = crash_during_catchup
    with pytest.raises(RuntimeError):
        coordinator.rollback("operator abort")
    restored = coordinator.journal.load_latest()
    assert restored is not None
    assert MigrationPhase(restored.phase) is MigrationPhase.ROLLBACK
