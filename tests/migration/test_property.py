"""Property tests: under any seeded interleaving of chunk reads and
concurrent writes, the target equals the source at CUTOVER — and the
whole run is deterministic, byte-identical across two runs of the same
seed."""

import random

import pytest

from repro.common.clock import SimClock
from repro.migration import MigrationPhase, MigrationSlo, MigrationStack
from repro.simnet.disk import SimDisk

from tests.migration.conftest import make_source

SLO = MigrationSlo(min_shadow_reads=5, shadow_duration=2.0,
                   ramp_step_duration=1.0)


def run_scenario(seed: int, profiles: int = 60, max_ticks: int = 400):
    """One full migration with a seeded write/read workload racing the
    chunk loop.  Returns (stack, trace) where the trace captures every
    observable decision the run made."""
    rng = random.Random(seed)
    clock = SimClock()
    source = make_source(clock, profiles=profiles, inmails=10)
    stack = MigrationStack.build(source, SimDisk(seed=seed).scope("c"),
                                 clock, slo=SLO, chunk_size=8)
    live_keys = list(range(profiles))
    trace: list[str] = []
    next_id = 10_000
    for tick_no in range(max_ticks):
        if stack.coordinator.complete:
            break
        stack.coordinator.tick()
        if not stack.coordinator.complete:
            # between coordinator steps the application keeps writing:
            # updates, inserts, deletes, and reads in random proportions
            for _ in range(rng.randrange(0, 4)):
                move = rng.random()
                if move < 0.5 and live_keys:
                    key = rng.choice(live_keys)
                    stack.proxy.upsert(
                        "profiles", {"member_id": key,
                                     "name": f"u{tick_no}",
                                     "score": rng.randrange(1000)})
                elif move < 0.7:
                    stack.proxy.upsert(
                        "profiles", {"member_id": next_id,
                                     "name": "new", "score": 0})
                    live_keys.append(next_id)
                    next_id += 1
                elif move < 0.8 and len(live_keys) > 5:
                    victim = live_keys.pop(rng.randrange(len(live_keys)))
                    stack.proxy.delete("profiles", (victim,))
                elif live_keys:
                    stack.proxy.read("profiles",
                                     (rng.choice(live_keys),))
        trace.append(f"tick {tick_no} phase={stack.coordinator.phase.value} "
                     f"scn={stack.client.checkpoint}")
        clock.advance(1.0)
    for record in stack.coordinator.transitions:
        trace.append(f"transition {record.at} {record.phase.value} "
                     f"{record.reason}")
    for result in stack.replicator.completed:
        trace.append(repr(result))
    trace.append(f"shadow {stack.proxy.shadow.by_table()!r}")
    dump = stack.target.dump("profiles")
    trace.append("dump " + repr(sorted(dump.items())))
    return stack, trace


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_target_equals_source_at_cutover(seed):
    stack, _ = run_scenario(seed)
    assert stack.coordinator.phase is MigrationPhase.CUTOVER
    # zero shadow-read mismatches along the way...
    assert stack.proxy.shadow.total_mismatches == 0
    assert stack.proxy.mismatch_log == []
    # ...and the stores are row-for-row identical at the gate
    assert stack.proxy.full_comparison() == []


@pytest.mark.parametrize("seed", [3, 99])
def test_same_seed_is_byte_identical(seed):
    _, first = run_scenario(seed)
    _, second = run_scenario(seed)
    assert "\n".join(first) == "\n".join(second)


def test_different_seeds_take_different_paths():
    _, a = run_scenario(5)
    _, b = run_scenario(6)
    assert a != b   # the workload actually varies with the seed