"""Shared fixtures for the migration suite: a seeded source database
and a fully wired migration stack on a simulated clock and disk."""

import pytest

from repro.common.clock import SimClock
from repro.migration import MigrationSlo, MigrationStack
from repro.simnet.disk import SimDisk
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Column, TableSchema

PROFILES = TableSchema(
    "profiles",
    (Column("member_id", int), Column("name", str), Column("score", int)),
    ("member_id",))
INMAIL = TableSchema(
    "inmail",
    (Column("msg_id", int), Column("body", str)),
    ("msg_id",))

#: tight SLO so state-machine tests converge in tens of ticks
FAST_SLO = MigrationSlo(min_shadow_reads=3, shadow_duration=1.0,
                        ramp_step_duration=1.0, catchup_deadline=30.0)


def make_source(clock, profiles=50, inmails=20,
                name="members") -> SqlDatabase:
    source = SqlDatabase(name, clock=clock)
    source.create_table(PROFILES)
    source.create_table(INMAIL)
    for i in range(profiles):
        source.autocommit("profiles",
                          {"member_id": i, "name": f"m{i}", "score": i * 7})
    for i in range(inmails):
        source.autocommit("inmail", {"msg_id": i, "body": f"hello {i}"})
    return source


def drive_to_phase(stack, clock, phase, max_ticks=500, read_key=(1,)):
    """Tick (with read traffic so shadow SLOs can be met) until the
    coordinator reaches ``phase``."""
    for _ in range(max_ticks):
        if stack.coordinator.phase is phase:
            return
        stack.coordinator.tick()
        if not stack.coordinator.complete:
            stack.proxy.read("profiles", read_key)
        clock.advance(1.0)
    raise AssertionError(
        f"never reached {phase} (stuck in {stack.coordinator.phase})")


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def source(clock):
    return make_source(clock)


@pytest.fixture
def disk():
    return SimDisk()


@pytest.fixture
def stack(source, disk, clock):
    return MigrationStack.build(source, disk.scope("coordinator"), clock,
                                slo=FAST_SLO, chunk_size=16)
