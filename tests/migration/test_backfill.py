"""The DBLog watermark algorithm in isolation: chunk brackets, stale
rows discarded, watermarks from dead runs ignored, per-table progress."""

import pytest

from repro.common.errors import ConfigurationError
from repro.migration import MigrationStack
from repro.migration.backfill import DONE, high_label, low_label
from repro.simnet.disk import SimDisk
from repro.sqlstore.binlog import ChangeKind

from tests.migration.conftest import make_source


def build(source, clock, chunk_size=16):
    stack = MigrationStack.build(source, SimDisk().scope("c"), clock,
                                 chunk_size=chunk_size)
    # tables chunk in name order; mark the empty inmail table done so
    # unit tests drive the profiles table directly
    stack.coordinator.backfill.restore_progress({"inmail": DONE})
    return stack


def test_one_chunk_copies_rows(clock):
    source = make_source(clock, profiles=10, inmails=0)
    stack = build(source, clock)
    result = stack.coordinator.backfill.run_one_chunk()
    assert result.rows_read == 10
    assert result.rows_applied == 10
    assert result.rows_discarded == 0
    assert stack.target.dump("profiles") == {
        (i,): {"name": f"m{i}", "score": i * 7} for i in range(10)}


def test_short_chunk_marks_table_done(clock):
    source = make_source(clock, profiles=10, inmails=0)
    stack = build(source, clock)
    backfill = stack.coordinator.backfill
    backfill.run_one_chunk()          # profiles: 10 < 16 -> done
    assert backfill.progress["profiles"] == DONE
    assert backfill.complete


def test_chunks_resume_after_key_without_overlap(clock):
    source = make_source(clock, profiles=40, inmails=0)
    stack = build(source, clock, chunk_size=16)
    backfill = stack.coordinator.backfill
    first = backfill.run_one_chunk()
    assert first.rows_read == 16 and first.last_key == (15,)
    assert backfill.progress["profiles"] == (15,)
    second = backfill.run_one_chunk()
    assert second.rows_read == 16 and second.last_key == (31,)
    third = backfill.run_one_chunk()
    assert third.rows_read == 8
    assert backfill.progress["profiles"] == DONE
    assert len(stack.target.dump("profiles")) == 40


def test_live_write_between_watermarks_supersedes_chunk_row(clock):
    """The DBLog discard rule: a key changed inside the bracket keeps
    its live value, and the stale chunk row is counted as discarded."""
    source = make_source(clock, profiles=8, inmails=0)
    stack = build(source, clock)
    replicator = stack.replicator
    low_scn = source.write_watermark(low_label("profiles"))
    rows = source.scan_chunk("profiles", None, 16)
    # a write lands after the scan, inside the bracket
    source.autocommit("profiles", {"member_id": 3, "name": "live", "score": 0},
                      kind=ChangeKind.UPDATE)
    landed = []
    replicator.arm_chunk("profiles", low_scn, rows, landed.append)
    high_scn = source.write_watermark(high_label("profiles", low_scn))
    stack.capture.poll()
    while stack.client.checkpoint < high_scn:
        stack.client.poll()
    assert landed[0].rows_discarded == 1
    assert landed[0].rows_applied == 7
    assert stack.target.get_row("profiles", (3,))["name"] == "live"


def test_stale_watermarks_from_dead_run_are_ignored(clock):
    """Brackets written by a crashed coordinator must not disturb the
    new run: unmatched low/high watermarks pass through silently."""
    source = make_source(clock, profiles=8, inmails=0)
    # a dead run's bracket sits in the binlog before the new run starts
    orphan_low = source.write_watermark(low_label("profiles"))
    source.write_watermark(high_label("profiles", orphan_low))
    stack = build(source, clock)
    result = stack.coordinator.backfill.run_one_chunk()
    assert result.rows_applied == 8
    assert stack.replicator.armed_chunks == 0
    assert len(stack.target.dump("profiles")) == 8


def test_arming_same_chunk_twice_rejected(clock):
    source = make_source(clock, profiles=4, inmails=0)
    stack = build(source, clock)
    rows = source.scan_chunk("profiles", None, 16)
    stack.replicator.arm_chunk("profiles", 99, rows)
    with pytest.raises(ConfigurationError):
        stack.replicator.arm_chunk("profiles", 99, rows)


def test_restore_progress_skips_completed_chunks(clock):
    source = make_source(clock, profiles=40, inmails=0)
    stack = build(source, clock, chunk_size=16)
    backfill = stack.coordinator.backfill
    backfill.restore_progress({"profiles": (15,), "inmail": DONE})
    result = backfill.run_one_chunk()
    assert result.rows_read == 16
    assert result.last_key == (31,)   # resumed after (15,), no re-read


def test_chunk_size_must_be_positive(clock):
    source = make_source(clock, profiles=4, inmails=0)
    with pytest.raises(ConfigurationError):
        build(source, clock, chunk_size=0)


def test_chunk_preserves_progress_reset_during_pump(clock):
    """A restore_progress() landing while a chunk pumps the stream must
    win; the finishing chunk may not clobber the rewound cursor."""
    source = make_source(clock, profiles=50, inmails=0)
    stack = build(source, clock, chunk_size=16)
    backfill = stack.coordinator.backfill
    first = backfill.run_one_chunk()
    assert backfill.progress["profiles"] == first.last_key

    orig_pump = backfill._pump_to

    def racing_pump(scn):
        orig_pump(scn)
        backfill.restore_progress({"profiles": None})  # rewind mid-pump

    backfill._pump_to = racing_pump
    backfill.run_one_chunk()
    backfill._pump_to = orig_pump
    assert backfill.progress["profiles"] is None
