"""The Espresso-side adapter: schema derivation, row↔document
transforms, and partition-master routing."""

import pytest

from repro.common.clock import SimClock
from repro.common.errors import ConfigurationError
from repro.espresso.cluster import EspressoCluster
from repro.migration.target import (
    EspressoTarget,
    RowTransform,
    document_schema_for,
    espresso_schema_for,
)
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Column, TableSchema

from tests.migration.conftest import PROFILES, make_source


def _target(source, clock, num_nodes=3):
    cluster = EspressoCluster(espresso_schema_for(source), num_nodes=num_nodes,
                              clock=clock)
    cluster.start()
    return EspressoTarget(cluster, RowTransform(source))


def test_document_schema_drops_key_columns():
    schema = document_schema_for(PROFILES)
    assert [f.name for f in schema.fields] == ["name", "score"]


def test_document_schema_requires_payload_columns():
    keys_only = TableSchema("pairs",
                            (Column("a", int), Column("b", int)),
                            ("a", "b"))
    with pytest.raises(ConfigurationError):
        document_schema_for(keys_only)


def test_espresso_schema_mirrors_tables():
    clock = SimClock()
    source = make_source(clock)
    schema = espresso_schema_for(source)
    assert schema.name == "members-espresso"
    assert sorted(schema.table_names()) == ["inmail", "profiles"]
    assert schema.table("profiles").key_fields == ("member_id",)


def test_espresso_schema_rejects_unroundtrippable_keys():
    source = SqlDatabase("blobs")
    source.create_table(TableSchema(
        "raw", (Column("k", bytes), Column("v", str)), ("k",)))
    with pytest.raises(ConfigurationError):
        espresso_schema_for(source)


def test_transform_key_roundtrip():
    clock = SimClock()
    transform = RowTransform(make_source(clock))
    assert transform.target_key("profiles", (42,)) == ("42",)
    assert transform.source_key("profiles", ("42",)) == (42,)


def test_transform_row_document_roundtrip():
    clock = SimClock()
    transform = RowTransform(make_source(clock))
    row = {"member_id": 7, "name": "x", "score": 9}
    document = transform.document_of("profiles", row)
    assert document == {"name": "x", "score": 9}
    assert transform.row_of("profiles", ("7",), document) == row


def test_put_get_delete_roundtrip():
    clock = SimClock()
    source = make_source(clock, profiles=5, inmails=0)
    target = _target(source, clock)
    target.put_row("profiles", {"member_id": 3, "name": "n", "score": 1})
    assert target.get_row("profiles", (3,)) == \
        {"member_id": 3, "name": "n", "score": 1}
    target.delete_row("profiles", (3,))
    assert target.get_row("profiles", (3,)) is None
    # deleting again is idempotent (replayed stream deletes)
    target.delete_row("profiles", (3,))
    assert target.deletes == 1


def test_bulk_apply_lands_on_partition_masters():
    clock = SimClock()
    source = make_source(clock, profiles=0, inmails=0)
    target = _target(source, clock)
    rows = [{"member_id": i, "name": f"m{i}", "score": i} for i in range(40)]
    assert target.bulk_apply_rows("profiles", rows) == 40
    dump = target.dump("profiles")
    assert len(dump) == 40
    assert dump[(11,)] == {"name": "m11", "score": 11}


def test_dump_keys_are_typed_source_keys():
    clock = SimClock()
    source = make_source(clock, profiles=0, inmails=0)
    target = _target(source, clock)
    target.put_row("profiles", {"member_id": 5, "name": "y", "score": 0})
    assert list(target.dump("profiles")) == [(5,)]
