"""The dual-write proxy and shadow-read comparator."""

from repro.migration import ramp_bucket

from tests.migration.conftest import make_source


def test_writes_go_to_source_only_before_dual(stack):
    stack.proxy.upsert("profiles", {"member_id": 500, "name": "n", "score": 0})
    assert stack.source.table("profiles").contains((500,))
    assert stack.target.get_row("profiles", (500,)) is None


def test_dual_write_hits_both_stores(stack):
    stack.proxy.dual_writes_enabled = True
    stack.proxy.upsert("profiles", {"member_id": 500, "name": "n", "score": 0})
    assert stack.source.table("profiles").contains((500,))
    assert stack.target.get_row("profiles", (500,))["name"] == "n"
    stack.proxy.delete("profiles", (500,))
    assert not stack.source.table("profiles").contains((500,))
    assert stack.target.get_row("profiles", (500,)) is None


def test_shadow_read_records_match_and_mismatch(stack):
    stack.proxy.dual_writes_enabled = True
    stack.proxy.upsert("profiles", {"member_id": 1, "name": "a", "score": 1})
    stack.proxy.read("profiles", (1,))
    assert stack.proxy.shadow.mismatch_rate() == 0.0
    # corrupt the target behind the proxy's back
    stack.target.put_row("profiles", {"member_id": 1, "name": "X", "score": 1})
    stack.proxy.read("profiles", (1,))
    assert stack.proxy.shadow.total_mismatches == 1
    assert stack.proxy.shadow.by_table()["profiles"] == \
        {"matches": 1, "mismatches": 1}
    assert stack.proxy.mismatch_log[0][:2] == ("profiles", (1,))


def test_missing_on_both_sides_is_agreement(stack):
    stack.proxy.dual_writes_enabled = True
    assert stack.proxy.read("profiles", (9999,)) is None
    assert stack.proxy.shadow.mismatch_rate() == 0.0
    assert stack.proxy.shadow.total_reads == 1


def test_shadow_reads_serve_source_below_ramp(stack):
    stack.proxy.dual_writes_enabled = True
    stack.proxy.ramp_percent = 0
    stack.proxy.upsert("profiles", {"member_id": 2, "name": "s", "score": 2})
    stack.target.put_row("profiles", {"member_id": 2, "name": "T", "score": 2})
    # mismatch recorded, but at 0% ramp the source copy is served
    assert stack.proxy.read("profiles", (2,))["name"] == "s"
    stack.proxy.ramp_percent = 100
    assert stack.proxy.read("profiles", (2,))["name"] == "T"


def test_ramp_bucket_is_deterministic_and_spread():
    buckets = [ramp_bucket("profiles", (i,)) for i in range(200)]
    assert buckets == [ramp_bucket("profiles", (i,)) for i in range(200)]
    assert all(0 <= b < 100 for b in buckets)
    # at a 50% ramp roughly half the keys move (hash spread sanity)
    moved = sum(1 for b in buckets if b < 50)
    assert 60 <= moved <= 140


def test_full_comparison_finds_divergence_both_ways(clock, stack):
    stack.coordinator.backfill.run_one_chunk()   # inmail
    while not stack.coordinator.backfill.complete:
        stack.coordinator.backfill.run_one_chunk()
    assert stack.proxy.full_comparison() == []
    # missing on target
    stack.target.delete_row("profiles", (4,))
    # extra on target
    stack.target.put_row("profiles", {"member_id": 900, "name": "x",
                                      "score": 0})
    differences = stack.proxy.full_comparison(["profiles"])
    keys = [d[1] for d in differences]
    assert keys == [(4,), (900,)]


def test_post_cutover_source_is_retired(stack):
    stack.proxy.serve_target_only = True
    stack.proxy.upsert("profiles", {"member_id": 700, "name": "t", "score": 1})
    assert not stack.source.table("profiles").contains((700,))
    assert stack.proxy.read("profiles", (700,))["name"] == "t"
    assert stack.proxy.target_serves == 1
