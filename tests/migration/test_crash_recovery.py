"""Crashes mid-migration: the coordinator resumes from its journal
without re-reading completed chunks, storage-node failover is
transparent to the migration, and a torn journal tail falls back to the
previous checkpoint.  Fault schedules run under :class:`FaultPlan` so
every scenario is a deterministic, replayable trace."""

from repro.migration import (
    MigrationCheckpoint,
    MigrationJournal,
    MigrationPhase,
    MigrationStack,
)
from repro.simnet.faultplan import ChunkLedger, FaultPlan

from tests.migration.conftest import FAST_SLO, make_source


def wire_ledger(stack, ledger):
    stack.coordinator.backfill.on_chunk_read = ledger.on_read
    stack.coordinator.backfill.on_chunk_complete = ledger.on_complete


def test_coordinator_crash_mid_backfill_resumes_from_checkpoint(
        clock, disk):
    """Kill the coordinator two chunks into an eight-chunk backfill;
    the restarted one finishes from the journal.  The ChunkLedger
    proves no completed chunk was read twice."""
    source = make_source(clock, profiles=120, inmails=10)
    ledger = ChunkLedger()
    stacks = {}

    def boot():
        stacks["live"] = MigrationStack.build(
            source, disk.scope("coordinator"), clock, slo=FAST_SLO,
            chunk_size=16, cluster=stacks["live"].cluster
            if "live" in stacks else None)
        wire_ledger(stacks["live"], ledger)

    boot()
    plan = FaultPlan(clock, disk, seed=11)
    plan.on_kill(lambda node: disk.crash_node(node))
    plan.on_restart(lambda node: (disk.restart_node(node), boot()))
    for t in (1.0, 2.0):
        plan.call(at=t, label=f"tick@{t}",
                  fn=lambda: stacks["live"].coordinator.tick())
    plan.call(at=2.5, label="live-write",
              fn=lambda: source.autocommit(
                  "profiles", {"member_id": 5000, "name": "mid-crash",
                               "score": 1}))
    plan.kill(at=3.0, node="coordinator")
    plan.restart(at=4.0, node="coordinator")
    plan.run(until=5.0)

    resumed = stacks["live"]
    assert resumed.coordinator.phase is MigrationPhase.BACKFILL
    progress = resumed.coordinator.backfill.progress
    assert progress["inmail"] != None  # noqa: E711 - first chunks covered it
    while not resumed.coordinator.complete:
        resumed.coordinator.tick()
        if not resumed.coordinator.complete:
            resumed.proxy.read("profiles", (3,))
        clock.advance(1.0)
    assert resumed.coordinator.phase is MigrationPhase.CUTOVER
    assert ledger.violations == []
    assert ledger.reads == ledger.completions
    dump = resumed.target.dump("profiles")
    assert len(dump) == 121                     # 120 seeded + mid-crash row
    assert dump[(5000,)] == {"name": "mid-crash", "score": 1}
    assert resumed.proxy.full_comparison() == []


def test_crash_after_every_chunk_still_converges(clock, disk):
    """Worst case: the coordinator dies after each backfill tick.  Each
    incarnation completes at most one chunk, yet the ledger stays clean
    and the stores end identical."""
    source = make_source(clock, profiles=50, inmails=5)
    ledger = ChunkLedger()
    stack = MigrationStack.build(source, disk.scope("coordinator"), clock,
                                 slo=FAST_SLO, chunk_size=16)
    wire_ledger(stack, ledger)
    for _ in range(20):
        if stack.coordinator.phase is not MigrationPhase.BACKFILL:
            break
        stack.coordinator.tick()
        clock.advance(1.0)
        disk.crash_node("coordinator")
        disk.restart_node("coordinator")
        stack = MigrationStack.build(source, disk.scope("coordinator"),
                                     clock, slo=FAST_SLO, chunk_size=16,
                                     cluster=stack.cluster)
        wire_ledger(stack, ledger)
    while not stack.coordinator.complete:
        stack.coordinator.tick()
        if not stack.coordinator.complete:
            stack.proxy.read("profiles", (1,))
        clock.advance(1.0)
    assert stack.coordinator.phase is MigrationPhase.CUTOVER
    assert ledger.violations == []
    assert stack.proxy.full_comparison() == []


def test_storage_node_crash_fails_over_transparently(clock, disk, source):
    """Losing a target storage node mid-backfill is an Espresso
    failover, not a migration failure: Helix promotes a caught-up
    slave and the chunk loop keeps routing to partition masters."""
    stack = MigrationStack.build(source, disk.scope("coordinator"), clock,
                                 slo=FAST_SLO, chunk_size=16)
    stack.coordinator.tick()
    stack.cluster.pump_replication(3)     # slaves catch up before the kill
    stack.cluster.crash_node("storage-0")
    stack.cluster.failover()
    while not stack.coordinator.complete:
        stack.coordinator.tick()
        if not stack.coordinator.complete:
            stack.proxy.read("profiles", (2,))
        clock.advance(1.0)
    assert stack.coordinator.phase is MigrationPhase.CUTOVER
    assert stack.proxy.full_comparison() == []


def test_source_crash_loses_nothing_acked(clock, disk):
    """The source is the system of record: a migration survives the
    source pausing (no commits while 'down') and resumes the stream
    exactly where the checkpoint says."""
    source = make_source(clock, profiles=40, inmails=0)
    stack = MigrationStack.build(source, disk.scope("coordinator"), clock,
                                 slo=FAST_SLO, chunk_size=16)
    stack.coordinator.tick()
    before = stack.client.checkpoint
    # "source outage": nothing commits, the coordinator keeps ticking
    for _ in range(3):
        stack.coordinator.tick()
        clock.advance(1.0)
    assert stack.client.checkpoint >= before
    while not stack.coordinator.complete:
        stack.coordinator.tick()
        if not stack.coordinator.complete:
            stack.proxy.read("profiles", (2,))
        clock.advance(1.0)
    assert stack.proxy.full_comparison() == []


def test_torn_journal_tail_falls_back_one_checkpoint(clock, disk):
    """A crash mid-journal-append must not poison recovery: the CRC
    scan drops the torn frame and the previous checkpoint wins."""
    scope = disk.scope("coordinator")
    journal = MigrationJournal(scope)
    journal.record(MigrationCheckpoint(phase="backfill", stream_scn=10,
                                       backfill_progress={"profiles": (15,)}))
    journal.record(MigrationCheckpoint(phase="backfill", stream_scn=20,
                                       backfill_progress={"profiles": (31,)}))
    # crash in the append→fsync window: the frame is staged but never
    # synced, and the armed torn write cuts it mid-record on the platter
    journal._wal.append(MigrationCheckpoint(
        phase="catchup", stream_scn=30,
        backfill_progress={"profiles": "done"}).encode())
    disk.arm_torn_write("coordinator")
    disk.crash_node("coordinator")
    disk.restart_node("coordinator")
    recovered = MigrationJournal(disk.scope("coordinator"))
    latest = recovered.load_latest()
    assert latest is not None
    assert latest.stream_scn <= 20          # the torn record never counts
    assert latest.backfill_progress["profiles"] in ((15,), (31,))
