"""Cluster behaviour: replication, failover, expansion (§IV.B)."""

import pytest

from tests.espresso.conftest import MUSIC


def put_artists(cluster, count=20):
    keys = []
    for i in range(count):
        artist = f"artist-{i}"
        node = cluster.node_for_resource(artist)
        node.put_document("Artist", (artist,),
                          {"name": artist, "genre": "pop", "bio": None})
        keys.append((artist,))
    return keys


def test_start_assigns_masters_and_slaves(cluster):
    masters = cluster.masters_by_partition()
    assert all(m is not None for m in masters.values())
    cluster.assert_single_master()
    for node in cluster.nodes.values():
        assert node.mastered_partitions() or node.slaved_partitions()


def test_replication_propagates_to_slaves(cluster):
    keys = put_artists(cluster, 20)
    cluster.pump_replication()
    for key in keys:
        partition = MUSIC.partition_for(key[0])
        view = cluster.controller.external_view(MUSIC.name)
        for slave_name in view.instances_in_state(partition, "SLAVE"):
            record = cluster.nodes[slave_name].get_document("Artist", key)
            assert record.document["name"] == key[0]


def test_timeline_consistency_on_slaves(cluster):
    """Slaves apply changes in master commit order (same final state,
    dense SCNs)."""
    artist = "artist-x"
    node = cluster.node_for_resource(artist)
    for i in range(10):
        node.put_document("Artist", (artist,),
                          {"name": artist, "genre": f"g{i}", "bio": None})
    cluster.pump_replication()
    partition = MUSIC.partition_for(artist)
    view = cluster.controller.external_view(MUSIC.name)
    for slave_name in view.instances_in_state(partition, "SLAVE"):
        slave = cluster.nodes[slave_name]
        assert slave.partition_scn[partition] == node.partition_scn[partition]
        assert slave.get_document("Artist", (artist,)).document["genre"] == "g9"


def test_failover_promotes_caught_up_slave(cluster):
    keys = put_artists(cluster, 30)
    cluster.pump_replication()
    victim_name = cluster.masters_by_partition()[0]
    victim_mastered = cluster.nodes[victim_name].mastered_partitions()
    cluster.crash_node(victim_name)
    cluster.failover()
    masters = cluster.masters_by_partition()
    assert all(m is not None and m != victim_name for m in masters.values())
    cluster.assert_single_master()
    # no committed write lost: every document readable from new masters
    for key in keys:
        node = cluster.node_for_resource(key[0])
        assert node.get_document("Artist", key).document["name"] == key[0]
    # the new masters continue the SCN sequence
    for partition in victim_mastered:
        new_master = cluster.master_node(partition)
        assert new_master.partition_scn.get(partition, 0) >= 0


def test_failover_drains_relay_before_promotion(cluster):
    """A lagging slave consumes outstanding relay changes before taking
    mastership, so acknowledged commits survive (§IV.B Robustness)."""
    artist = "artist-lag"
    partition = MUSIC.partition_for(artist)
    master = cluster.master_node(partition)
    # writes reach relay + master only; slaves are NOT pumped
    for i in range(5):
        master.put_document("Artist", (artist,),
                            {"name": artist, "genre": f"g{i}", "bio": None})
    view = cluster.controller.external_view(MUSIC.name)
    slave_name = view.instances_in_state(partition, "SLAVE")[0]
    assert cluster.nodes[slave_name].partition_scn.get(partition, 0) == 0
    cluster.crash_node(master.instance_name)
    cluster.failover()
    new_master = cluster.master_node(partition)
    record = new_master.get_document("Artist", (artist,))
    assert record.document["genre"] == "g4"
    assert new_master.partition_scn[partition] == 5


def test_writes_after_failover_continue_scn_stream(cluster):
    artist = "artist-cont"
    partition = MUSIC.partition_for(artist)
    master = cluster.master_node(partition)
    master.put_document("Artist", (artist,),
                        {"name": artist, "genre": "g0", "bio": None})
    cluster.crash_node(master.instance_name)
    cluster.failover()
    new_master = cluster.master_node(partition)
    new_master.put_document("Artist", (artist,),
                            {"name": artist, "genre": "g1", "bio": None})
    assert new_master.partition_scn[partition] == 2
    cluster.pump_replication()
    cluster.assert_single_master()


def test_recovered_node_rejoins_as_consistent_replica(cluster):
    keys = put_artists(cluster, 10)
    cluster.pump_replication()
    victim_name = cluster.masters_by_partition()[0]
    cluster.crash_node(victim_name)
    cluster.failover()
    put_artists(cluster, 10)  # more writes while it is down
    cluster.recover_node(victim_name)
    cluster.failover()
    cluster.pump_replication()
    victim = cluster.nodes[victim_name]
    for partition in victim.slaved_partitions() + victim.mastered_partitions():
        current_master = cluster.master_node(partition)
        assert victim.partition_scn.get(partition, 0) == \
            current_master.partition_scn.get(partition, 0)


def test_expansion_bootstraps_and_takes_mastership(cluster):
    keys = put_artists(cluster, 40)
    cluster.pump_replication()
    newcomer = cluster.add_node("storage-3")
    cluster.assert_single_master()
    assert newcomer.mastered_partitions()  # took over some masters
    # the newcomer's partitions are fully caught up
    for partition in newcomer.mastered_partitions():
        prior_masters = [n for n in cluster.nodes.values()
                         if n is not newcomer
                         and n.partition_scn.get(partition, 0)]
        if prior_masters:
            assert newcomer.partition_scn[partition] == max(
                n.partition_scn[partition] for n in prior_masters)
    # every key still served
    for key in keys:
        node = cluster.node_for_resource(key[0])
        assert node.get_document("Artist", key).document["name"] == key[0]


def test_expansion_with_evicted_relay_uses_snapshot(cluster):
    """When the relay buffer no longer holds a partition's history, the
    new replica bootstraps from a master snapshot then catches up."""
    from repro.databus.relay import EventBuffer
    put_artists(cluster, 40)
    cluster.pump_replication()
    # shrink every partition buffer so history is gone
    for name in cluster.relay.buffer_names():
        tiny = EventBuffer(max_events=1)
        old = cluster.relay.buffer(name)
        tiny._evicted_through = old.newest_scn or 0
        cluster.relay._buffers[name] = tiny
    newcomer = cluster.add_node("storage-3")
    for partition in (newcomer.mastered_partitions()
                      + newcomer.slaved_partitions()):
        others = [n.partition_scn.get(partition, 0)
                  for n in cluster.nodes.values() if n is not newcomer]
        assert newcomer.partition_scn.get(partition, 0) == max(others)


def test_too_few_nodes_rejected():
    from repro.common.errors import ConfigurationError
    from repro.espresso import EspressoCluster
    with pytest.raises(ConfigurationError):
        EspressoCluster(MUSIC, num_nodes=1)  # replication_factor 2
