"""Storage-node crash + recovery: commit log replays docs, indexes, SCNs."""

import pytest

from repro.common.clock import SimClock
from repro.simnet.disk import SimDisk
from repro.espresso import EspressoCluster
from repro.simnet.faultplan import ScnAuditor

from tests.espresso.conftest import ALBUM_SCHEMA, ARTIST_SCHEMA, MUSIC, SONG_SCHEMA


@pytest.fixture
def disk():
    return SimDisk(clock=SimClock(), seed=21)


@pytest.fixture
def durable_cluster(disk):
    built = EspressoCluster(MUSIC, num_nodes=3, disk=disk)
    built.post_document_schema("Artist", ARTIST_SCHEMA)
    built.post_document_schema("Album", ALBUM_SCHEMA)
    built.post_document_schema("Song", SONG_SCHEMA)
    built.start()
    return built


def put_artist(cluster, artist, genre="rock"):
    node = cluster.node_for_resource(artist)
    node.put_document("Artist", (artist,),
                      {"name": artist, "genre": genre, "bio": None})
    return node


class TestCommitLogRecovery:
    def test_documents_survive_crash(self, durable_cluster):
        cluster = durable_cluster
        node = put_artist(cluster, "nirvana", genre="grunge")
        name = node.instance_name

        cluster.crash_node(name)
        cluster.recover_node(name)
        recovered = cluster.nodes[name]
        assert recovered is not node  # rebuilt from the commit log
        assert recovered.recovered_windows >= 1
        record = recovered.get_document("Artist", ("nirvana",))
        assert record.document["genre"] == "grunge"

    def test_indexes_rebuilt_with_documents(self, durable_cluster):
        cluster = durable_cluster
        node = put_artist(cluster, "kraftwerk", genre="electronic")
        name = node.instance_name

        cluster.crash_node(name)
        cluster.recover_node(name)
        recovered = cluster.nodes[name]
        hits = recovered.query_index("Artist", "genre", "electronic")
        assert [r.key for r in hits] == [("kraftwerk",)]
        # index agrees with a full scan — no divergence after replay
        scan = recovered.query_full_scan("Artist", "genre", "electronic")
        assert [r.key for r in scan] == [r.key for r in hits]

    def test_scn_resumes_without_gap_or_duplicate(self, durable_cluster):
        cluster = durable_cluster
        node = put_artist(cluster, "abba", genre="pop")
        name = node.instance_name
        partition = cluster.database.partition_for("abba")
        scn_before = node.partition_scn[partition]

        cluster.crash_node(name)
        cluster.recover_node(name)
        cluster.failover()
        recovered = cluster.nodes[name]
        assert recovered.partition_scn[partition] == scn_before

        auditor = ScnAuditor()
        recovered.on_apply = auditor.hook(name)
        auditor.observe_recovery(name, recovered.partition_scn)
        if recovered.is_master(partition):
            recovered.put_document("Artist", ("abba",),
                                   {"name": "abba", "genre": "disco",
                                    "bio": None})
        else:
            master = cluster.master_node(partition)
            master.put_document("Artist", ("abba",),
                                {"name": "abba", "genre": "disco",
                                 "bio": None})
            recovered.catch_up(partition)
        assert auditor.violations == []
        assert recovered.partition_scn[partition] == scn_before + 1

    def test_unsynced_window_refetched_from_relay(self, durable_cluster, disk):
        """A window captured by the relay but lost before the local WAL
        fsync is healed by catch-up — written-to-two-places in action."""
        cluster = durable_cluster
        node = put_artist(cluster, "devo")
        name = node.instance_name
        partition = cluster.database.partition_for("devo")
        scn = node.partition_scn[partition]

        # simulate the lost window: drop the WAL frame bytes below the
        # fsync line, as if the crash hit between relay capture and fsync
        wal = node._commit_wal
        synced = wal.synced_bytes
        node.put_document("Artist", ("devo",),
                          {"name": "devo", "genre": "new-wave", "bio": None})
        state = disk._files[f"{name}/commit.wal"]
        state.synced = state.synced[:synced]

        cluster.crash_node(name)
        cluster.recover_node(name)
        recovered = cluster.nodes[name]
        assert recovered.partition_scn[partition] == scn  # window lost locally

        recovered.become_slave(partition)
        recovered.catch_up(partition)
        assert recovered.partition_scn[partition] == scn + 1
        record = recovered.get_document("Artist", ("devo",))
        assert record.document["genre"] == "new-wave"

    def test_slave_applies_survive_crash(self, durable_cluster):
        cluster = durable_cluster
        put_artist(cluster, "queen", genre="rock")
        cluster.pump_replication()
        partition = cluster.database.partition_for("queen")
        slaves = [n for n in cluster.nodes.values()
                  if n.role_of(partition) == "SLAVE"
                  and n.partition_scn.get(partition)]
        assert slaves
        slave = slaves[0]
        name = slave.instance_name

        cluster.crash_node(name)
        cluster.recover_node(name)
        recovered = cluster.nodes[name]
        record = recovered.get_document("Artist", ("queen",))
        assert record.document["name"] == "queen"
        assert recovered.partition_scn[partition] == 1
