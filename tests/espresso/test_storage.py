"""Storage node: Table IV.1 layout, documents, mastership, transactions."""

import pytest

from repro.common.errors import (
    KeyNotFoundError,
    NotMasterError,
    TransactionAbortedError,
)
from repro.common.serialization import Field, RecordSchema
from repro.databus.relay import Relay
from repro.espresso import DocumentSchemaRegistry, EspressoStorageNode
from repro.espresso.storage import partition_buffer_name, row_table_schema

from tests.espresso.conftest import ALBUM_SCHEMA, ARTIST_SCHEMA, MUSIC, SONG_SCHEMA


@pytest.fixture
def schemas():
    registry = DocumentSchemaRegistry()
    registry.post("Music", "Artist", ARTIST_SCHEMA)
    registry.post("Music", "Album", ALBUM_SCHEMA)
    registry.post("Music", "Song", SONG_SCHEMA)
    return registry


@pytest.fixture
def node(schemas):
    built = EspressoStorageNode("storage-0", MUSIC, schemas, Relay())
    for partition in range(MUSIC.num_partitions):
        built.become_slave(partition)
        built.become_master(partition)
    return built


def test_row_layout_matches_table_iv1():
    schema = row_table_schema(MUSIC, "Song")
    names = [c.name for c in schema.columns]
    assert names == ["artist", "album", "song", "timestamp", "etag", "val",
                     "schema_version"]
    assert schema.primary_key == ("artist", "album", "song")


def test_put_and_get_document(node):
    etag = node.put_document("Artist", ("Akon",),
                             {"name": "Akon", "genre": "rnb", "bio": None})
    record = node.get_document("Artist", ("Akon",))
    assert record.document["name"] == "Akon"
    assert record.etag == etag
    assert record.schema_version == 1


def test_document_validation(node):
    from repro.common.errors import SerializationError
    with pytest.raises(SerializationError):
        node.put_document("Artist", ("X",), {"genre": "pop"})  # missing name


def test_key_depth_enforced(node):
    from repro.common.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        node.put_document("Song", ("artist-only",), {"title": "t",
                                                     "duration": 1})


def test_get_missing_document(node):
    with pytest.raises(KeyNotFoundError):
        node.get_document("Artist", ("Ghost",))


def test_collection_read_in_key_order(node):
    node.put_document("Album", ("Babyface", "Lovers"),
                      {"title": "Lovers", "year": 1986})
    node.put_document("Album", ("Babyface", "A_Closer_Look"),
                      {"title": "A Closer Look", "year": 1991})
    node.put_document("Album", ("Akon", "Trouble"),
                      {"title": "Trouble", "year": 2004})
    records = node.get_collection("Album", "Babyface")
    assert [r.key[1] for r in records] == ["A_Closer_Look", "Lovers"]


def test_delete_document(node):
    node.put_document("Artist", ("Akon",),
                      {"name": "Akon", "genre": "rnb", "bio": None})
    node.delete_document("Artist", ("Akon",))
    with pytest.raises(KeyNotFoundError):
        node.get_document("Artist", ("Akon",))
    with pytest.raises(KeyNotFoundError):
        node.delete_document("Artist", ("Akon",))


def test_conditional_put_with_etag(node):
    etag = node.put_document("Artist", ("Akon",),
                             {"name": "Akon", "genre": "rnb", "bio": None})
    node.put_document("Artist", ("Akon",),
                      {"name": "Akon", "genre": "pop", "bio": None},
                      expected_etag=etag)
    with pytest.raises(TransactionAbortedError):
        node.put_document("Artist", ("Akon",),
                          {"name": "Akon", "genre": "soul", "bio": None},
                          expected_etag=etag)  # stale etag


def test_write_requires_mastership(schemas):
    node = EspressoStorageNode("storage-1", MUSIC, schemas, Relay())
    with pytest.raises(NotMasterError):
        node.put_document("Artist", ("Akon",),
                          {"name": "Akon", "genre": "rnb", "bio": None})
    partition = MUSIC.partition_for("Akon")
    node.become_slave(partition)
    with pytest.raises(NotMasterError) as excinfo:
        node.put_document("Artist", ("Akon",),
                          {"name": "Akon", "genre": "rnb", "bio": None})
    assert excinfo.value.partition_id == partition


def test_writes_reach_relay_before_local_ack(schemas):
    relay = Relay()
    node = EspressoStorageNode("storage-0", MUSIC, schemas, relay)
    partition = MUSIC.partition_for("Akon")
    node.become_slave(partition)
    node.become_master(partition)
    node.put_document("Artist", ("Akon",),
                      {"name": "Akon", "genre": "rnb", "bio": None})
    buffer = partition_buffer_name("Music", partition)
    events = relay.stream_from(0, buffer_name=buffer)
    assert len(events) == 1
    assert events[0].key == ("Akon",)


def test_per_partition_scns_are_dense(node):
    artists = [f"artist-{i}" for i in range(30)]
    for artist in artists:
        node.put_document("Artist", (artist,),
                          {"name": artist, "genre": "g", "bio": None})
    for partition, scn in node.partition_scn.items():
        buffer = partition_buffer_name("Music", partition)
        events = node.relay.stream_from(0, buffer_name=buffer)
        scns = [e.scn for e in events]
        assert scns == list(range(1, scn + 1))


def test_transaction_all_or_nothing(node):
    ops = [
        ("put", "Album", ("Akon", "Trouble"), {"title": "Trouble", "year": 2004}),
        ("put", "Song", ("Akon", "Trouble", "Locked_Up"),
         {"title": "Locked Up", "lyrics": None, "duration": 233}),
    ]
    scn = node.transact("Akon", ops)
    assert scn >= 1
    assert node.get_document("Album", ("Akon", "Trouble")).document["year"] == 2004
    assert node.get_document("Song", ("Akon", "Trouble", "Locked_Up")) is not None


def test_transaction_rejects_cross_resource(node):
    ops = [
        ("put", "Album", ("Akon", "Trouble"), {"title": "T", "year": 2004}),
        ("put", "Album", ("Coolio", "Steal_Hear"), {"title": "S", "year": 2008}),
    ]
    with pytest.raises(TransactionAbortedError):
        node.transact("Akon", ops)
    # nothing committed
    with pytest.raises(KeyNotFoundError):
        node.get_document("Album", ("Akon", "Trouble"))


def test_transaction_failure_leaves_no_partial_state(node):
    node.put_document("Album", ("Akon", "Existing"), {"title": "E", "year": 1})
    ops = [
        ("put", "Album", ("Akon", "New"), {"title": "N", "year": 2}),
        ("delete", "Album", ("Akon", "Ghost"), None),  # will fail
    ]
    with pytest.raises(TransactionAbortedError):
        node.transact("Akon", ops)
    with pytest.raises(KeyNotFoundError):
        node.get_document("Album", ("Akon", "New"))


def test_transaction_single_relay_window(node):
    ops = [
        ("put", "Album", ("Akon", "Trouble"), {"title": "T", "year": 2004}),
        ("put", "Song", ("Akon", "Trouble", "Locked_Up"),
         {"title": "L", "lyrics": None, "duration": 233}),
    ]
    node.transact("Akon", ops)
    partition = MUSIC.partition_for("Akon")
    events = node.relay.stream_from(
        0, buffer_name=partition_buffer_name("Music", partition))
    assert len(events) == 2
    assert events[0].scn == events[1].scn
    assert not events[0].end_of_window and events[1].end_of_window


def test_schema_evolution_promotes_stored_documents(node, schemas):
    node.put_document("Artist", ("Akon",),
                      {"name": "Akon", "genre": "rnb", "bio": None})
    evolved = RecordSchema("Artist", ARTIST_SCHEMA.fields + [
        Field("hometown", "string", default="unknown", has_default=True)])
    schemas.post("Music", "Artist", evolved)
    record = node.get_document("Artist", ("Akon",))
    assert record.document["hometown"] == "unknown"
    assert record.schema_version == 1  # stored bytes untouched
    # new writes use the new version
    node.put_document("Artist", ("Cher",),
                      {"name": "Cher", "genre": "pop", "bio": None,
                       "hometown": "El Centro"})
    assert node.get_document("Artist", ("Cher",)).schema_version == 2


def test_index_query_after_writes(node):
    node.put_document("Song", ("Beatles", "SP", "Lucy"),
                      {"title": "Lucy in the Sky",
                       "lyrics": "Lucy in the sky with diamonds",
                       "duration": 208})
    node.put_document("Song", ("Beatles", "MMT", "Walrus"),
                      {"title": "I Am the Walrus",
                       "lyrics": "I am the eggman", "duration": 275})
    hits = node.query_index("Song", "lyrics", "Lucy in the sky",
                            resource_id="Beatles")
    assert [r.key for r in hits] == [("Beatles", "SP", "Lucy")]
    # index agrees with the full-scan baseline
    scan_hits = node.query_full_scan("Song", "lyrics", "lucy in the sky",
                                     resource_id="Beatles")
    assert [r.key for r in scan_hits] == [r.key for r in hits]


def test_commit_rejects_scn_race_during_wal_fsync(node):
    """A window replayed while the WAL fsync is in flight advances the
    partition SCN; the commit must abort instead of applying on top of
    state it never saw."""
    from repro.common.errors import ReplicationOrderError

    orig = node._wal_append_window

    def racing_wal_append(partition, scn, items):
        orig(partition, scn, items)
        # the fsync inside the append is a yield point: a replayed
        # window lands and advances the SCN under this commit
        node.partition_scn[partition] = (
            node.partition_scn.get(partition, 0) + 1)

    node._wal_append_window = racing_wal_append
    with pytest.raises(ReplicationOrderError):
        node.put_document("Artist", ("Akon",),
                          {"name": "Akon", "genre": "rnb", "bio": None})
    node._wal_append_window = orig
    with pytest.raises(KeyNotFoundError):
        node.get_document("Artist", ("Akon",))
