"""Router: URI routing, HTTP-ish semantics, index queries, transactions."""

from tests.espresso.conftest import put_album, put_song


def test_put_and_get_roundtrip(router):
    response = put_album(router, "Akon", "Trouble", 2004)
    assert response.status == 200
    assert response.etag
    fetched = router.get("/Music/Album/Akon/Trouble")
    assert fetched.status == 200
    assert fetched.body.document == {"title": "Trouble", "year": 2004}
    assert fetched.etag == response.etag


def test_get_missing_is_404(router):
    assert router.get("/Music/Album/Ghost/Nothing").status == 404


def test_unknown_database_rejected(router):
    assert router.get("/Films/Album/X/Y").status == 400
    assert router.put("/Films/Album/X/Y", {}).status == 400


def test_collection_get(router):
    put_album(router, "Babyface", "Lovers", 1986)
    put_album(router, "Babyface", "A_Closer_Look", 1991)
    put_album(router, "Babyface", "Face2Face", 2001)
    response = router.get("/Music/Album/Babyface")
    assert response.status == 200
    assert [r.key[1] for r in response.body] == \
        ["A_Closer_Look", "Face2Face", "Lovers"]


def test_empty_collection_is_404(router):
    assert router.get("/Music/Album/Nobody").status == 404


def test_requests_route_to_partition_master(router, cluster):
    put_album(router, "Akon", "Trouble", 2004)
    partition = cluster.database.partition_for("Akon")
    master = cluster.master_node(partition)
    assert master.local.table("Album").contains(("Akon", "Trouble"))


def test_conditional_put(router):
    first = put_album(router, "Akon", "Trouble", 2004)
    ok = router.put("/Music/Album/Akon/Trouble",
                    {"title": "Trouble", "year": 2005},
                    if_match=first.etag)
    assert ok.status == 200
    stale = router.put("/Music/Album/Akon/Trouble",
                       {"title": "Trouble", "year": 2006},
                       if_match=first.etag)
    assert stale.status == 412
    assert router.get("/Music/Album/Akon/Trouble").body.document["year"] == 2005


def test_delete(router):
    put_album(router, "Akon", "Trouble", 2004)
    assert router.delete("/Music/Album/Akon/Trouble").status == 200
    assert router.get("/Music/Album/Akon/Trouble").status == 404
    assert router.delete("/Music/Album/Akon/Trouble").status == 404


def test_index_query_via_uri(router):
    put_song(router, "The_Beatles", "Sgt._Pepper", "Lucy_in_the_Sky",
             lyrics="Lucy in the sky with diamonds")
    put_song(router, "The_Beatles", "Magical_Mystery_Tour", "I_am_the_Walrus",
             lyrics="I am the eggman, I am the walrus, Lucy")
    put_song(router, "The_Beatles", "Abbey_Road", "Something",
             lyrics="Something in the way she moves")
    response = router.get('/Music/Song/The_Beatles?query=lyrics:"Lucy in the sky"')
    assert response.status == 200
    assert [r.key[2] for r in response.body] == ["Lucy_in_the_Sky"]
    # the paper's looser single-term example returns both Lucy songs
    both = router.get("/Music/Song/The_Beatles?query=lyrics:Lucy")
    assert {r.key[2] for r in both.body} == {"Lucy_in_the_Sky",
                                             "I_am_the_Walrus"}


def test_index_query_scoped_to_resource(router):
    put_song(router, "The_Beatles", "SP", "Lucy", lyrics="diamonds forever")
    put_song(router, "Etta_James", "Gold", "At_Last", lyrics="diamonds sparkle")
    response = router.get("/Music/Song/The_Beatles?query=lyrics:diamonds")
    assert [r.key[0] for r in response.body] == ["The_Beatles"]


def test_bad_index_query_is_400(router):
    assert router.get("/Music/Song/The_Beatles?query=nocolon").status == 400


def test_transactional_multi_table_post(router, cluster):
    ops = [
        ("put", "Album", ("Akon", "Trouble"), {"title": "Trouble", "year": 2004}),
        ("put", "Song", ("Akon", "Trouble", "Locked_Up"),
         {"title": "Locked Up", "lyrics": None, "duration": 233}),
        ("put", "Song", ("Akon", "Trouble", "Lonely"),
         {"title": "Lonely", "lyrics": None, "duration": 237}),
    ]
    response = router.post_transaction("Music", "Akon", ops)
    assert response.status == 200
    assert router.get("/Music/Album/Akon/Trouble").status == 200
    assert len(router.get("/Music/Song/Akon").body) == 2


def test_transaction_abort_is_409_and_atomic(router):
    ops = [
        ("put", "Album", ("Akon", "Trouble"), {"title": "T", "year": 2004}),
        ("delete", "Song", ("Akon", "Ghost", "Nope"), None),
    ]
    assert router.post_transaction("Music", "Akon", ops).status == 409
    assert router.get("/Music/Album/Akon/Trouble").status == 404


def test_routing_survives_failover(router, cluster):
    put_album(router, "Akon", "Trouble", 2004)
    cluster.pump_replication()
    partition = cluster.database.partition_for("Akon")
    master = cluster.master_node(partition)
    cluster.crash_node(master.instance_name)
    cluster.failover()
    response = router.get("/Music/Album/Akon/Trouble")
    assert response.status == 200
    assert response.body.document["year"] == 2004
    # writes work against the new master too
    assert put_album(router, "Akon", "Stadium", 2011).status == 200
