"""Global secondary indexes via the update stream (§IV.A future work)."""

import pytest

from repro.espresso.global_index import GlobalIndexService

from tests.espresso.conftest import put_album, put_song


@pytest.fixture
def service(cluster):
    return GlobalIndexService(cluster)


def test_query_spans_resources(router, service):
    """The whole point: local indexes are scoped to one resource_id;
    the global index answers across all of them."""
    put_album(router, "Akon", "Trouble", 2004)
    put_album(router, "Babyface", "Grown_and_Sexy", 2004)
    put_album(router, "Coolio", "Steal_Hear", 2008)
    service.catch_up()
    keys = service.query_keys("Album", "year", "2004")
    assert keys == [("Akon", "Trouble"), ("Babyface", "Grown_and_Sexy")]


def test_query_documents_fetches_from_masters(router, service):
    put_album(router, "Akon", "Trouble", 2004)
    put_album(router, "Babyface", "Grown_and_Sexy", 2004)
    service.catch_up()
    records = service.query_documents("Album", "year", "2004")
    assert [r.document["title"] for r in records] == ["Trouble",
                                                      "Grown and Sexy"]


def test_free_text_across_artists(router, service):
    put_song(router, "The_Beatles", "SP", "Lucy", lyrics="diamonds in the sky")
    put_song(router, "Etta_James", "Gold", "At_Last", lyrics="sky of blue")
    put_song(router, "Akon", "Trouble", "Lonely", lyrics="so lonely")
    service.catch_up()
    keys = service.query_keys("Song", "lyrics", "sky")
    assert {k[0] for k in keys} == {"The_Beatles", "Etta_James"}


def test_eventual_consistency_lag(router, service):
    put_album(router, "Akon", "Trouble", 2004)
    assert service.lag() > 0
    assert service.query_keys("Album", "year", "2004") == []  # not yet
    service.catch_up()
    assert service.lag() == 0
    assert service.query_keys("Album", "year", "2004") == [("Akon", "Trouble")]


def test_updates_move_postings(router, service):
    put_album(router, "Akon", "Trouble", 2004)
    service.catch_up()
    router.put("/Music/Album/Akon/Trouble", {"title": "Trouble", "year": 2005})
    service.catch_up()
    assert service.query_keys("Album", "year", "2004") == []
    assert service.query_keys("Album", "year", "2005") == [("Akon", "Trouble")]


def test_deletes_remove_postings(router, service):
    put_album(router, "Akon", "Trouble", 2004)
    service.catch_up()
    router.delete("/Music/Album/Akon/Trouble")
    service.catch_up()
    assert service.query_keys("Album", "year", "2004") == []


def test_transactions_indexed_atomically(router, service):
    ops = [
        ("put", "Album", ("Cher", "Believe"), {"title": "Believe", "year": 1998}),
        ("put", "Song", ("Cher", "Believe", "Believe"),
         {"title": "Believe", "lyrics": "life after love", "duration": 235}),
    ]
    router.post_transaction("Music", "Cher", ops)
    service.catch_up()
    assert service.query_keys("Album", "year", "1998") == [("Cher", "Believe")]
    assert service.query_keys("Song", "lyrics", "life after love") == \
        [("Cher", "Believe", "Believe")]


def test_survives_failover(router, cluster, service):
    put_album(router, "Akon", "Trouble", 2004)
    service.catch_up()
    cluster.pump_replication()
    partition = cluster.database.partition_for("Akon")
    cluster.crash_node(cluster.master_node(partition).instance_name)
    cluster.failover()
    # index still answers, and document fetch goes to the new master
    records = service.query_documents("Album", "year", "2004")
    assert records[0].document["title"] == "Trouble"
    # new writes after failover keep flowing into the index
    put_album(router, "Akon", "Stadium", 2011)
    service.catch_up()
    assert service.query_keys("Album", "year", "2011") == [("Akon", "Stadium")]
