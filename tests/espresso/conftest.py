"""Shared Espresso fixtures: the paper's Music database."""

import pytest

from repro.common.serialization import Field, RecordSchema
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema, Router

MUSIC = DatabaseSchema(
    name="Music",
    num_partitions=8,
    replication_factor=2,
    tables=(
        EspressoTableSchema("Artist", ("artist",)),
        EspressoTableSchema("Album", ("artist", "album")),
        EspressoTableSchema("Song", ("artist", "album", "song")),
    ),
)

ARTIST_SCHEMA = RecordSchema("Artist", [
    Field("name", "string"),
    Field("genre", "string", indexed=True),
    Field("bio", ["null", "string"]),
])
ALBUM_SCHEMA = RecordSchema("Album", [
    Field("title", "string"),
    Field("year", "long", indexed=True),
])
SONG_SCHEMA = RecordSchema("Song", [
    Field("title", "string"),
    Field("lyrics", ["null", "string"], free_text=True),
    Field("duration", "long"),
])


@pytest.fixture
def cluster():
    built = EspressoCluster(MUSIC, num_nodes=3)
    built.post_document_schema("Artist", ARTIST_SCHEMA)
    built.post_document_schema("Album", ALBUM_SCHEMA)
    built.post_document_schema("Song", SONG_SCHEMA)
    built.start()
    return built


@pytest.fixture
def router(cluster):
    return Router(cluster)


def put_album(router, artist, album, year):
    return router.put(f"/Music/Album/{artist}/{album}",
                      {"title": album.replace("_", " "), "year": year})


def put_song(router, artist, album, song, lyrics=None, duration=180):
    return router.put(
        f"/Music/Song/{artist}/{album}/{song}",
        {"title": song.replace("_", " "), "lyrics": lyrics,
         "duration": duration})
