"""Per-partition admission control at the Espresso router: hot
partitions shed their own overflow as retryable 503s; cold partitions
and higher-priority classes keep serving."""

from repro.common.overload import PRIORITY_LIVE
from repro.common.resilience import RetryPolicy
from repro.espresso import Router

from tests.espresso.conftest import put_album


def drain_partition(router, resource_id, tokens_left=0.0):
    admission = router.admission_for(
        router.cluster.database.partition_for(resource_id))
    while admission.bucket.available > tokens_left:
        assert admission.try_admit(PRIORITY_LIVE)
    return admission


def test_admission_disabled_by_default(cluster):
    router = Router(cluster)
    assert router.admission_for(0) is None
    assert put_album(router, "Akon", "Trouble", 2004).status == 200


def test_hot_partition_sheds_as_503_with_retry_after(cluster):
    router = Router(cluster, admission_rate=0.001, admission_burst=5.0)
    put_album(router, "Akon", "Trouble", 2004)
    drain_partition(router, "Akon")
    response = router.get("/Music/Album/Akon/Trouble")
    assert response.status == 503
    assert response.retry_after > 0
    assert "shed" in response.body


def test_shed_is_per_partition_not_per_node(cluster):
    # two artists on different partitions: overloading one leaves the
    # other serving, even when both live on the same storage node
    router = Router(cluster, admission_rate=0.001, admission_burst=5.0)
    artists = ["Akon", "Babyface", "Cher", "Drake", "Eminem"]
    partition_of = cluster.database.partition_for
    cold = next(a for a in artists[1:]
                if partition_of(a) != partition_of(artists[0]))
    put_album(router, artists[0], "Hot", 2004)
    put_album(router, cold, "Cold", 2004)
    drain_partition(router, artists[0])
    assert router.get(f"/Music/Album/{artists[0]}/Hot").status == 503
    assert router.get(f"/Music/Album/{cold}/Cold").status == 200


def test_writes_shed_before_reads_on_the_same_partition(cluster):
    # write floor 0.15 * 10 = 1.5 tokens; live floor 0
    router = Router(cluster, admission_rate=0.001, admission_burst=10.0)
    put_album(router, "Akon", "Trouble", 2004)
    drain_partition(router, "Akon", tokens_left=1.0)
    assert put_album(router, "Akon", "Konvicted", 2006).status == 503
    assert router.get("/Music/Album/Akon/Trouble").status == 200


def test_shed_503_retried_against_the_resilience_budget(cluster):
    # with a retry policy the router's backoff sleeps advance the
    # SimClock, the bucket refills, and the retry succeeds — "clients
    # retry 503s against the budget", no fast-fail surfaced
    router = Router(cluster, admission_rate=50.0, admission_burst=2.0,
                    retry_policy=RetryPolicy(max_attempts=4,
                                             base_delay=0.05, jitter=0.0))
    put_album(router, "Akon", "Trouble", 2004)
    drain_partition(router, "Akon")
    response = router.get("/Music/Album/Akon/Trouble")
    assert response.status == 200
    assert router.metrics.counters["get.retries"].value >= 1


def test_shed_without_policy_is_a_fast_503(cluster):
    router = Router(cluster, admission_rate=50.0, admission_burst=2.0)
    put_album(router, "Akon", "Trouble", 2004)
    drain_partition(router, "Akon")
    before = cluster.clock.now()
    assert router.get("/Music/Album/Akon/Trouble").status == 503
    assert cluster.clock.now() == before   # no sleeping on the shed path
