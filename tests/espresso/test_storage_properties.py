"""Property-based Espresso storage invariants."""

from hypothesis import given, settings, strategies as st

from repro.databus.relay import Relay
from repro.espresso import DocumentSchemaRegistry
from repro.espresso.storage import EspressoStorageNode

from tests.espresso.conftest import ALBUM_SCHEMA, ARTIST_SCHEMA, MUSIC, SONG_SCHEMA


def make_node(name="n0"):
    schemas = DocumentSchemaRegistry()
    schemas.post("Music", "Artist", ARTIST_SCHEMA)
    schemas.post("Music", "Album", ALBUM_SCHEMA)
    schemas.post("Music", "Song", SONG_SCHEMA)
    relay = Relay(max_events_per_buffer=100_000)
    node = EspressoStorageNode(name, MUSIC, schemas, relay)
    for partition in range(MUSIC.num_partitions):
        node.become_slave(partition)
        node.become_master(partition)
    return node, relay


artist_names = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd")),
    min_size=1, max_size=12)
album_ops = st.lists(
    st.tuples(st.sampled_from(["put", "delete"]), artist_names,
              st.integers(0, 3), st.integers(1900, 2030)),
    max_size=40)


@settings(max_examples=40, deadline=None)
@given(album_ops)
def test_storage_matches_model_and_replica_converges(ops):
    """The master's documents match a dict model, and a slave replaying
    the relay converges to the same state — timeline consistency as a
    property."""
    master, relay = make_node("master")
    model: dict[tuple, dict] = {}
    for op, artist, album_number, year in ops:
        key = (artist, f"album-{album_number}")
        if op == "put":
            document = {"title": key[1], "year": year}
            master.put_document("Album", key, document)
            model[key] = document
        elif key in model:
            master.delete_document("Album", key)
            del model[key]

    # master state equals the model
    stored = {}
    for row in master.local.table("Album").scan():
        record = master._decode_row("Album", row)
        stored[record.key] = record.document
    assert stored == model

    # an independent slave consuming the same relay converges
    slave = EspressoStorageNode("slave", MUSIC, master.schemas, relay)
    for partition in range(MUSIC.num_partitions):
        slave.become_slave(partition)
        slave.catch_up(partition)
    slave_state = {}
    for row in slave.local.table("Album").scan():
        record = slave._decode_row("Album", row)
        slave_state[record.key] = record.document
    assert slave_state == model
    assert slave.partition_scn == master.partition_scn


@settings(max_examples=30, deadline=None)
@given(album_ops)
def test_index_always_agrees_with_scan(ops):
    node, _ = make_node()
    for op, artist, album_number, year in ops:
        key = (artist, f"album-{album_number}")
        if op == "put":
            node.put_document("Album", key, {"title": key[1], "year": year})
        elif node.local.table("Album").contains(key):
            node.delete_document("Album", key)
    # for every year present, the index and a full scan agree
    years = {row_record.document["year"]
             for row in node.local.table("Album").scan()
             for row_record in [node._decode_row("Album", row)]}
    for year in years:
        indexed = {r.key for r in node.query_index("Album", "year", str(year))}
        scanned = set()
        for row in node.local.table("Album").scan():
            record = node._decode_row("Album", row)
            if record.document["year"] == year:
                scanned.add(record.key)
        assert indexed == scanned
