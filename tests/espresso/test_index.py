"""Local secondary index: term and free-text postings."""

import pytest

from repro.common.errors import ConfigurationError
from repro.espresso import LocalSecondaryIndex
from repro.espresso.index import tokenize

from tests.espresso.conftest import SONG_SCHEMA, ALBUM_SCHEMA


def test_tokenize():
    assert tokenize("Lucy in the Sky, with Diamonds!") == \
        ["lucy", "in", "the", "sky", "with", "diamonds"]


def test_term_index_exact_match():
    index = LocalSecondaryIndex(ALBUM_SCHEMA)
    index.add(("Akon", "Trouble"), {"title": "Trouble", "year": 2004})
    index.add(("Akon", "Stadium"), {"title": "Stadium", "year": 2011})
    assert index.query("year", "2004") == [("Akon", "Trouble")]
    assert index.query("year", "1999") == []


def test_free_text_all_terms_must_match():
    index = LocalSecondaryIndex(SONG_SCHEMA)
    index.add(("Beatles", "SP", "Lucy"),
              {"title": "Lucy", "lyrics": "Lucy in the sky with diamonds",
               "duration": 1})
    index.add(("Beatles", "MMT", "Walrus"),
              {"title": "Walrus", "lyrics": "I am the walrus", "duration": 1})
    assert index.query("lyrics", "Lucy in the sky") == [("Beatles", "SP", "Lucy")]
    assert index.query("lyrics", "the") == [("Beatles", "MMT", "Walrus"),
                                            ("Beatles", "SP", "Lucy")]
    assert index.query("lyrics", "lucy walrus") == []


def test_resource_scoping():
    index = LocalSecondaryIndex(SONG_SCHEMA)
    index.add(("A", "x", "s1"), {"title": "s", "lyrics": "love", "duration": 1})
    index.add(("B", "y", "s2"), {"title": "s", "lyrics": "love", "duration": 1})
    assert index.query("lyrics", "love", resource_id="A") == [("A", "x", "s1")]


def test_unindexed_field_rejected():
    index = LocalSecondaryIndex(SONG_SCHEMA)
    with pytest.raises(ConfigurationError):
        index.query("duration", "1")


def test_reindex_replaces_old_terms():
    index = LocalSecondaryIndex(ALBUM_SCHEMA)
    index.add(("A", "x"), {"title": "x", "year": 2000})
    index.add(("A", "x"), {"title": "x", "year": 2001})
    assert index.query("year", "2000") == []
    assert index.query("year", "2001") == [("A", "x")]


def test_remove_clears_postings():
    index = LocalSecondaryIndex(ALBUM_SCHEMA)
    index.add(("A", "x"), {"title": "x", "year": 2000})
    index.remove(("A", "x"))
    assert index.query("year", "2000") == []
    assert index.is_empty


def test_null_fields_not_indexed():
    index = LocalSecondaryIndex(SONG_SCHEMA)
    index.add(("A", "x", "s"), {"title": "s", "lyrics": None, "duration": 1})
    assert index.query("lyrics", "anything") == []


def test_case_insensitive_matching():
    index = LocalSecondaryIndex(ALBUM_SCHEMA)
    index.add(("A", "x"), {"title": "X", "year": 2000})
    assert index.query("year", "2000") == [("A", "x")]
    text_index = LocalSecondaryIndex(SONG_SCHEMA)
    text_index.add(("A", "x", "s"),
                   {"title": "s", "lyrics": "LOVE Me Do", "duration": 1})
    assert text_index.query("lyrics", "love me") == [("A", "x", "s")]
