"""Database/table/document schemas and partitioning."""

import pytest

from repro.common.errors import ConfigurationError, SchemaCompatibilityError
from repro.common.serialization import Field, RecordSchema
from repro.espresso import DatabaseSchema, DocumentSchemaRegistry, EspressoTableSchema

from tests.espresso.conftest import ARTIST_SCHEMA, MUSIC


def test_table_schema_validation():
    with pytest.raises(ConfigurationError):
        EspressoTableSchema("T", ())
    with pytest.raises(ConfigurationError):
        EspressoTableSchema("T", ("a", "a"))


def test_database_schema_validation():
    with pytest.raises(ConfigurationError):
        DatabaseSchema("D", partitioning="range")  # future work per paper
    with pytest.raises(ConfigurationError):
        DatabaseSchema("D", num_partitions=0)


def test_tables_share_resource_partitioning():
    """All tables keyed by the same resource_id partition identically —
    the transactional-update prerequisite (§IV.A)."""
    for artist in ("Akon", "Babyface", "Coolio", "Etta_James"):
        partitions = {MUSIC.partition_for(artist)}
        assert len(partitions) == 1
        assert 0 <= partitions.pop() < MUSIC.num_partitions


def test_unpartitioned_maps_everything_to_zero():
    db = DatabaseSchema("D", partitioning="unpartitioned",
                        tables=(EspressoTableSchema("T", ("k",)),))
    assert db.partition_for("anything") == 0
    assert db.partition_for("else") == 0


def test_partitioning_spreads_resources():
    partitions = {MUSIC.partition_for(f"artist-{i}") for i in range(200)}
    assert len(partitions) == MUSIC.num_partitions


def test_table_lookup():
    assert MUSIC.table("Song").key_depth == 3
    assert MUSIC.table("Artist").resource_field == "artist"
    with pytest.raises(ConfigurationError):
        MUSIC.table("Ghost")


def test_registry_versioning_and_evolution():
    registry = DocumentSchemaRegistry()
    assert registry.post("Music", "Artist", ARTIST_SCHEMA) == 1
    evolved = RecordSchema("Artist", ARTIST_SCHEMA.fields + [
        Field("hometown", "string", default="unknown", has_default=True)])
    assert registry.post("Music", "Artist", evolved) == 2
    assert registry.latest("Music", "Artist").version == 2
    assert registry.get("Music", "Artist", 1).version == 1


def test_registry_rejects_incompatible_evolution():
    registry = DocumentSchemaRegistry()
    registry.post("Music", "Artist", ARTIST_SCHEMA)
    bad = RecordSchema("Artist", [Field("name", "long")])
    with pytest.raises(SchemaCompatibilityError):
        registry.post("Music", "Artist", bad)


def test_registry_enforces_schema_name():
    registry = DocumentSchemaRegistry()
    with pytest.raises(ConfigurationError):
        registry.post("Music", "Artist", RecordSchema("Wrong", [Field("x", "int")]))


def test_registry_missing_lookups():
    registry = DocumentSchemaRegistry()
    with pytest.raises(ConfigurationError):
        registry.latest("Music", "Artist")
    assert not registry.has_schema("Music", "Artist")
