"""URI parsing for the hierarchical document model."""

import pytest

from repro.common.errors import ConfigurationError
from repro.espresso import parse_uri
from repro.espresso.uri import parse_index_query


def test_singleton_resource():
    uri = parse_uri("/Music/Artist/Rolling_Stones")
    assert uri.database == "Music"
    assert uri.table == "Artist"
    assert uri.resource_id == "Rolling_Stones"
    assert uri.key == ("Rolling_Stones",)
    assert uri.is_collection


def test_subresources():
    uri = parse_uri("/Music/Song/Etta_James/Gold/At_Last")
    assert uri.key == ("Etta_James", "Gold", "At_Last")
    assert not uri.is_collection


def test_collection_uri():
    uri = parse_uri("/Music/Song/The_Beatles")
    assert uri.is_collection
    assert uri.resource_id == "The_Beatles"


def test_query_parameter():
    uri = parse_uri('/Music/Song/The_Beatles?query=lyrics:"Lucy in the sky"')
    assert uri.query == 'lyrics:"Lucy in the sky"'


def test_full_url_accepted():
    uri = parse_uri("http://host:1234/Music/Artist/Cher")
    assert uri.database == "Music"
    assert uri.resource_id == "Cher"


def test_percent_decoding():
    uri = parse_uri("/Music/Artist/Guns%20N%20Roses")
    assert uri.resource_id == "Guns N Roses"


def test_wildcard_table_is_transactional():
    assert parse_uri("/Music/*/Akon").is_transactional


def test_too_short_rejected():
    with pytest.raises(ConfigurationError):
        parse_uri("/Music")
    with pytest.raises(ConfigurationError):
        parse_uri("relative/path")


def test_key_requires_resource():
    uri = parse_uri("/Music/Artist")
    with pytest.raises(ConfigurationError):
        uri.key


def test_parse_index_query():
    assert parse_index_query("year:2004") == ("year", "2004")
    assert parse_index_query('lyrics:"Lucy in the sky"') == ("lyrics",
                                                             "Lucy in the sky")
    with pytest.raises(ConfigurationError):
        parse_index_query("no-colon")
    with pytest.raises(ConfigurationError):
        parse_index_query("field:")
