"""Controller convergence, failover, and the single-master invariant."""

import pytest

from repro.common.errors import ConfigurationError
from repro.helix import (
    MASTER_SLAVE,
    HelixController,
    Participant,
    compute_ideal_state,
)
from repro.zookeeper import ZooKeeperServer


def build_cluster(instances=("node-a", "node-b", "node-c"),
                  partitions=6, replicas=2):
    zk = ZooKeeperServer()
    controller = HelixController("espresso", zk)
    participants = {}
    for name in instances:
        participant = Participant(name, "espresso", zk)
        participant.connect()
        controller.register_participant(participant)
        participants[name] = participant
    ideal = compute_ideal_state("Album", list(instances), partitions,
                                replicas, MASTER_SLAVE)
    controller.add_resource(ideal)
    return zk, controller, participants


def assert_single_master_invariant(controller, resource="Album"):
    for partition, states in controller.current_state(resource).items():
        masters = [i for i, s in states.items() if s == "MASTER"]
        assert len(masters) <= 1, f"partition {partition} has masters {masters}"


def test_ideal_state_balanced_masters():
    ideal = compute_ideal_state("r", ["a", "b", "c"], 9, 2, MASTER_SLAVE)
    counts = ideal.master_counts()
    assert set(counts.values()) == {3}


def test_ideal_state_validation():
    with pytest.raises(ConfigurationError):
        compute_ideal_state("r", [], 4, 1, MASTER_SLAVE)
    with pytest.raises(ConfigurationError):
        compute_ideal_state("r", ["a"], 4, 2, MASTER_SLAVE)


def test_converges_to_ideal_state():
    _, controller, participants = build_cluster()
    iterations = controller.converge()
    assert iterations >= 2  # OFFLINE->SLAVE then SLAVE->MASTER
    ideal = controller.ideal_state("Album")
    current = controller.current_state("Album")
    for partition in range(ideal.num_partitions):
        assert current[partition][ideal.ideal_master(partition)] == "MASTER"
        slaves = [i for i, s in current[partition].items() if s == "SLAVE"]
        assert len(slaves) == ideal.replicas - 1
    assert_single_master_invariant(controller)


def test_every_pipeline_pass_preserves_single_master():
    _, controller, _ = build_cluster()
    for _ in range(10):
        controller.run_pipeline()
        assert_single_master_invariant(controller)


def test_failover_promotes_slave():
    _, controller, participants = build_cluster()
    controller.converge()
    ideal = controller.ideal_state("Album")
    victim = ideal.ideal_master(0)
    participants[victim].disconnect()
    controller.converge()
    view = controller.external_view("Album")
    new_master = view.master_of(0)
    assert new_master is not None
    assert new_master != victim
    assert_single_master_invariant(controller)


def test_recovered_node_reclaims_ideal_mastership():
    _, controller, participants = build_cluster()
    controller.converge()
    ideal = controller.ideal_state("Album")
    victim = ideal.ideal_master(0)
    participants[victim].disconnect()
    controller.converge()
    participants[victim].connect()
    controller.converge()
    assert controller.external_view("Album").master_of(0) == victim
    assert_single_master_invariant(controller)


def test_mastership_move_demotes_before_promoting():
    _, controller, participants = build_cluster()
    controller.converge()
    ideal = controller.ideal_state("Album")
    victim = ideal.ideal_master(0)
    participants[victim].disconnect()
    controller.converge()
    participants[victim].connect()
    # record the order of transitions in the reconvergence
    start = len(controller.transitions_issued)
    controller.converge()
    relevant = [t for t in controller.transitions_issued[start:]
                if t.partition == 0]
    promote_idx = [i for i, t in enumerate(relevant)
                   if t.to_state == "MASTER" and t.instance == victim]
    demote_idx = [i for i, t in enumerate(relevant)
                  if t.from_state == "MASTER" and t.instance != victim]
    assert promote_idx and demote_idx
    assert max(demote_idx) < min(promote_idx)


def test_all_nodes_down_leaves_no_assignment():
    _, controller, participants = build_cluster()
    controller.converge()
    for participant in participants.values():
        participant.disconnect()
    controller.converge()
    assert controller.current_state("Album") == {}


def test_external_view_lists_slaves():
    _, controller, _ = build_cluster(partitions=2, replicas=3)
    controller.converge()
    view = controller.external_view("Album")
    assert len(view.instances_in_state(0, "SLAVE")) == 2


def test_expansion_rebalances_masters():
    zk, controller, participants = build_cluster(partitions=8, replicas=2)
    controller.converge()
    newcomer = Participant("node-d", "espresso", zk)
    newcomer.connect()
    controller.register_participant(newcomer)
    controller.rebalance_resource(
        "Album", ["node-a", "node-b", "node-c", "node-d"])
    controller.converge()
    view = controller.external_view("Album")
    master_counts = {}
    for partition in range(8):
        master = view.master_of(partition)
        assert master is not None
        master_counts[master] = master_counts.get(master, 0) + 1
    assert master_counts.get("node-d", 0) == 2
    assert max(master_counts.values()) == 2
    assert_single_master_invariant(controller)


def test_duplicate_resource_rejected():
    _, controller, _ = build_cluster()
    with pytest.raises(ConfigurationError):
        controller.add_resource(controller.ideal_state("Album"))


def test_participant_transition_history_records_work():
    _, controller, participants = build_cluster(partitions=2, replicas=1)
    controller.converge()
    total = sum(len(p.transitions_executed) for p in participants.values())
    # 2 partitions, replica 1: OFFLINE->SLAVE + SLAVE->MASTER each
    assert total == 4
