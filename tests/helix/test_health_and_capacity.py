"""Health monitoring SLAs and capacity-aware placement (§IV.B)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.helix import MASTER_SLAVE, compute_ideal_state
from repro.helix.health import AlertCode, HealthMonitor, HealthSLA, Severity
from repro.helix.idealstate import compute_weighted_ideal_state

from tests.helix.test_controller import build_cluster


class TestHealthMonitor:
    def test_healthy_cluster_has_no_alerts(self):
        _, controller, _ = build_cluster()
        controller.converge()
        monitor = HealthMonitor(controller)
        assert monitor.evaluate() == []
        assert monitor.is_healthy()

    def test_sla_validation(self):
        with pytest.raises(ConfigurationError):
            HealthSLA(min_live_instance_fraction=0.0)
        with pytest.raises(ConfigurationError):
            HealthSLA(max_master_imbalance=-1)

    def test_under_replication_detected(self):
        _, controller, participants = build_cluster(partitions=4, replicas=2)
        controller.converge()
        victim = next(iter(participants))
        participants[victim].disconnect()
        controller.converge()  # failover happened, but replicas are short
        monitor = HealthMonitor(controller,
                                HealthSLA(min_live_instance_fraction=0.1))
        alerts = monitor.evaluate()
        codes = {a.code for a in alerts}
        assert AlertCode.UNDER_REPLICATED in codes
        assert AlertCode.NO_MASTER not in codes  # failover covered masters

    def test_no_master_detected_before_failover(self):
        _, controller, participants = build_cluster(partitions=4, replicas=2)
        controller.converge()
        victim = controller.ideal_state("Album").ideal_master(0)
        participants[victim].disconnect()
        # no converge: the controller has not reacted yet
        monitor = HealthMonitor(controller,
                                HealthSLA(min_live_instance_fraction=0.1))
        alerts = monitor.evaluate()
        assert any(a.code is AlertCode.NO_MASTER
                   and a.severity is Severity.CRITICAL for a in alerts)
        # after the controller reacts, the alert clears
        controller.converge()
        assert not any(a.code is AlertCode.NO_MASTER
                       for a in monitor.evaluate())

    def test_instances_down_sla(self):
        _, controller, participants = build_cluster()
        controller.converge()
        for participant in list(participants.values())[:2]:
            participant.disconnect()
        controller.converge()
        monitor = HealthMonitor(controller,
                                HealthSLA(min_live_instance_fraction=0.67))
        alerts = monitor.critical_alerts()
        assert any(a.code is AlertCode.INSTANCES_DOWN for a in alerts)

    def test_alert_history_accumulates(self):
        _, controller, participants = build_cluster()
        controller.converge()
        monitor = HealthMonitor(controller)
        monitor.evaluate()
        next(iter(participants.values())).disconnect()
        monitor.evaluate()
        assert monitor.evaluations == 2
        assert monitor.alert_history  # the failure sweep recorded alerts

    def test_alert_string_rendering(self):
        _, controller, participants = build_cluster()
        controller.converge()
        next(iter(participants.values())).disconnect()
        monitor = HealthMonitor(controller,
                                HealthSLA(min_live_instance_fraction=0.1))
        alerts = monitor.evaluate()
        rendered = str(alerts[0])
        assert alerts[0].code.value in rendered


class TestCapacityAwarePlacement:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compute_weighted_ideal_state("r", {}, 4, 1, MASTER_SLAVE)
        with pytest.raises(ConfigurationError):
            compute_weighted_ideal_state("r", {"a": 0}, 4, 1, MASTER_SLAVE)
        with pytest.raises(ConfigurationError):
            compute_weighted_ideal_state("r", {"a": 1}, 4, 2, MASTER_SLAVE)

    def test_masters_proportional_to_capacity(self):
        ideal = compute_weighted_ideal_state(
            "r", {"big": 2.0, "small-1": 1.0, "small-2": 1.0},
            num_partitions=12, replicas=2, state_model=MASTER_SLAVE)
        counts = ideal.master_counts()
        assert counts["big"] == 6
        assert counts["small-1"] == 3
        assert counts["small-2"] == 3

    def test_equal_capacity_matches_unweighted_balance(self):
        weighted = compute_weighted_ideal_state(
            "r", {"a": 1.0, "b": 1.0, "c": 1.0}, 9, 2, MASTER_SLAVE)
        unweighted = compute_ideal_state("r", ["a", "b", "c"], 9, 2,
                                         MASTER_SLAVE)
        assert sorted(weighted.master_counts().values()) == \
            sorted(unweighted.master_counts().values())

    def test_preference_lists_are_distinct(self):
        ideal = compute_weighted_ideal_state(
            "r", {"a": 3.0, "b": 1.0, "c": 1.0}, 10, 3, MASTER_SLAVE)
        for partition in range(10):
            plist = ideal.preference_list(partition)
            assert len(set(plist)) == len(plist) == 3

    def test_largest_remainder_rounds_sensibly(self):
        ideal = compute_weighted_ideal_state(
            "r", {"a": 1.0, "b": 1.0, "c": 1.0}, 10, 1, MASTER_SLAVE)
        counts = sorted(ideal.master_counts().values())
        assert counts == [3, 3, 4]

    def test_masters_interleaved_not_clumped(self):
        ideal = compute_weighted_ideal_state(
            "r", {"big": 3.0, "small": 1.0}, 8, 1, MASTER_SLAVE)
        masters = [ideal.ideal_master(p) for p in range(8)]
        # the small node's masterships are spread out, not all at the end
        small_positions = [i for i, m in enumerate(masters) if m == "small"]
        assert small_positions
        assert small_positions[0] < 6
