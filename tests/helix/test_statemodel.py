"""State model definitions and transition-path computation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.helix import MASTER_SLAVE, ONLINE_OFFLINE, StateModelDef


def test_master_slave_legal_edges():
    assert MASTER_SLAVE.is_legal("OFFLINE", "SLAVE")
    assert MASTER_SLAVE.is_legal("SLAVE", "MASTER")
    assert not MASTER_SLAVE.is_legal("OFFLINE", "MASTER")
    assert not MASTER_SLAVE.is_legal("MASTER", "OFFLINE")


def test_next_step_direct():
    assert MASTER_SLAVE.next_step("OFFLINE", "SLAVE") == "SLAVE"
    assert MASTER_SLAVE.next_step("SLAVE", "MASTER") == "MASTER"


def test_next_step_multi_hop():
    # OFFLINE -> MASTER requires passing through SLAVE
    assert MASTER_SLAVE.next_step("OFFLINE", "MASTER") == "SLAVE"
    # MASTER -> OFFLINE requires demotion first
    assert MASTER_SLAVE.next_step("MASTER", "OFFLINE") == "SLAVE"
    # MASTER -> DROPPED: three hops, first is SLAVE
    assert MASTER_SLAVE.next_step("MASTER", "DROPPED") == "SLAVE"


def test_next_step_same_state_is_none():
    assert MASTER_SLAVE.next_step("SLAVE", "SLAVE") is None


def test_next_step_unreachable_is_none():
    assert MASTER_SLAVE.next_step("DROPPED", "MASTER") is None


def test_state_counts_resolution():
    assert MASTER_SLAVE.max_per_partition("MASTER", replica_count=3) == 1
    assert MASTER_SLAVE.max_per_partition("SLAVE", replica_count=3) == 3
    assert MASTER_SLAVE.max_per_partition("OFFLINE", replica_count=3) > 100


def test_online_offline_model():
    assert ONLINE_OFFLINE.next_step("OFFLINE", "ONLINE") == "ONLINE"
    assert ONLINE_OFFLINE.initial_state == "OFFLINE"


def test_invalid_model_rejected():
    with pytest.raises(ConfigurationError):
        StateModelDef("Bad", "MISSING", ("A",), ())
    with pytest.raises(ConfigurationError):
        StateModelDef("Bad", "A", ("A",), (("A", "B"),))
