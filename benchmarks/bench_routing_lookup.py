"""EXP-V4 (§II.A): O(1) full-topology routing vs O(log N) Chord hops.

Paper: "This lets us store the complete topology metadata on every node
instead of partial 'finger tables' as in Chord, thereby decreasing
lookups from O(log N) to O(1)."
"""

import math

import pytest

from benchmarks.conftest import report
from repro.voldemort.chord import ChordRing, FullTopologyRouter


def node_names(n):
    return [f"node-{i:04d}" for i in range(n)]


def test_lookup_hops_vs_cluster_size(benchmark):
    sizes = (4, 16, 64, 256)
    keys = [f"key-{i}".encode() for i in range(300)]
    results = {}

    def sweep():
        for size in sizes:
            names = node_names(size)
            chord = ChordRing(names)
            full = FullTopologyRouter(names)
            chord_hops = sum(chord.lookup(k, start_name=names[0])[1]
                             for k in keys) / len(keys)
            full_hops = sum(full.lookup(k)[1] for k in keys) / len(keys)
            results[size] = (chord_hops, full_hops)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-V4 routing hops by cluster size", {
        f"N={size}": f"chord={hops[0]:.2f} hops, full-topology={hops[1]:.0f} hop"
        for size, hops in results.items()
    }, "full topology: O(1); Chord finger tables: O(log N)")
    # full topology flat at 1, chord grows ~log N
    assert all(hops[1] == 1 for hops in results.values())
    assert results[256][0] > results[4][0]
    assert results[256][0] <= 2 * math.log2(256)


def test_full_topology_lookup_throughput(benchmark):
    router = FullTopologyRouter(node_names(256))
    keys = [f"key-{i}".encode() for i in range(1000)]

    def lookups():
        for key in keys:
            router.lookup(key)

    benchmark(lookups)
    per_lookup_us = benchmark.stats["mean"] / len(keys) * 1e6
    report(benchmark, "EXP-V4 O(1) lookup cost", {
        "mean per lookup": f"{per_lookup_us:.2f} us",
    }, "local metadata lookup, no network hops")


def test_client_vs_server_side_routing(benchmark):
    """FIG-II.1 ablation: the pluggable routing module run client-side
    (fat client, direct replica hops) vs server-side (thin client, one
    extra coordinator hop)."""
    from repro.simnet import SimNetwork, lognormal_latency
    from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
    from repro.voldemort.server_routing import ServerSideRoutedStore

    network = SimNetwork(seed=4, latency_model=lognormal_latency(0.0009, 0.4))
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4,
                               network=network)
    cluster.define_store(StoreDefinition("s", 3, 2, 2))
    fat = RoutedStore(cluster, "s")
    thin = ServerSideRoutedStore(cluster, "s")
    keys = [b"k-%04d" % i for i in range(300)]
    for key in keys:
        fat.put(key, Versioned.initial(b"v" * 64, 0))

    def read_both():
        for key in keys:
            fat.get(key)
            thin.get(key)

    benchmark.pedantic(read_both, rounds=1, iterations=1)
    fat_mean = fat.metrics.histogram("get").summary()["mean"]
    thin_mean = thin.metrics.histogram("get").summary()["mean"]
    report(benchmark, "EXP-V4b client- vs server-side routing (simulated)", {
        "client-side (fat client)": f"{fat_mean * 1000:.2f} ms",
        "server-side (thin client)": f"{thin_mean * 1000:.2f} ms",
        "coordinator-hop overhead":
            f"{(thin_mean - fat_mean) * 1000:.2f} ms",
    }, "FIG-II.1: routing is a pluggable module; server-side routing "
       "trades one extra hop for topology-free clients")
    assert thin_mean > fat_mean
