"""EXP-A1: what continuous consistency auditing costs, and how fast it
detects a planted corruption.

Two questions an operator asks before leaving an auditor running
against production stores (the posture §V.D's audit trail was built
for):

* **detection latency** — simulated seconds from a corruption landing
  to the auditor reporting it, swept over the audit tick interval (the
  floor is set by the tick cadence, not the constraint machinery);
* **steady-state overhead** — wall-clock cost of a workload cycle with
  the auditor certifying cuts and evaluating constraints every cycle,
  vs the identical un-audited pipeline.

A JSON summary lands in ``benchmarks/out/BENCH_audit.json``.
"""

import json
import pathlib
import time

from benchmarks.conftest import report
from repro.audit import Auditor, ViolationInjector, WatermarkCut, reconcile
from repro.audit.wiring import search_containment, sqlstore_pipeline_lineage
from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import FaultPlan
from repro.sqlstore import SqlDatabase

MEMBERS = 64
TICK_INTERVALS = (0.25, 1.0, 4.0)
PLANT_AT = 5.1                      # just after a tick, worst-case wait
CYCLES = 40
WRITES_PER_CYCLE = 8
OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_audit.json"


def build_pipeline(seed):
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=seed)
    source = SqlDatabase("members", clock=clock)
    source.create_table(MEMBER_TABLE)
    relay = Relay("bench-relay")
    capture = capture_from_binlog(source, relay)
    service = PeopleSearchService(relay)
    for i in range(MEMBERS):
        source.autocommit(MEMBER_TABLE.name,
                          {"member_id": i, "name": f"member-{i}",
                           "headline": "x", "industry": "y"})

    def pump():
        capture.poll()
        service.client.poll()

    return clock, disk, source, relay, capture, service, pump


def make_auditor(clock, source, capture, relay, service, pump):
    auditor = Auditor(clock)
    cut = auditor.add_cut(WatermarkCut(
        source, pump, positions=[lambda: service.client.checkpoint]))
    auditor.declare(search_containment(
        "search-containment", source, MEMBER_TABLE.name, service.index,
        horizon=lambda: cut.last_scn))
    return auditor


def detection_latency(tick_interval: float) -> dict:
    clock, disk, source, relay, capture, service, pump = build_pipeline(
        seed=int(tick_interval * 100))
    pump()
    auditor = make_auditor(clock, source, capture, relay, service, pump)
    plan = FaultPlan(clock, disk, seed=1)
    injector = ViolationInjector()
    injector.skip_index_update(
        plan, PLANT_AT, service.index, 7, key=(7,),
        constraint="search-containment",
        subject=f"search:{MEMBER_TABLE.name}")
    auditor.run_every(tick_interval)
    plan.run(until=PLANT_AT + 4 * tick_interval + 1.0)
    auditor.stop()
    audit = reconcile(injector.planted, auditor.findings)
    assert audit.exact, audit.summary()
    detected_at = auditor.findings[0].violation.detected_at
    return {"tick_interval_s": tick_interval,
            "planted_at_s": PLANT_AT,
            "detected_at_s": detected_at,
            "latency_s": round(detected_at - PLANT_AT, 6)}


def steady_state_overhead() -> dict:
    def run_cycles(audited: bool) -> float:
        clock, disk, source, relay, capture, service, pump = build_pipeline(
            seed=2 if audited else 3)
        auditor = make_auditor(clock, source, capture, relay, service, pump)
        started = time.perf_counter()
        for cycle in range(CYCLES):
            for i in range(WRITES_PER_CYCLE):
                member = MEMBERS + cycle * WRITES_PER_CYCLE + i
                source.autocommit(MEMBER_TABLE.name,
                                  {"member_id": member, "name": "new",
                                   "headline": "x", "industry": "y"})
            if audited:
                auditor.tick()   # certify a cut + evaluate constraints
            else:
                pump()           # the pipeline still has to drain
            clock.advance(1.0)
        elapsed = time.perf_counter() - started
        assert auditor.violations == []
        assert service.documents_indexed == MEMBERS + CYCLES * WRITES_PER_CYCLE
        return elapsed

    plain = run_cycles(audited=False)
    audited = run_cycles(audited=True)
    return {"cycles": CYCLES,
            "writes_per_cycle": WRITES_PER_CYCLE,
            "plain_ms_per_cycle": round(plain / CYCLES * 1e3, 3),
            "audited_ms_per_cycle": round(audited / CYCLES * 1e3, 3),
            "overhead_x": round(audited / plain, 2)}


def test_audit_costs(benchmark):
    latency = [detection_latency(interval) for interval in TICK_INTERVALS]
    overhead = steady_state_overhead()

    benchmark(detection_latency, 1.0)

    summary = {
        "benchmark": "EXP-A1 consistency auditor costs",
        "detection_latency": latency,
        "steady_state_overhead": overhead,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    report(benchmark, "EXP-A1 continuous audit: latency and overhead", {
        **{f"tick every {row['tick_interval_s']}s":
           f"detected in {row['latency_s']}s (sim)"
           for row in latency},
        "steady-state overhead":
            f"{overhead['overhead_x']}x "
            f"({overhead['plain_ms_per_cycle']} -> "
            f"{overhead['audited_ms_per_cycle']} ms/cycle)",
    }, paper_claim="§V.D: validate counts across the pipeline with "
                   "monitoring events; here generalized to continuous "
                   "cross-system constraints")
