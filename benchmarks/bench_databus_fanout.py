"""EXP-D4 (§III.B/C): consumer fan-out isolated from the source.

Paper: the relay supports "hundreds of consumers per relay with no
additional impact on the source database"; subscribers must be isolated
from the source so "increasing the number of the latter should not
impact the performance of the former".
"""

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.databus import DatabusClient, DatabusConsumer, Relay, capture_from_binlog
from repro.sqlstore import Column, SqlDatabase, TableSchema

SCHEMA = TableSchema(
    "member", (Column("member_id", int), Column("headline", str)),
    primary_key=("member_id",))


class NullConsumer(DatabusConsumer):
    def __init__(self):
        self.events = 0

    def on_data_event(self, event):
        self.events += 1


def build_pipeline(transactions=500):
    db = SqlDatabase("src", clock=SimClock())
    db.create_table(SCHEMA)
    relay = Relay(max_events_per_buffer=transactions * 2)
    capture = capture_from_binlog(db, relay)
    for i in range(transactions):
        txn = db.begin()
        txn.upsert("member", {"member_id": i, "headline": "h"})
        txn.commit()
    capture.poll(max_transactions=transactions)
    return db, relay


def test_fanout_scaling(benchmark):
    db, relay = build_pipeline()
    results = {}

    def sweep():
        for fanout in (1, 10, 100):
            consumers = [NullConsumer() for _ in range(fanout)]
            clients = [DatabusClient(c, relay) for c in consumers]
            commits_before = db.commits
            for client in clients:
                client.run_to_head()
            results[fanout] = {
                "events_per_consumer": consumers[0].events,
                "source_commits_delta": db.commits - commits_before,
            }
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-D4 consumers per relay", {
        f"{fanout} consumers": (f"{r['events_per_consumer']} events each, "
                                f"source commits +{r['source_commits_delta']}")
        for fanout, r in results.items()
    }, "hundreds of consumers per relay, zero additional source load")
    assert all(r["source_commits_delta"] == 0 for r in results.values())
    assert all(r["events_per_consumer"] == 500 for r in results.values())


def test_per_consumer_serve_cost_flat(benchmark):
    _, relay = build_pipeline()
    consumer = NullConsumer()

    def serve_one_full_pass():
        client = DatabusClient(consumer, relay)
        client.run_to_head()

    benchmark(serve_one_full_pass)
    report(benchmark, "EXP-D4 single consumer full-stream cost", {
        "relay requests served": relay.requests_served,
    }, "each extra consumer costs only relay reads, never source reads")
