"""EXP-K4 (§V.D): end-to-end pipeline latency.

Paper: "Without too much tuning, the end-to-end latency for the
complete pipeline is about 10 seconds on average, good enough for our
requirements."  The latency is dominated by the *stage intervals*
(batch flush, mirror poll, load-job schedule), not transport — which
the simulated sweep shows directly.
"""

import json

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.hadoop import MiniHDFS
from repro.kafka import KafkaCluster, Producer
from repro.kafka.mirror import HadoopLoadJob, MirrorMaker


def run_pipeline(mirror_interval: float, load_interval: float,
                 duration: float = 120.0, tmp_root: str = "") -> float:
    """Simulate the staged pipeline on a SimClock; returns the mean
    event latency (production -> landed in HDFS)."""
    clock = SimClock()
    live = KafkaCluster(2, f"{tmp_root}/live-{mirror_interval}-{load_interval}",
                        clock=clock, partitions_per_topic=2)
    replica = KafkaCluster(1, f"{tmp_root}/rep-{mirror_interval}-{load_interval}",
                           clock=clock, partitions_per_topic=2)
    live.create_topic("activity")
    producer = Producer(live, batch_size=1)
    mirror = MirrorMaker(live, replica, ["activity"], batch_size=50)
    hdfs = MiniHDFS()
    job = HadoopLoadJob(replica, hdfs, ["activity"])

    latencies = []

    def land_and_measure():
        for path in job.run_once():
            for line in hdfs.read(path).split(b"\n"):
                event = json.loads(line)
                latencies.append(clock.now() - event["t"])

    # schedule the stages at their intervals; produce one event per second
    next_mirror = mirror_interval
    next_load = load_interval
    t = 0.0
    while t < duration:
        t += 1.0
        clock.advance(1.0)
        producer.send("activity", json.dumps({"t": clock.now()}).encode())
        producer.flush()
        if clock.now() >= next_mirror:
            mirror.poll_once()
            next_mirror += mirror_interval
        if clock.now() >= next_load:
            land_and_measure()
            next_load += load_interval
    live.shutdown()
    replica.shutdown()
    return sum(latencies) / len(latencies) if latencies else float("inf")


def test_pipeline_latency_vs_stage_intervals(benchmark, tmp_path):
    results = {}

    def sweep():
        for mirror_s, load_s in ((2.0, 5.0), (5.0, 10.0), (10.0, 30.0)):
            results[(mirror_s, load_s)] = run_pipeline(
                mirror_s, load_s, tmp_root=str(tmp_path))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-K4 end-to-end latency (simulated seconds)", {
        f"mirror={m:.0f}s load={l:.0f}s": f"{mean:.1f} s mean"
        for (m, l), mean in results.items()
    }, "complete pipeline ~10 s average, dominated by stage intervals")
    ordered = [results[k] for k in sorted(results)]
    assert ordered == sorted(ordered)  # latency grows with the intervals
    # the paper's operating point (~mirror 5s / load 10s) lands near 10 s
    assert 3.0 < results[(5.0, 10.0)] < 20.0


def test_pipeline_loses_nothing_at_any_interval(benchmark, tmp_path):
    def run():
        clock = SimClock()
        live = KafkaCluster(1, str(tmp_path / "nl-live"), clock=clock,
                            partitions_per_topic=2)
        replica = KafkaCluster(1, str(tmp_path / "nl-rep"), clock=clock,
                               partitions_per_topic=2)
        live.create_topic("activity")
        producer = Producer(live, batch_size=3)
        mirror = MirrorMaker(live, replica, ["activity"])
        job = HadoopLoadJob(replica, MiniHDFS(), ["activity"])
        total = 0
        for i in range(200):
            producer.send("activity", b"e%d" % i)
            total += 1
            if i % 7 == 0:
                mirror.poll_once()
            if i % 13 == 0:
                job.run_once()
        producer.flush()
        mirror.poll_once()
        job.run_once()
        live.shutdown()
        replica.shutdown()
        return total, job.messages_loaded

    total, loaded = benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, "EXP-K4 pipeline completeness", {
        "produced": total, "landed in HDFS": loaded,
    }, "auditing system verifies there is no data loss along the pipeline")
    assert loaded == total
