"""EXP-K3 (§V.B): consumer fetch path and the offset-addressing design.

Shape targets: sequential consumption is fast and flat; locating a
fetch position costs a binary search over segment base offsets (not an
index probe per message); the message-id-index ablation shows the
memory the paper's design avoids; rewind works.
"""

import sys

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.kafka import KafkaCluster, Producer
from repro.kafka.consumer import MessageStream, SimpleConsumer
from repro.kafka.log import MessageIdIndexedLog, PartitionLog
from repro.kafka.message import Message, MessageSet


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=2, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=4,
                         flush_interval_messages=500, segment_bytes=256 * 1024)
    built.create_topic("activity")
    producer = Producer(built, batch_size=200, seed=3)
    for i in range(5000):
        producer.send("activity", b"event-payload-%06d" % i)
    producer.flush()
    built.flush_all()
    yield built
    built.shutdown()


def test_sequential_consumption_throughput(benchmark, cluster):
    def consume_everything():
        consumer = SimpleConsumer(cluster, fetch_max_bytes=128 * 1024)
        assignments = [("activity", tp.partition)
                       for tp in cluster.topic_layout("activity")]
        stream = MessageStream(consumer, assignments,
                               {a: 0 for a in assignments})
        count = sum(1 for _ in stream)
        return count, consumer

    (count, consumer) = benchmark(consume_everything)
    per_message_us = benchmark.stats["mean"] / count * 1e6
    report(benchmark, "EXP-K3 sequential consumption", {
        "messages": count,
        "cost per message": f"{per_message_us:.1f} us",
        "messages/s (single thread)": f"{1e6 / per_message_us:,.0f}",
        "fetch requests": consumer.fetch_requests,
    }, "consumers lag producers slightly; sequential reads are cheap")
    assert count == 5000


def test_segment_lookup_is_binary_search(benchmark, tmp_path):
    log = PartitionLog(str(tmp_path / "p"), segment_bytes=4096,
                       clock=SimClock())
    for i in range(2000):
        log.append(MessageSet([Message(b"x" * 50)]))
    log.flush()
    segments = len(log.segment_base_offsets())
    offsets = [i * (log.high_watermark // 500) for i in range(500)]

    def random_position_reads():
        for offset in offsets:
            # align to a fetchable position by reading a small window
            log.read(min(offset, log.high_watermark - 1), max_bytes=64)

    benchmark(random_position_reads)
    per_read_us = benchmark.stats["mean"] / len(offsets) * 1e6
    report(benchmark, "EXP-K3 offset -> segment location", {
        "segments": segments,
        "mean per positioned read": f"{per_read_us:.1f} us",
    }, "broker keeps segment base offsets in memory and binary-searches")
    log.close()


def test_id_index_ablation_memory(benchmark, tmp_path):
    """The auxiliary index the paper avoids costs O(messages) memory;
    offset addressing costs O(segments)."""
    def build():
        indexed = MessageIdIndexedLog(str(tmp_path / "idx"),
                                      clock=SimClock(), segment_bytes=8192)
        for i in range(3000):
            indexed.append(MessageSet([Message(b"y" * 40)]))
        return indexed

    indexed = benchmark.pedantic(build, rounds=1, iterations=1)
    index_bytes = sys.getsizeof(indexed.id_index)
    segment_entries = len(indexed.log.segment_base_offsets())
    report(benchmark, "EXP-K3 ablation: id index vs offset addressing", {
        "messages": 3000,
        "id-index entries": indexed.index_entries(),
        "id-index dict bytes": f"{index_bytes:,}",
        "offset-design bookkeeping entries": segment_entries,
    }, "avoiding the id index avoids O(messages) broker state")
    assert indexed.index_entries() == 3000
    assert segment_entries < 100
    indexed.close()


def test_rewind_and_reconsume(benchmark, cluster):
    consumer = SimpleConsumer(cluster)
    partition = cluster.topic_layout("activity")[0].partition

    def consume_twice():
        stream = MessageStream(consumer, [("activity", partition)],
                               {("activity", partition): 0})
        first = sum(1 for _ in stream)
        stream.seek("activity", partition, 0)
        second = sum(1 for _ in stream)
        return first, second

    first, second = benchmark(consume_twice)
    report(benchmark, "EXP-K3 rewind", {
        "first pass": first,
        "re-consumed after rewind": second,
    }, "a consumer can deliberately rewind to an old offset and "
       "re-consume — essential for error recovery")
    assert first == second > 0
