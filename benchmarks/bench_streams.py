"""EXP-S1/S2: what the stream-processing tier costs.

Two numbers an operator sizes a Samza-style deployment by:

* **end-to-end event latency** (EXP-S1) — simulated seconds from an
  event's timestamp to the moment the stateful counter task applies
  it, through the repartition hop, as a function of the poll/commit
  cadence.  The floor is one hop's cadence times the number of hops,
  not the processing cost;
* **recovery time vs state size** (EXP-S2) — wall-clock cost of
  reopening a killed task at growing store sizes, with a local
  snapshot (snapshot load + short changelog replay) vs without one
  (full replay of the compacted changelog on a moved container).

A JSON summary lands in ``benchmarks/out/BENCH_streams.json``.
"""

import json
import pathlib
import time

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.kafka.broker import KafkaCluster
from repro.kafka.message import Message, MessageSet
from repro.simnet.disk import SimDisk
from repro.streams import (
    JobCoordinator,
    StreamContainer,
    StageSpec,
    StreamTask,
    TaskInstance,
    encode_stream_message,
    route_key,
)
from repro.streams.apps import who_viewed_your_profile_job
from repro.workloads import ProfileViewEventGenerator
from repro.zookeeper import ZooKeeperServer

PARTITIONS = 4
EVENTS = 2000
CADENCES_S = (0.1, 0.5, 2.0)
STATE_SIZES = (1_000, 10_000, 50_000)
OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_streams.json"


# -- EXP-S1: end-to-end latency vs poll cadence -----------------------------

def latency_run(cadence_s: float) -> dict:
    clock = SimClock()
    disk = SimDisk(seed=int(cadence_s * 1000))
    zookeeper = ZooKeeperServer()
    cluster = KafkaCluster(3, "/kafka", zookeeper=zookeeper, clock=clock,
                           partitions_per_topic=PARTITIONS, disk=disk)
    cluster.create_topic("profile-views")
    spec = who_viewed_your_profile_job(PARTITIONS, window_s=3600.0)
    coordinator = JobCoordinator(spec, cluster, zookeeper)
    containers = [
        StreamContainer(f"c{i}", spec, cluster, zookeeper, clock,
                        disk.scope(f"c{i}"), "/state")
        for i in range(2)]
    coordinator.deploy(containers)
    generator = ProfileViewEventGenerator(num_members=500, seed=7)

    ticks = int(EVENTS / 50)
    for _ in range(ticks):
        staged = {}
        for _ in range(50):
            event = generator.next_event(timestamp=clock.now())
            partition = route_key(event["viewer"], PARTITIONS)
            staged.setdefault(partition, []).append(Message(
                encode_stream_message(event["viewer"],
                                      {"viewee": event["viewee"],
                                       "ts": event["ts"]}, event["ts"])))
        for partition, messages in sorted(staged.items()):
            broker = cluster.broker_for("profile-views", partition)
            broker.produce("profile-views", partition, MessageSet(messages))
            broker.log("profile-views", partition).flush()
        clock.advance(cadence_s)
        for container in containers:
            container.run_cycle()
    while sum(c.run_cycle() for c in containers):
        clock.advance(cadence_s)

    counted, weighted_sum, worst, p50s = 0, 0.0, 0.0, []
    for container in containers:
        for (stage, _), task in container.tasks.items():
            if stage != "count-views":
                continue
            histogram = task.metrics.histogram("e2e_latency_s")
            counted += histogram.count
            weighted_sum += histogram.mean * histogram.count
            worst = max(worst, histogram.max)
            p50s.append(histogram.percentile(50))
    assert counted == EVENTS, (counted, EVENTS)
    return {"poll_cadence_s": cadence_s,
            "events": EVENTS,
            "mean_s": round(weighted_sum / counted, 4),
            "p50_worst_task_s": round(max(p50s), 4),
            "max_s": round(worst, 4)}


# -- EXP-S2: recovery time vs state size ------------------------------------

class FillTask(StreamTask):
    def init(self, context):
        self.data = context.store("data")

    def process(self, envelope, collector):
        self.data.put(envelope.key, envelope.value)


def recovery_run(keys: int) -> dict:
    clock = SimClock()
    disk = SimDisk(seed=keys)
    zookeeper = ZooKeeperServer()
    zk = zookeeper.connect()
    cluster = KafkaCluster(1, "/kafka", zookeeper=zookeeper, clock=clock,
                           partitions_per_topic=1, segment_bytes=1 << 20,
                           disk=disk)
    cluster.create_topic("in", partitions=1)
    cluster.create_topic("__changelog-bench-data", partitions=1)
    stage = StageSpec(name="fill", inputs=("in",), task_factory=FillTask,
                      stores=("data",))

    def open_task(node: str, snapshot_interval: int = 8) -> TaskInstance:
        return TaskInstance("bench", stage, 0, cluster, zk, clock,
                            disk.scope(node), "/state",
                            group="streams-bench", topic_partitions=1,
                            snapshot_interval_commits=snapshot_interval)

    task = open_task("n0", snapshot_interval=1)
    broker = cluster.broker_for("in", 0)
    batch = 1000
    for start in range(0, keys, batch):
        messages = [Message(encode_stream_message(
            f"key:{i:09d}", {"payload": i % 251}, 0.0))
            for i in range(start, min(start + batch, keys))]
        broker.produce("in", 0, MessageSet(messages))
        broker.log("in", 0).flush()
        task.poll()
        if start // batch % 8 == 7:
            task.commit()
    task.commit()   # final commit takes a snapshot barrier + compaction

    started = time.perf_counter()
    local = open_task("n0")          # same node: snapshot available
    with_snapshot_s = time.perf_counter() - started
    assert local.recovered_from_snapshot
    assert len(local.stores["data"]) == keys

    started = time.perf_counter()
    moved = open_task("n1")          # moved: compacted-changelog replay
    without_snapshot_s = time.perf_counter() - started
    assert not moved.recovered_from_snapshot
    assert len(moved.stores["data"]) == keys
    assert moved.replayed_mutations >= keys

    return {"state_keys": keys,
            "recovery_with_snapshot_ms": round(with_snapshot_s * 1e3, 2),
            "recovery_changelog_replay_ms":
                round(without_snapshot_s * 1e3, 2),
            "replayed_mutations": moved.replayed_mutations}


def test_stream_costs(benchmark):
    latency = [latency_run(cadence) for cadence in CADENCES_S]
    recovery = [recovery_run(keys) for keys in STATE_SIZES]

    benchmark(latency_run, CADENCES_S[1])

    summary = {
        "benchmark": "EXP-S1/S2 stream tier: latency and recovery",
        "end_to_end_latency": latency,
        "recovery_time": recovery,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    report(benchmark, "EXP-S1/S2 streams: e2e latency and recovery", {
        **{f"poll every {row['poll_cadence_s']}s":
           f"mean {row['mean_s']}s, max {row['max_s']}s (sim)"
           for row in latency},
        **{f"recovery at {row['state_keys']} keys":
           f"snapshot {row['recovery_with_snapshot_ms']}ms, "
           f"changelog replay {row['recovery_changelog_replay_ms']}ms"
           for row in recovery},
    }, paper_claim="§V: Kafka feeds online consumers that power "
                   "products like Who Viewed My Profile in real time; "
                   "state recovery here follows the Samza changelog "
                   "design the paper's stack evolved into")
