"""EXP-E1 (§IV.B): failover — drain the relay, take mastership, lose
nothing.

Shape targets: failover work scales with the slave's replication lag
(windows drained), every acknowledged commit survives, and the single-
master invariant holds throughout.
"""

import pytest

from benchmarks.conftest import report
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema
from repro.common.serialization import Field, RecordSchema

DB = DatabaseSchema(
    name="Profiles", num_partitions=8, replication_factor=2,
    tables=(EspressoTableSchema("Member", ("member",)),))
MEMBER = RecordSchema("Member", [Field("name", "string"),
                                 Field("rev", "long")])


def build_cluster():
    cluster = EspressoCluster(DB, num_nodes=3)
    cluster.post_document_schema("Member", MEMBER)
    cluster.start()
    return cluster


def test_failover_cost_vs_slave_lag(benchmark):
    results = {}

    def sweep():
        for lag_writes in (0, 50, 200):
            cluster = build_cluster()
            partition = DB.partition_for("member-0")
            master = cluster.master_node(partition)
            cluster.pump_replication()
            for rev in range(lag_writes):
                master.put_document("Member", ("member-0",),
                                    {"name": "m", "rev": rev})
            # slaves NOT pumped: they lag by lag_writes windows
            victim = master.instance_name
            cluster.crash_node(victim)
            before = sum(n.windows_applied for n in cluster.nodes.values())
            cluster.failover()
            after = sum(n.windows_applied for n in cluster.nodes.values())
            new_master = cluster.master_node(partition)
            survived = (lag_writes == 0
                        or new_master.get_document(
                            "Member", ("member-0",)).document["rev"]
                        == lag_writes - 1)
            results[lag_writes] = {"windows_drained": after - before,
                                   "no_commit_lost": survived}
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-E1 failover drain vs replication lag", {
        f"lag={lag} writes": (f"{r['windows_drained']} windows drained, "
                              f"no loss={r['no_commit_lost']}")
        for lag, r in results.items()
    }, "slave consumes all outstanding relay changes, then takes over; "
       "committed changes survive single-node failure")
    assert all(r["no_commit_lost"] for r in results.values())
    assert (results[200]["windows_drained"]
            > results[50]["windows_drained"]
            > results[0]["windows_drained"])


def test_single_master_through_failover_storm(benchmark):
    def storm():
        cluster = build_cluster()
        for i in range(60):
            node = cluster.node_for_resource(f"member-{i}")
            node.put_document("Member", (f"member-{i}",),
                              {"name": "x", "rev": 0})
        cluster.pump_replication()
        # crash and recover each node in turn
        for name in list(cluster.nodes):
            cluster.crash_node(name)
            cluster.failover()
            cluster.assert_single_master()
            cluster.recover_node(name)
            cluster.failover()
            cluster.assert_single_master()
            cluster.pump_replication()
        return cluster

    cluster = benchmark.pedantic(storm, rounds=1, iterations=1)
    masters = cluster.masters_by_partition()
    report(benchmark, "EXP-E1 rolling failure storm", {
        "partitions with a master at the end":
            sum(1 for m in masters.values() if m),
        "controller pipeline runs": cluster.controller.pipeline_runs,
        "transitions issued": len(cluster.controller.transitions_issued),
    }, "Helix reacts to failures while never co-hosting two masters")
    assert all(masters.values())
