"""EXP-G1 (§I.A): the social graph query load.

Paper: the social graph serves "low-latency social graph queries ...
processing hundreds of thousands of graph queries per second and acting
as one of the key determinants of performance and availability for the
site as a whole."  We measure single-thread query throughput for the
three example query classes the paper names, over a realistic
small-world member graph.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.socialgraph import PartitionedSocialGraph

MEMBERS = 20_000
AVG_DEGREE = 12


def build_graph(seed=1):
    """A Watts-Strogatz-flavoured small world: ring lattice + rewiring."""
    rng = random.Random(seed)
    graph = PartitionedSocialGraph(num_partitions=32)
    half = AVG_DEGREE // 2
    for member in range(MEMBERS):
        for k in range(1, half + 1):
            neighbor = (member + k) % MEMBERS
            if rng.random() < 0.1:  # rewire for short global paths
                neighbor = rng.randrange(MEMBERS)
                if neighbor == member:
                    continue
            graph.connect(member, neighbor)
    return graph


@pytest.fixture(scope="module")
def graph():
    return build_graph()


def test_connection_count_and_intersection_throughput(benchmark, graph):
    rng = random.Random(2)
    pairs = [(rng.randrange(MEMBERS), rng.randrange(MEMBERS))
             for _ in range(2000)]

    def queries():
        for a, b in pairs:
            graph.connection_count(a)
            graph.shared_connections(a, b)

    benchmark(queries)
    per_query_us = benchmark.stats["mean"] / (2 * len(pairs)) * 1e6
    report(benchmark, "EXP-G1 counting / intersecting connection lists", {
        "members": MEMBERS,
        "edges": graph.edge_count,
        "mean per query": f"{per_query_us:.2f} us",
        "queries/s (single thread)": f"{1e6 / per_query_us:,.0f}",
    }, "hundreds of thousands of graph queries per second (fleet-wide)")
    assert 1e6 / per_query_us > 50_000  # even one Python thread is fast


def test_distance_query_latency(benchmark, graph):
    rng = random.Random(3)
    pairs = [(rng.randrange(MEMBERS), rng.randrange(MEMBERS))
             for _ in range(200)]

    def distances():
        found = 0
        for a, b in pairs:
            if graph.distance(a, b, max_degrees=4) is not None:
                found += 1
        return found

    found = benchmark(distances)
    per_query_ms = benchmark.stats["mean"] / len(pairs) * 1e3
    report(benchmark, "EXP-G1 minimum-distance queries (<=4 degrees)", {
        "mean per query": f"{per_query_ms:.2f} ms",
        "pairs within 4 degrees": f"{found}/{len(pairs)}",
    }, "low-latency distance badges on every profile view")
    assert per_query_ms < 50


def test_bidirectional_beats_unidirectional(benchmark, graph):
    """The ablation behind the distance query: bidirectional BFS vs a
    plain single-source BFS."""
    import time
    from collections import deque
    rng = random.Random(4)
    pairs = [(rng.randrange(MEMBERS), rng.randrange(MEMBERS))
             for _ in range(30)]

    def unidirectional(a, b, max_degrees=4):
        seen = {a: 0}
        queue = deque([a])
        while queue:
            member = queue.popleft()
            if seen[member] >= max_degrees:
                continue
            for neighbor in graph.connections_of(member):
                if neighbor == b:
                    return seen[member] + 1
                if neighbor not in seen:
                    seen[neighbor] = seen[member] + 1
                    queue.append(neighbor)
        return None

    results = {}

    def compare():
        start = time.perf_counter()
        bi = [graph.distance(a, b, max_degrees=4) for a, b in pairs]
        bi_time = time.perf_counter() - start
        start = time.perf_counter()
        uni = [unidirectional(a, b) for a, b in pairs]
        uni_time = time.perf_counter() - start
        results.update(bi_time=bi_time, uni_time=uni_time,
                       agree=(bi == uni))
        return results

    benchmark.pedantic(compare, rounds=1, iterations=1)
    report(benchmark, "EXP-G1 ablation: bidirectional vs plain BFS", {
        "bidirectional": f"{results['bi_time'] * 1e3:.1f} ms / 30 queries",
        "unidirectional": f"{results['uni_time'] * 1e3:.1f} ms / 30 queries",
        "speedup": f"{results['uni_time'] / results['bi_time']:.1f}x",
        "answers agree": results["agree"],
    }, "design choice: the meet-in-the-middle search that makes "
       "distance queries cheap")
    assert results["agree"]
    assert results["bi_time"] < results["uni_time"]
