"""EXP-R2: crash-recovery cost across the durability machinery.

The PR 3 durability contract (DESIGN.md §9) trades a little write-path
latency (fsync before ack) for bounded restart cost.  This benchmark
measures the bounded part:

* **recovery time vs log size** — reopening a CRC-framed WAL replays
  every surviving frame; the sweep shows the scan is linear in the log,
  so operators can size checkpoint intervals from it;
* **bytes truncated** — how much of a torn, never-acked tail the Kafka
  partition-log recovery scan drops to restore frame alignment;
* **hints replayed** — how many parked hinted-handoff slops a Voldemort
  node recovers from its slop WAL after a kill/restart.

A JSON summary lands in ``benchmarks/out/BENCH_recovery.json`` so the
sweep is comparable across runs.
"""

import json
import pathlib
import time

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.common.wal import WriteAheadLog
from repro.kafka.log import PartitionLog
from repro.kafka.message import Message, MessageSet
from repro.simnet.disk import SimDisk
from repro.voldemort import (
    RoutedStore,
    StoreDefinition,
    Versioned,
    VoldemortCluster,
)

FRAME_COUNTS = (256, 1024, 4096)
FRAME_BYTES = 128
OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_recovery.json"


def recover_wal_once(frames: int) -> dict:
    """Build an fsynced WAL of ``frames`` records, crash, time reopen."""
    disk = SimDisk(clock=SimClock(), seed=frames)
    scope = disk.scope("node")
    wal = WriteAheadLog("sweep.wal", disk=scope)
    payload = b"x" * FRAME_BYTES
    for _ in range(frames):
        wal.append(payload)
    wal.fsync()
    size = wal.size_bytes
    disk.crash_node("node")

    started = time.perf_counter()
    reopened = WriteAheadLog("sweep.wal", disk=scope)
    elapsed = time.perf_counter() - started
    assert reopened.recovered_frames == frames
    return {"frames": frames, "log_bytes": size,
            "recovery_ms": elapsed * 1000}


def torn_tail_truncation() -> dict:
    """Kafka partition log with an unacked staged tail, torn mid-write."""
    disk = SimDisk(clock=SimClock(), seed=11)
    scope = disk.scope("broker-0")
    log = PartitionLog("events-0", flush_interval_messages=1, disk=scope)
    for i in range(64):
        log.append(MessageSet([Message(b"acked-%03d" % i)]))
    acked_watermark = log.high_watermark
    # stage bytes below the durability line, as a crashing producer would
    log.fsync_on_flush = False
    log.append(MessageSet([Message(b"never-acked-" + b"z" * 64)]))
    disk.arm_torn_write("broker-0")
    disk.crash_node("broker-0")

    recovered = PartitionLog("events-0", flush_interval_messages=1,
                             disk=scope)
    assert recovered.high_watermark == acked_watermark
    return {"bytes_truncated": recovered.torn_bytes_truncated,
            "acked_watermark": acked_watermark}


def hint_replay(hint_target: int = 20) -> dict:
    """Park hints for a dead replica, kill the holders, count survivors."""
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=7)
    cluster = VoldemortCluster(num_nodes=4, partitions_per_node=4,
                               clock=clock, disk=disk)
    cluster.define_store(StoreDefinition(
        "slops", replication_factor=3, required_reads=2, required_writes=2,
        engine_type="log-structured"))
    routed = RoutedStore(cluster, "slops")
    dead = 0
    cluster.network.failures.crash(cluster.node_name(dead))
    parked = 0
    i = 0
    while parked < hint_target:
        key = b"hinted-%04d" % i
        i += 1
        if dead not in routed.replica_nodes(key):
            continue
        routed.put(key, Versioned.initial(b"v", 0))
        parked += 1

    holders = [n for n, s in cluster.servers.items() if s.hints]
    replayed = 0
    for holder in holders:
        cluster.kill_node(holder)
        cluster.restart_node(holder)
        replayed += len(cluster.server_for(holder).hints)

    cluster.network.failures.recover(cluster.node_name(dead))
    delivered = sum(cluster.server_for(h).deliver_hints(dead)
                    for h in holders)
    return {"parked": parked, "replayed": replayed, "delivered": delivered}


def test_recovery_costs(benchmark):
    sweep = [recover_wal_once(frames) for frames in FRAME_COUNTS]
    torn = torn_tail_truncation()
    hints = hint_replay()

    # wall-clock cost of a full crash+reopen cycle at the largest size
    benchmark(recover_wal_once, FRAME_COUNTS[-1])

    summary = {
        "benchmark": "EXP-R2 crash-recovery sweep",
        "wal_recovery": [
            {"frames": row["frames"], "log_bytes": row["log_bytes"],
             "recovery_ms": round(row["recovery_ms"], 3)}
            for row in sweep
        ],
        "kafka_torn_tail": torn,
        "voldemort_hints": hints,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    report(benchmark, "EXP-R2 recovery time vs log size", {
        f"replay {row['frames']} frames ({row['log_bytes']} B)":
            f"{row['recovery_ms']:.2f} ms"
        for row in sweep
    } | {
        "torn tail truncated": f"{torn['bytes_truncated']} B",
        "hints replayed after restart":
            f"{hints['replayed']}/{hints['parked']} "
            f"(then {hints['delivered']} delivered)",
        "summary": str(OUT_PATH),
    }, "commit logs and slop stores make restarts cheap and lossless")

    # replay cost must grow with the log, and nothing acked may vanish
    assert sweep[-1]["recovery_ms"] >= sweep[0]["recovery_ms"] * 0.5
    assert torn["bytes_truncated"] > 0
    assert hints["replayed"] == hints["parked"]
    assert hints["delivered"] == hints["parked"]
