"""EXP-V5 (§II.B): repair-mechanism ablation under transient failures.

The paper's design assumes "frequent transient and short-term failures"
and counters them with hinted handoff (put-side) and read repair
(get-side).  We inject a transient-failure rate and compare write
availability and post-recovery replica completeness with the mechanisms
on and off.
"""

import pytest

from benchmarks.conftest import report
from repro.common.errors import (
    InsufficientOperationalNodesError,
    KeyNotFoundError,
)
from repro.simnet import SimNetwork, fixed_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster


def run_trial(enable_repair: bool, error_rate: float, writes: int = 300,
              seed: int = 7):
    network = SimNetwork(seed=seed, latency_model=fixed_latency(0.0005))
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4,
                               network=network, seed=seed)
    cluster.define_store(StoreDefinition(
        "s", replication_factor=3, required_reads=2, required_writes=2))
    from repro.voldemort import FailureDetector
    # a tolerant detector: transient blips should not bench a node
    detector = FailureDetector(cluster.clock, threshold=0.3,
                               minimum_samples=10, ping_interval=0.1)
    routed = RoutedStore(cluster, "s", failure_detector=detector,
                         enable_read_repair=enable_repair,
                         enable_hinted_handoff=enable_repair)
    network.failures.transient_error_rate = error_rate
    succeeded = 0
    for i in range(writes):
        try:
            routed.put(b"key-%d" % i, Versioned.initial(b"v" * 32, 0))
            succeeded += 1
        except InsufficientOperationalNodesError:
            pass
    network.failures.transient_error_rate = 0.0
    # drain every stored hint (recovery replay)
    for server in cluster.servers.values():
        for node_id in cluster.servers:
            server.deliver_hints(node_id)
    # read everything back through quorum reads (read repair active in
    # the repair arm); then count fully-replicated keys
    for i in range(writes):
        try:
            routed.get(b"key-%d" % i)
        except (KeyNotFoundError, InsufficientOperationalNodesError):
            pass
    fully_replicated = 0
    for i in range(writes):
        key = b"key-%d" % i
        holders = 0
        for node_id in routed.replica_nodes(key):
            try:
                cluster.server_for(node_id).engine("s").get(key)
                holders += 1
            except KeyNotFoundError:
                pass
        if holders == 3:
            fully_replicated += 1
    return succeeded / writes, fully_replicated / writes


def test_repair_mechanisms_ablation(benchmark):
    error_rate = 0.15
    results = {}

    def trial():
        results["with repair"] = run_trial(True, error_rate)
        results["without repair"] = run_trial(False, error_rate)
        return results

    benchmark.pedantic(trial, rounds=1, iterations=1)
    rows = {}
    for arm, (availability, replicated) in results.items():
        rows[arm] = (f"write availability {availability:.1%}, "
                     f"fully replicated after recovery {replicated:.1%}")
    report(benchmark, "EXP-V5 hinted handoff + read repair ablation", rows,
           "repair mechanisms reconcile inconsistent replicas after "
           "transient failures")
    assert results["with repair"][1] > results["without repair"][1]


def test_failure_detector_reduces_wasted_requests(benchmark):
    """§II.B: 'we can also prevent the client from doing excessive
    requests to a server that is currently overloaded.'"""
    def trial():
        network = SimNetwork(seed=9, latency_model=fixed_latency(0.0005))
        cluster = VoldemortCluster(num_nodes=4, partitions_per_node=4,
                                   network=network)
        cluster.define_store(StoreDefinition("s", 3, 1, 1))
        routed = RoutedStore(cluster, "s")
        routed.put(b"hot", Versioned.initial(b"v", 0))
        dead = routed.replica_nodes(b"hot")[0]
        network.failures.crash(cluster.node_name(dead))
        for _ in range(100):
            routed.get(b"hot")
        return (network.hops_failed,
                routed.detector.is_available(dead))

    failed_hops, still_available = benchmark.pedantic(trial, rounds=1,
                                                      iterations=1)
    report(benchmark, "EXP-V5 failure detector effect", {
        "failed hops over 100 reads": failed_hops,
        "dead node still routed to": still_available,
    }, "failure detector marks the node down; routing skips it")
    assert not still_available
    assert failed_hops < 100  # most reads never touched the dead node
