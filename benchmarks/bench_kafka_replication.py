"""EXP-K7 (§V.D future work, implemented): intra-cluster replication.

The paper names intra-cluster replication as its most important planned
feature.  We measure what the feature costs and buys: replication
overhead on the produce path, commit visibility lag, and zero-loss
failover from the in-sync replica set.
"""

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.kafka import KafkaCluster
from repro.kafka.message import Message, MessageSet, iter_messages
from repro.kafka.replication import ReplicatedTopic


def build(tmp_path, name, replication_factor):
    cluster = KafkaCluster(num_brokers=3,
                           data_root=str(tmp_path / name),
                           clock=SimClock(), partitions_per_topic=1)
    topic = ReplicatedTopic(cluster, name, partitions=1,
                            replication_factor=replication_factor)
    return cluster, topic


def test_replication_factor_cost(benchmark, tmp_path):
    import time
    results = {}
    payload = MessageSet([Message(b"x" * 200) for _ in range(20)])

    def sweep():
        for rf in (1, 2, 3):
            cluster, topic = build(tmp_path, f"rf{rf}", rf)
            start = time.perf_counter()
            for _ in range(100):
                topic.produce(0, payload)
                topic.poll_replication()
            elapsed = time.perf_counter() - start
            results[rf] = 100 * 20 / elapsed
            cluster.shutdown()
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-K7 produce+replicate throughput by RF", {
        f"RF={rf}": f"{rate:,.0f} msg/s" for rf, rate in results.items()
    }, "replication costs linear write amplification")
    assert results[1] > results[3]  # more copies, more work


def test_commit_lag_vs_replication_cadence(benchmark, tmp_path):
    cluster, topic = build(tmp_path, "lag", 3)
    state = topic.partitions[0]
    lags = []

    def run():
        for i in range(50):
            topic.produce(0, MessageSet([Message(b"m%d" % i)]))
            lags.append(state.leader_log_end - state.committed_offset)
            if i % 5 == 4:
                topic.poll_replication()
        topic.poll_replication()
        return lags

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, "EXP-K7 visibility lag between replication polls", {
        "max uncommitted bytes": max(lags),
        "committed == log end after final poll":
            state.committed_offset == state.leader_log_end,
    }, "consumers only see messages acknowledged by the full ISR")
    assert max(lags) > 0
    assert state.committed_offset == state.leader_log_end
    cluster.shutdown()


def test_failover_loses_nothing(benchmark, tmp_path):
    def run():
        cluster, topic = build(tmp_path, "failover", 3)
        sent = []
        for i in range(200):
            payload = b"msg-%04d" % i
            sent.append(payload)
            topic.produce(0, MessageSet([Message(payload)]))
            if i % 10 == 9:
                topic.poll_replication()
        topic.poll_replication()
        state = topic.partitions[0]
        cluster.brokers[state.leader_id].shutdown()
        topic.handle_failures()
        # read everything back from the new leader
        got = []
        offset = 0
        while True:
            data = topic.fetch(0, offset)
            if not data:
                break
            decoded = list(iter_messages(data, offset))
            got.extend(d.message.payload for d in decoded)
            offset = decoded[-1].next_offset
        cluster.shutdown()
        return sent, got

    sent, got = benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, "EXP-K7 leader failover", {
        "messages produced": len(sent),
        "readable after failover": len(got),
        "prefix intact": got == sent[:len(got)],
    }, "a committed message survives any single broker failure")
    assert got == sent  # everything was committed before the crash
