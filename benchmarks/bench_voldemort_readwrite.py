"""EXP-V1 (§II.C): the flagship read-write cluster.

Paper: "Our largest read-write cluster has about 60% reads and 40%
writes.  This cluster serves around 10K queries per second at peak with
average latency of 3 ms."

We measure (a) wall-clock throughput of the full routed path on this
substrate and (b) the *simulated* service latency distribution under a
datacenter-like lognormal hop model — the shape (a few ms average) is
the comparison target, not the absolute throughput of a Python
simulator.
"""

import pytest

from benchmarks.conftest import report
from repro.simnet import SimNetwork, lognormal_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
from repro.workloads import KeyValueWorkload, RequestMix


def build_cluster(seed=0):
    network = SimNetwork(seed=seed, latency_model=lognormal_latency(0.0009, 0.4))
    cluster = VoldemortCluster(num_nodes=6, partitions_per_node=8,
                               network=network, seed=seed)
    cluster.define_store(StoreDefinition(
        "flagship", replication_factor=3, required_reads=2, required_writes=2))
    return cluster


def run_mix(routed, workload, count):
    completed = 0
    for op in workload.operations(count):
        if op.kind == "get":
            try:
                routed.get(op.key)
            except KeyError:
                pass
            completed += 1
        else:
            frontier = []
            try:
                frontier, _ = routed.get(op.key)
            except KeyError:
                pass
            clock = frontier[0].clock if frontier else None
            versioned = (Versioned(op.value, clock.incremented(0))
                         if clock else Versioned.initial(op.value, 0))
            try:
                routed.put(op.key, versioned)
            except Exception:
                pass
            completed += 1
    return completed


def test_readwrite_60_40_mix(benchmark):
    cluster = build_cluster()
    routed = RoutedStore(cluster, "flagship")
    workload = KeyValueWorkload(num_keys=2000, mix=RequestMix(0.6),
                                value_bytes=1024, seed=1)
    for op in workload.preload(500):
        routed.put(op.key, Versioned.initial(op.value, 0))

    count = 400
    benchmark(run_mix, routed, workload, count)

    get_stats = routed.metrics.histogram("get").summary()
    put_stats = routed.metrics.histogram("put").summary()
    report(benchmark, "EXP-V1 read-write cluster, 60/40 mix", {
        "simulated get mean": f"{get_stats['mean'] * 1000:.2f} ms",
        "simulated get p99": f"{get_stats['p99'] * 1000:.2f} ms",
        "simulated put mean": f"{put_stats['mean'] * 1000:.2f} ms",
        "ops measured": int(get_stats["count"] + put_stats["count"]),
    }, "10K qps at peak, average latency 3 ms")
    # shape check: a quorum over ~1 ms hops lands in the low-millisecond
    # band the paper reports
    assert 0.5e-3 < get_stats["mean"] < 10e-3
    assert 0.5e-3 < put_stats["mean"] < 10e-3


def test_quorum_config_latency_tradeoff(benchmark):
    """Ablation: stricter quorums cost latency (R/W sweep)."""
    results = {}

    def sweep():
        for r, w in ((1, 1), (2, 2), (3, 3)):
            cluster = build_cluster(seed=r * 10 + w)
            cluster.define_store(StoreDefinition(
                f"s-{r}{w}", replication_factor=3,
                required_reads=r, required_writes=w))
            routed = RoutedStore(cluster, f"s-{r}{w}")
            for i in range(150):
                routed.put(b"key-%d" % i, Versioned.initial(b"v" * 64, 0))
            for i in range(150):
                routed.get(b"key-%d" % i)
            results[(r, w)] = routed.metrics.histogram("get").summary()["mean"]
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-V1 ablation: quorum size vs simulated latency", {
        f"R={r} W={w}": f"{mean * 1000:.2f} ms" for (r, w), mean in results.items()
    }, "implicit: larger quorums wait on more replicas")
    assert results[(1, 1)] <= results[(2, 2)] <= results[(3, 3)]
