"""EXP-M1: what a live migration costs while the site stays up.

The migration subsystem (DESIGN.md §11) moves a sqlstore table into
Espresso with no source lock, so its costs are paid in three places
this benchmark measures:

* **backfill throughput vs live-write interference** — each DBLog
  bracket discards snapshot rows superseded by writes that landed
  between its watermarks; the sweep shows how rows/s and the discard
  count move as in-bracket write pressure grows;
* **catch-up lag convergence** — after the snapshot, a burst of
  backlogged commits drains through bounded stream polls; the series
  shows lag falling linearly to zero (the SHADOW entry gate);
* **shadow-read overhead** — serving a read through the dual-write
  proxy's compare path (read both stores, diff the documents) vs the
  plain source path.

A JSON summary lands in ``benchmarks/out/BENCH_migration.json`` so the
sweep is comparable across runs.
"""

import json
import pathlib
import time

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.migration import MigrationPhase, MigrationSlo, MigrationStack
from repro.simnet.disk import SimDisk
from repro.sqlstore.binlog import ChangeKind
from repro.sqlstore.database import SqlDatabase
from repro.sqlstore.table import Column, TableSchema

ROWS = 480
CHUNK = 32
INTERFERENCE = (0, 2, 8)          # live writes landing inside each bracket
CATCHUP_BURSTS = (100, 400)       # backlogged commits to drain
POLL_BATCH = 64                   # events per catch-up poll
SHADOW_READS = 2_000
OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_migration.json"

SCHEMA = TableSchema(
    "profiles",
    (Column("member_id", int), Column("name", str), Column("score", int)),
    ("member_id",))

SLO = MigrationSlo(min_shadow_reads=1, shadow_duration=1.0,
                   ramp_step_duration=1.0)


def build_stack(seed: int, rows: int = ROWS):
    clock = SimClock()
    source = SqlDatabase("members", clock=clock)
    source.create_table(SCHEMA)
    for i in range(rows):
        source.autocommit("profiles", {"member_id": i, "name": f"m{i}",
                                       "score": i})
    stack = MigrationStack.build(source, SimDisk(seed=seed).scope("c"),
                                 clock, slo=SLO, chunk_size=CHUNK)
    return clock, source, stack


class InterferingSource:
    """Stands in for the source during the chunk loop: every chunk read
    happens with ``writes_per_chunk`` application commits racing it in
    the watermark window, exactly where they supersede snapshot rows."""

    def __init__(self, db: SqlDatabase, writes_per_chunk: int):
        self._db = db
        self._writes = writes_per_chunk

    def write_watermark(self, label: str) -> int:
        return self._db.write_watermark(label)

    def scan_chunk(self, table, after_key, limit):
        start = 0 if after_key is None else after_key[0] + 1
        for i in range(self._writes):
            key = (start + i) % ROWS
            self._db.autocommit(table, {"member_id": key, "name": "hot",
                                        "score": -1},
                                kind=ChangeKind.UPDATE)
        return self._db.scan_chunk(table, after_key, limit)


def backfill_run(writes_per_chunk: int) -> dict:
    clock, source, stack = build_stack(seed=writes_per_chunk + 1)
    backfill = stack.coordinator.backfill
    backfill.source = InterferingSource(source, writes_per_chunk)
    applied = discarded = 0
    started = time.perf_counter()
    while not backfill.complete:
        result = backfill.run_one_chunk()
        applied += result.rows_applied
        discarded += result.rows_discarded
        clock.advance(0.1)
    elapsed = time.perf_counter() - started
    assert applied + discarded >= ROWS
    assert len(stack.target.dump("profiles")) == ROWS
    return {"writes_per_chunk": writes_per_chunk,
            "chunks": backfill.chunks_run,
            "rows_applied": applied,
            "rows_discarded": discarded,
            "rows_per_s": round(ROWS / elapsed)}


def catchup_run(burst: int) -> dict:
    clock, source, stack = build_stack(seed=burst)
    while stack.coordinator.phase is MigrationPhase.BACKFILL:
        stack.coordinator.tick()
        clock.advance(0.1)
    for i in range(burst):
        source.autocommit("profiles",
                          {"member_id": i % ROWS, "name": "backlog",
                           "score": i}, kind=ChangeKind.UPDATE)
    stack.capture.poll()
    lag_series = [stack.coordinator.replication_lag]
    while stack.coordinator.replication_lag > 0:
        stack.client.poll(max_events=POLL_BATCH)
        lag_series.append(stack.coordinator.replication_lag)
    return {"burst": burst, "polls": len(lag_series) - 1,
            "lag_series": lag_series[:3] + ["..."] + lag_series[-2:]
            if len(lag_series) > 5 else lag_series}


def shadow_overhead() -> dict:
    clock, _, stack = build_stack(seed=99)
    while stack.coordinator.phase is not MigrationPhase.SHADOW:
        stack.coordinator.tick()
        clock.advance(0.1)

    def time_reads() -> float:
        started = time.perf_counter()
        for i in range(SHADOW_READS):
            stack.proxy.read("profiles", (i % ROWS,))
        return time.perf_counter() - started

    shadowed = time_reads()
    assert stack.proxy.shadow.total_mismatches == 0
    stack.proxy.dual_writes_enabled = False       # plain source path
    plain = time_reads()
    return {"reads": SHADOW_READS,
            "plain_us_per_read": round(plain / SHADOW_READS * 1e6, 1),
            "shadow_us_per_read": round(shadowed / SHADOW_READS * 1e6, 1),
            "overhead_x": round(shadowed / plain, 2)}


def test_migration_costs(benchmark):
    sweep = [backfill_run(w) for w in INTERFERENCE]
    catchup = [catchup_run(burst) for burst in CATCHUP_BURSTS]
    shadow = shadow_overhead()

    # wall-clock cost of one full clean backfill
    benchmark(backfill_run, 0)

    summary = {
        "benchmark": "EXP-M1 live migration costs",
        "backfill_interference": sweep,
        "catchup_convergence": catchup,
        "shadow_read_overhead": shadow,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    report(benchmark, "EXP-M1 backfill vs live-write interference", {
        **{f"{row['writes_per_chunk']} writes/bracket":
           f"{row['rows_per_s']} rows/s, {row['rows_discarded']} discarded"
           for row in sweep},
        **{f"catch-up burst {row['burst']}":
           f"{row['polls']} polls of {POLL_BATCH} to lag 0"
           for row in catchup},
        "shadow read overhead":
            f"{shadow['overhead_x']}x "
            f"({shadow['plain_us_per_read']} -> "
            f"{shadow['shadow_us_per_read']} us/read)",
    }, paper_claim="§IV: migrate core data from sqlstore to Espresso "
                   "with the site up (no source lock, verified cutover)")
