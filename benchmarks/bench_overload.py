"""EXP-O1/O2: overload robustness — metastable failure and hedged reads.

The serving-path systems in the paper live or die by how they behave
at the moment demand exceeds capacity.  Two experiments:

**EXP-O1 (metastable failure).**  An open-loop client drives a single
server (capacity 1000 ops/s) at 60% utilization, then spikes demand to
5× capacity for 15 simulated seconds.  The *unprotected* stack queues
without bound and retries every failure 4× in a tight loop — the
classic retry-amplification feedback.  Admitted-but-timed-out work
still occupies the server, so once the queue passes the client timeout
the server's capacity is spent entirely on requests nobody is waiting
for, and the collapse persists after the spike ends (goodput <30% of
capacity, indefinitely — a metastable failure).  The *protected* stack
bounds the server queue (fast rejection), runs token-bucket admission
at the client, and never retries a shed; it holds ≥70% of capacity
through the spike and returns to ≥95% of baseline goodput immediately
after, with no operator action.

**EXP-O2 (hedged reads).**  A Voldemort quorum read (R=1 of 3) with
one replica limping at 20× service time.  Unhedged, every read whose
preference list starts at the limping replica eats the full inflated
latency — it dominates p99.  With :class:`HedgedCall`, a backup read
fires at the tracked p99 delay and the fast replica's answer wins; the
read p99 drops ≥3×.

A JSON summary lands in ``benchmarks/out/BENCH_overload.json``.
"""

import json
import pathlib

from benchmarks.conftest import report
from repro.common.errors import NodeUnavailableError, ServerOverloadedError
from repro.common.overload import PRIORITY_LIVE, AdmissionController, HedgedCall
from repro.simnet import SimNetwork, fixed_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster

CAPACITY = 1000.0                  # server ops/s
SERVICE_TIME = 1.0 / CAPACITY
BASE_RATE = 600.0                  # 60% utilization
SPIKE_MULTIPLIER = 5               # 5x capacity-relative demand spike
SPIKE_RATE = SPIKE_MULTIPLIER * BASE_RATE
CLIENT_TIMEOUT = 0.05
PHASES = {"before": (0.0, 10.0), "during": (10.0, 25.0),
          "after": (25.0, 40.0)}
NAIVE_RETRIES = 4                  # the unprotected client's amplification
OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_overload.json"


def run_spike_scenario(protected: bool, seed: int = 11) -> dict:
    """One 40-simulated-second run; returns per-phase goodput stats."""
    network = SimNetwork(seed=seed, latency_model=fixed_latency(0.0002))
    clock = network.clock
    network.add_server_queue(
        "server", SERVICE_TIME,
        # bounded queue => worst queueing delay ~40ms < the 50ms client
        # timeout, so every admitted request is worth serving; the
        # unprotected bound is effectively infinite
        capacity=40 if protected else 10_000_000)
    admission = AdmissionController(clock, rate=0.95 * CAPACITY,
                                    burst=60) if protected else None
    stats = {name: {"issued": 0, "ok": 0, "shed": 0, "failed": 0}
             for name in PHASES}

    def handler():
        return "ok"

    def phase_of(now: float) -> str:
        for name, (start, end) in PHASES.items():
            if start <= now < end:
                return name
        return "after"

    def one_request() -> None:
        bucket = stats[phase_of(clock.now())]
        bucket["issued"] += 1
        if protected:
            if admission is not None and \
                    not admission.try_admit(PRIORITY_LIVE):
                bucket["shed"] += 1
                return
            try:
                network.invoke("client", "server", handler,
                               timeout=CLIENT_TIMEOUT)
                bucket["ok"] += 1
            except ServerOverloadedError:
                bucket["shed"] += 1      # fast rejection; never retried
            except NodeUnavailableError:
                bucket["failed"] += 1    # timed out; never retried
        else:
            # the unprotected client hammers: every failure is retried
            # immediately, so one slow request becomes NAIVE_RETRIES
            # requests' worth of booked server time
            for _ in range(NAIVE_RETRIES):
                try:
                    network.invoke("client", "server", handler,
                                   timeout=CLIENT_TIMEOUT)
                    bucket["ok"] += 1
                    return
                except (NodeUnavailableError, ServerOverloadedError):
                    continue
            bucket["failed"] += 1

    end_of_run = PHASES["after"][1]
    while clock.now() < end_of_run:
        rate = SPIKE_RATE if phase_of(clock.now()) == "during" else BASE_RATE
        clock.advance(1.0 / rate)
        one_request()

    out = {}
    for name, (start, end) in PHASES.items():
        window = end - start
        bucket = stats[name]
        out[name] = {
            **bucket,
            "goodput_ops": bucket["ok"] / window,
            "goodput_vs_capacity": round(bucket["ok"] / window / CAPACITY, 4),
            "goodput_vs_baseline": round(bucket["ok"] / window / BASE_RATE, 4),
        }
    return out


def run_hedged_read_experiment(hedged: bool, seed: int = 5,
                               reads: int = 1500) -> dict:
    """Voldemort R=1 reads with one replica limping at 20x."""
    network = SimNetwork(seed=seed, latency_model=fixed_latency(0.0008))
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4,
                               network=network, seed=seed)
    cluster.define_store(StoreDefinition(
        "hedge-bench", replication_factor=3, required_reads=1,
        required_writes=1))
    hedge = HedgedCall(min_delay=0.001, fallback_delay=0.01,
                       warmup=20) if hedged else None
    routed = RoutedStore(cluster, "hedge-bench", hedge=hedge)
    keys = [b"hedge-%04d" % i for i in range(120)]
    for key in keys:
        routed.put(key, Versioned.initial(b"seed", 0))
    network.failures.limp(cluster.node_name(0), 20.0)
    latencies = sorted(routed.get(keys[i % len(keys)])[1]
                       for i in range(reads))
    return {
        "p50_ms": round(latencies[len(latencies) // 2] * 1000, 3),
        "p99_ms": round(latencies[int(len(latencies) * 0.99)] * 1000, 3),
        "hedges_launched": hedge.launched if hedge else 0,
        "backup_wins": hedge.backup_wins if hedge else 0,
    }


def test_metastable_spike_and_hedged_reads(benchmark):
    unprotected = run_spike_scenario(protected=False)
    protected = run_spike_scenario(protected=True)

    unhedged = run_hedged_read_experiment(hedged=False)
    hedged = run_hedged_read_experiment(hedged=True)
    p99_cut = unhedged["p99_ms"] / hedged["p99_ms"]

    # wall-clock cost of the protected path (the one we'd run in prod)
    benchmark(run_spike_scenario, True)

    summary = {
        "benchmark": "EXP-O1/O2 overload robustness",
        "capacity_ops_per_s": CAPACITY,
        "spike": {
            "base_rate": BASE_RATE,
            "spike_rate": SPIKE_RATE,
            "client_timeout_s": CLIENT_TIMEOUT,
            "naive_retries": NAIVE_RETRIES,
            "unprotected": unprotected,
            "protected": protected,
        },
        "hedged_reads": {
            "unhedged": unhedged,
            "hedged": hedged,
            "p99_cut_factor": round(p99_cut, 2),
        },
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    report(benchmark, "EXP-O1/O2 overload robustness", {
        "unprotected goodput during spike":
            f"{unprotected['during']['goodput_vs_capacity']:.0%} of capacity",
        "unprotected goodput after spike":
            f"{unprotected['after']['goodput_vs_capacity']:.0%} of capacity "
            "(metastable: collapse outlives the spike)",
        "protected goodput during spike":
            f"{protected['during']['goodput_vs_capacity']:.0%} of capacity",
        "protected goodput after spike":
            f"{protected['after']['goodput_vs_baseline']:.0%} of baseline",
        "read p99 unhedged": f"{unhedged['p99_ms']} ms",
        "read p99 hedged": f"{hedged['p99_ms']} ms",
        "hedge p99 cut": f"{p99_cut:.1f}x",
        "summary": str(OUT_PATH),
    }, "live-site serving must degrade gracefully under spikes and "
       "gray failures, not collapse")

    # EXP-O1 acceptance: the protected stack rides out the spike and
    # recovers alone; the unprotected one retry-amplifies into a
    # persistent collapse
    assert protected["during"]["goodput_vs_capacity"] >= 0.70
    assert protected["after"]["goodput_vs_baseline"] >= 0.95
    assert unprotected["during"]["goodput_vs_capacity"] < 0.30
    assert unprotected["after"]["goodput_vs_capacity"] < 0.30
    # EXP-O2 acceptance: hedging cuts the slow-replica read tail >= 3x
    assert p99_cut >= 3.0
