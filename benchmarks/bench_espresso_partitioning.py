"""FIG-IV.2 / FIG-IV.3 (§IV.B): hash partitioning and the master/slave
partition layout.

Shape targets: resources spread evenly across partitions; every node
masters some partitions and slaves others; co-keyed tables co-locate.
"""

import pytest

from benchmarks.conftest import report
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema

DB = DatabaseSchema(
    name="Music", num_partitions=12, replication_factor=2,
    tables=(EspressoTableSchema("Artist", ("artist",)),
            EspressoTableSchema("Album", ("artist", "album"))))


def test_hash_partition_balance(benchmark):
    def distribute():
        counts = [0] * DB.num_partitions
        for i in range(12_000):
            counts[DB.partition_for(f"artist-{i}")] += 1
        return counts

    counts = benchmark(distribute)
    expected = 12_000 / DB.num_partitions
    worst = max(abs(c - expected) / expected for c in counts)
    report(benchmark, "FIG-IV.2 hash partition distribution", {
        "partitions": DB.num_partitions,
        "resources": 12_000,
        "min/max per partition": f"{min(counts)}/{max(counts)}",
        "worst deviation from uniform": f"{worst:.1%}",
    }, "different resource ids hash to different partitions, evenly")
    assert worst < 0.15


def test_master_slave_layout(benchmark):
    def build():
        cluster = EspressoCluster(DB, num_nodes=4)
        cluster.start()
        return cluster

    cluster = benchmark.pedantic(build, rounds=1, iterations=1)
    view = cluster.controller.external_view(DB.name)
    masters = {}
    slaves = {}
    for partition in range(DB.num_partitions):
        master = view.master_of(partition)
        masters[master] = masters.get(master, 0) + 1
        for slave in view.instances_in_state(partition, "SLAVE"):
            slaves[slave] = slaves.get(slave, 0) + 1
    report(benchmark, "FIG-IV.3 partition layout", {
        "masters per node": dict(sorted(masters.items())),
        "slaves per node": dict(sorted(slaves.items())),
    }, "each node is master for some partitions and slave for a "
       "disjoint set")
    assert max(masters.values()) - min(masters.values()) <= 1
    for node in cluster.nodes.values():
        mastered = set(node.mastered_partitions())
        slaved = set(node.slaved_partitions())
        assert not mastered & slaved  # disjoint, per the paper


def test_co_keyed_tables_partition_identically(benchmark):
    def check():
        mismatches = 0
        for i in range(5000):
            artist = f"artist-{i}"
            if DB.partition_for(artist) != DB.partition_for(artist):
                mismatches += 1
        return mismatches

    mismatches = benchmark(check)
    report(benchmark, "FIG-IV.2 transactional co-location", {
        "mismatches over 5000 resources": mismatches,
    }, "tables sharing a resource_id partition identically, enabling "
       "multi-table transactions")
    assert mismatches == 0
