"""EXP-K5 (§V.C): consumer-group rebalancing and over-partitioning.

Paper: "consuming processes only need coordination when the load has to
be rebalanced among them, an infrequent event", and "for better load
balancing, we require many more partitions in a topic than the
consumers in each group".
"""

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.kafka import KafkaCluster, Producer
from repro.kafka.consumer import ConsumerGroupMember


def build_cluster(tmp_path, partitions, skewed=False):
    cluster = KafkaCluster(num_brokers=2,
                           data_root=str(tmp_path / f"k{partitions}"),
                           clock=SimClock(), partitions_per_topic=partitions,
                           flush_interval_messages=100)
    cluster.create_topic("activity")
    producer = Producer(cluster, batch_size=50, seed=4)
    if skewed:
        # key-partitioned traffic with Zipfian member popularity makes
        # per-partition load uneven — the case over-partitioning fixes
        from repro.workloads import ZipfGenerator
        members = ZipfGenerator(500, theta=0.9, seed=4)
        for i in range(2000):
            producer.send("activity", b"m%05d" % i,
                          key=b"member:%d" % members.next())
    else:
        for i in range(2000):
            producer.send("activity", b"m%05d" % i)
    producer.flush()
    cluster.flush_all()
    return cluster


def settle(members, rounds=6):
    for _ in range(rounds):
        for member in members:
            member.poll(max_messages=0)


def test_rebalance_settling_cost(benchmark, tmp_path):
    cluster = build_cluster(tmp_path, partitions=12)
    results = {}

    def grow_group():
        members = []
        for i in range(4):
            members.append(ConsumerGroupMember(cluster, "g",
                                               f"c{i}", ["activity"]))
            settle(members)
        results["rebalances"] = [m.rebalances for m in members]
        results["assignment_sizes"] = sorted(
            len(m.stream.assignments) for m in members)
        for member in members:
            member.close()
        return results

    benchmark.pedantic(grow_group, rounds=1, iterations=1)
    report(benchmark, "EXP-K5 group growth 1->4 consumers", {
        "rebalances per member": results["rebalances"],
        "final assignment sizes": results["assignment_sizes"],
    }, "coordination happens only on membership change")
    assert results["assignment_sizes"] == [3, 3, 3, 3]
    cluster.shutdown()


def test_over_partitioning_balance(benchmark, tmp_path):
    results = {}

    def sweep():
        # the partition is the unit of parallelism (§V.C): with too few
        # partitions some consumers idle or shares are lumpy; with many
        # more partitions than consumers, shares even out
        for partitions in (2, 4, 24):
            cluster = build_cluster(tmp_path, partitions)
            members = [ConsumerGroupMember(cluster, "g", f"c{i}", ["activity"])
                       for i in range(3)]
            settle(members)
            consumed = []
            for member in members:
                total = 0
                while True:
                    batch = member.poll()
                    if not batch:
                        break
                    total += len(batch)
                consumed.append(total)
            mean = sum(consumed) / 3
            imbalance = (max(consumed) - min(consumed)) / mean
            results[partitions] = (sorted(consumed), imbalance)
            for member in members:
                member.close()
            cluster.shutdown()
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-K5 over-partitioning (3 consumers)", {
        f"{p} partitions": f"consumed {c} (spread {i:.1%})"
        for p, (c, i) in results.items()
    }, "many more partitions than consumers improves load balance")
    # every message consumed exactly once in all arms
    assert all(sum(c) == 2000 for c, _ in results.values())
    # 2 partitions: a consumer idles; 4: lumpy 2/1/1; 24: near-even
    assert results[2][0][0] == 0
    assert results[24][1] < results[4][1] < results[2][1]


def test_steady_state_needs_no_coordination(benchmark, tmp_path):
    cluster = build_cluster(tmp_path, partitions=8)
    members = [ConsumerGroupMember(cluster, "g", f"c{i}", ["activity"])
               for i in range(2)]
    settle(members)
    rebalances_before = [m.rebalances for m in members]

    def steady_consumption():
        producer = Producer(cluster, batch_size=50, seed=9)
        for i in range(500):
            producer.send("activity", b"x")
        producer.flush()
        for member in members:
            while member.poll():
                pass

    benchmark.pedantic(steady_consumption, rounds=3, iterations=1)
    rebalances_after = [m.rebalances for m in members]
    report(benchmark, "EXP-K5 steady state", {
        "rebalances during steady consumption":
            [a - b for a, b in zip(rebalances_after, rebalances_before)],
    }, "no locking or state-maintenance overhead between rebalances")
    assert rebalances_after == rebalances_before
    for member in members:
        member.close()
    cluster.shutdown()
