"""EXP-K1 (§V.D): producer throughput and the batching sweep.

Paper: "a peak rate of more than 50K messages per second produced" per
datacenter, enabled by batched publish requests.  Shape target: batch
size multiplies single-thread throughput; absolute numbers are Python-
substrate numbers, not LinkedIn's.
"""

import json

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.kafka import KafkaCluster, Producer
from repro.workloads import ActivityEventGenerator


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=3, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=6,
                         flush_interval_messages=500)
    built.create_topic("activity")
    yield built
    built.shutdown()


def make_payloads(count=2000):
    generator = ActivityEventGenerator(num_members=50_000, seed=1)
    return [json.dumps(e).encode() for e in generator.events(count)]


def test_produce_throughput_batched(benchmark, cluster):
    payloads = make_payloads()
    producer = Producer(cluster, batch_size=200)

    def produce():
        for payload in payloads:
            producer.send("activity", payload)
        producer.flush()

    benchmark(produce)
    per_message_us = benchmark.stats["mean"] / len(payloads) * 1e6
    report(benchmark, "EXP-K1 batched produce", {
        "messages": len(payloads),
        "cost per message": f"{per_message_us:.1f} us",
        "messages/s (single thread)": f"{1e6 / per_message_us:,.0f}",
    }, "peak >50K messages/s produced (datacenter-wide)")


def test_batch_size_sweep(benchmark, cluster):
    import time
    payloads = make_payloads(1500)
    results = {}

    def sweep():
        for batch_size in (1, 10, 100, 500):
            producer = Producer(cluster, batch_size=batch_size, seed=batch_size)
            start = time.perf_counter()
            for payload in payloads:
                producer.send("activity", payload)
            producer.flush()
            elapsed = time.perf_counter() - start
            results[batch_size] = (len(payloads) / elapsed,
                                   producer.publish_requests)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-K1 batch-size sweep", {
        f"batch={size}": f"{rate:,.0f} msg/s ({requests} publish requests)"
        for size, (rate, requests) in results.items()
    }, "batching amortizes per-request cost; larger batches, higher rate")
    assert results[100][0] > results[1][0]
    assert results[500][1] < results[1][1]


def test_append_is_constant_cost_as_log_grows(benchmark, cluster):
    """The log-structured design: appends never reindex old data."""
    import time
    producer = Producer(cluster, batch_size=100, seed=2)
    payload = b"x" * 200
    costs = []
    # isolate append CPU cost from fsync pacing: flushes cross the
    # 500-message threshold mid-sweep and real-disk fsync latency would
    # land in one phase (durability cost is measured in EXP-R2 instead)
    for broker in cluster.brokers.values():
        for topic, partition in broker.partitions():
            broker.log(topic, partition).fsync_on_flush = False

    def grow():
        for phase in range(3):
            start = time.perf_counter()
            for _ in range(1000):
                producer.send("activity", payload)
            producer.flush()
            costs.append(time.perf_counter() - start)
        return costs

    benchmark.pedantic(grow, rounds=1, iterations=1)
    report(benchmark, "EXP-K1 append cost vs log size", {
        f"phase {i} (log ~{(i + 1) * 1000} msgs)": f"{c * 1000:.1f} ms"
        for i, c in enumerate(costs)
    }, "append-only segments: cost independent of log size")
    assert max(costs) < min(costs) * 3  # flat within noise
