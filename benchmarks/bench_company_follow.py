"""EXP-V3 (§II.C): Company Follow — Zipfian value sizes, large values.

Paper: "Both the stores have a Zipfian distribution for their data
size, but still manage to retrieve large values with an average latency
of 4 ms."  Shape target: latency grows sub-linearly across size
deciles; the mean stays in single-digit simulated milliseconds.
"""

import pytest

from benchmarks.conftest import report
from repro.simnet import SimNetwork, lognormal_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster
from repro.workloads import zipf_sizes


def test_zipfian_value_retrieval(benchmark):
    network = SimNetwork(seed=3, latency_model=lognormal_latency(0.0012, 0.4))
    cluster = VoldemortCluster(num_nodes=4, partitions_per_node=6,
                               network=network)
    cluster.define_store(StoreDefinition(
        "member-follows", replication_factor=3, required_reads=2,
        required_writes=2))
    routed = RoutedStore(cluster, "member-follows")

    sizes = zipf_sizes(800, min_bytes=64, max_bytes=262_144, theta=1.0, seed=4)
    payload = bytes(256) * 1024
    for i, size in enumerate(sizes):
        routed.put(b"member:%d" % i, Versioned.initial(payload[:size], 0))

    by_bucket: dict[str, list[float]] = {"small(<1K)": [], "mid(1-64K)": [],
                                         "large(>64K)": []}

    def read_all():
        for i, size in enumerate(sizes):
            _, latency = routed.get(b"member:%d" % i)
            if size < 1024:
                by_bucket["small(<1K)"].append(latency)
            elif size < 65536:
                by_bucket["mid(1-64K)"].append(latency)
            else:
                by_bucket["large(>64K)"].append(latency)

    benchmark.pedantic(read_all, rounds=1, iterations=1)
    stats = routed.metrics.histogram("get").summary()
    rows = {"overall mean": f"{stats['mean'] * 1000:.2f} ms"}
    for bucket, samples in by_bucket.items():
        if samples:
            rows[bucket] = (f"{sum(samples) / len(samples) * 1000:.2f} ms "
                            f"({len(samples)} keys)")
    report(benchmark, "EXP-V3 Company Follow Zipfian values", rows,
           "large values retrieved at ~4 ms average")
    assert stats["mean"] < 0.015  # single-digit simulated ms
    small = sum(by_bucket["small(<1K)"]) / len(by_bucket["small(<1K)"])
    assert small < 0.010
