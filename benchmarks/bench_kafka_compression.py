"""EXP-K2 (§V.B): compression bandwidth saving.

Paper: "In practice, we save about 2/3 of the network bandwidth with
compression enabled."  Activity-event JSON is highly redundant, so the
shape reproduces directly; we also show the CPU cost side of the trade.
"""

import json

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.kafka import KafkaCluster, Producer
from repro.kafka.consumer import SimpleConsumer
from repro.workloads import ActivityEventGenerator


@pytest.fixture
def cluster(tmp_path):
    built = KafkaCluster(num_brokers=2, data_root=str(tmp_path),
                         clock=SimClock(), partitions_per_topic=4,
                         flush_interval_messages=500)
    built.create_topic("plain")
    built.create_topic("gzip")
    yield built
    built.shutdown()


def payloads(count=2000):
    generator = ActivityEventGenerator(num_members=20_000, seed=5)
    return [json.dumps(e).encode() for e in generator.events(count)]


def test_bandwidth_saving(benchmark, cluster):
    events = payloads()

    def run_both():
        plain = Producer(cluster, batch_size=200, compress=False, seed=1)
        gzip = Producer(cluster, batch_size=200, compress=True, seed=1)
        for payload in events:
            plain.send("plain", payload)
            gzip.send("gzip", payload)
        plain.flush()
        gzip.flush()
        return plain.bytes_on_wire, gzip.bytes_on_wire

    plain_bytes, gzip_bytes = benchmark.pedantic(run_both, rounds=1,
                                                 iterations=1)
    saving = 1 - gzip_bytes / plain_bytes
    report(benchmark, "EXP-K2 compression bandwidth saving", {
        "plain bytes": f"{plain_bytes:,}",
        "compressed bytes": f"{gzip_bytes:,}",
        "bandwidth saved": f"{saving:.1%}",
    }, "about 2/3 of network bandwidth saved")
    assert saving > 0.5  # the paper's ~2/3, with slack for payload mix


def test_end_to_end_compressed_consumption(benchmark, cluster):
    events = payloads(1000)
    producer = Producer(cluster, batch_size=200, compress=True, seed=2)
    for payload in events:
        producer.send("gzip", payload)
    producer.flush()
    cluster.flush_all()
    consumer = SimpleConsumer(cluster)

    def consume_all():
        got = 0
        for tp in cluster.topic_layout("gzip"):
            offset = 0
            while True:
                batch = consumer.fetch("gzip", tp.partition, offset)
                if not batch:
                    break
                got += len(batch)
                offset = batch[-1].next_offset
        return got

    got = benchmark(consume_all)
    report(benchmark, "EXP-K2 decompress-on-consume", {
        "messages consumed": got,
        "wire bytes fetched": consumer.bytes_fetched,
    }, "compressed data is stored compressed and inflated at the consumer")
    assert got >= len(events)


def test_compression_level_tradeoff(benchmark, cluster):
    import time
    import zlib
    from repro.kafka.message import Message, MessageSet
    events = [Message(p) for p in payloads(800)]
    results = {}

    def sweep():
        plain_size = MessageSet(events).wire_size
        for level in (1, 6, 9):
            start = time.perf_counter()
            compressed = MessageSet.compressed(events, level=level)
            elapsed = time.perf_counter() - start
            results[level] = (1 - compressed.wire_size / plain_size, elapsed)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-K2 gzip level trade-off", {
        f"level {level}": f"saved {saved:.1%} in {sec * 1000:.1f} ms"
        for level, (saved, sec) in results.items()
    }, "(ablation) higher levels buy little extra saving at more CPU")
    assert results[9][0] >= results[1][0]
