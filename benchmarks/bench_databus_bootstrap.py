"""EXP-D2 / FIG-III.3 (§III.C): consolidated delta vs full replay.

Paper: "Instead of replaying all changes since T, the bootstrap server
will return ... only the last of multiple updates to the same row/key.
This has the effect of 'fast playback' of time."  The win grows with
update skew — the sweep below shows the crossover shape.
"""

import pytest

from benchmarks.conftest import report
from repro.databus import BootstrapServer
from repro.databus.events import DatabusEvent
from repro.sqlstore.binlog import ChangeKind
from repro.workloads import ZipfGenerator


def feed_bootstrap(updates: int, distinct_rows: int, skew: float,
                   seed: int = 1) -> BootstrapServer:
    bootstrap = BootstrapServer()
    keygen = ZipfGenerator(distinct_rows, theta=skew, seed=seed)
    for scn in range(1, updates + 1):
        key = (keygen.next(),)
        bootstrap.on_events([DatabusEvent(scn, "member", ChangeKind.UPDATE,
                                          key, b"p" * 64,
                                          end_of_window=True)])
    return bootstrap


def test_fast_playback_factor_vs_skew(benchmark):
    updates = 4000
    results = {}

    def sweep():
        for skew in (0.0, 0.8, 1.2):
            bootstrap = feed_bootstrap(updates, distinct_rows=500, skew=skew)
            delta, _ = bootstrap.consolidated_delta(0)
            replay, _ = bootstrap.full_replay(0)
            results[skew] = len(replay) / len(delta)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-D2 fast-playback factor by update skew", {
        f"zipf theta={skew}": f"{factor:.1f}x fewer events"
        for skew, factor in results.items()
    }, "consolidated delta returns only the last update per row")
    # every arm consolidates; more skew (hotter rows) consolidates more
    assert all(factor >= updates / 500 * 0.9 for factor in results.values())
    assert results[1.2] > results[0.0]


def test_consolidated_delta_query_cost(benchmark):
    bootstrap = feed_bootstrap(5000, distinct_rows=1000, skew=1.0)

    def query():
        return bootstrap.consolidated_delta(0)

    delta, watermark = benchmark(query)
    report(benchmark, "EXP-D2 delta query cost", {
        "rows returned": len(delta),
        "log rows folded": bootstrap.log_length,
        "high watermark": watermark,
    }, "bootstrap isolates the source DB from long look-back queries")


def test_snapshot_vs_delta_for_new_vs_lagging_clients(benchmark):
    """FIG-III.3: new clients snapshot; lagging clients take the delta."""
    bootstrap = feed_bootstrap(3000, distinct_rows=400, skew=0.9)
    results = {}

    def run():
        rows = sum(1 for kind, _ in bootstrap.consistent_snapshot()
                   if kind == "row")
        delta_recent, _ = bootstrap.consolidated_delta(2900)
        delta_old, _ = bootstrap.consolidated_delta(0)
        results.update(snapshot_rows=rows,
                       delta_from_recent=len(delta_recent),
                       delta_from_zero=len(delta_old))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(benchmark, "EXP-D2 bootstrap path sizes", {
        "consistent snapshot rows (new client)": results["snapshot_rows"],
        "delta from SCN 2900 (slightly behind)": results["delta_from_recent"],
        "delta from SCN 0 (very behind)": results["delta_from_zero"],
    }, "snapshot for stateless clients; delta sized by how far behind")
    assert results["delta_from_recent"] < results["delta_from_zero"]
    assert results["delta_from_zero"] <= results["snapshot_rows"]
