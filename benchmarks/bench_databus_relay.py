"""EXP-D1 (§III.C): relay buffering and SCN-indexed serving.

Paper claims for the relay: "default serving path with very low latency
(<1 ms)", "efficient buffering ... with hundreds of millions of Databus
events" (scaled down here), and "index structures to efficiently serve
... events from a given sequence number S".
"""

import pytest

from benchmarks.conftest import report
from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.sqlstore import Column, SqlDatabase, TableSchema

SCHEMA = TableSchema(
    "member", (Column("member_id", int), Column("headline", str)),
    primary_key=("member_id",))


def loaded_relay(transactions=3000):
    db = SqlDatabase("src", clock=SimClock())
    db.create_table(SCHEMA)
    relay = Relay(max_events_per_buffer=transactions * 2)
    capture = capture_from_binlog(db, relay)
    for i in range(transactions):
        txn = db.begin()
        txn.upsert("member", {"member_id": i % 500,
                              "headline": f"headline {i}"})
        txn.commit()
    capture.poll(max_transactions=transactions)
    return db, relay


def test_capture_throughput(benchmark):
    db = SqlDatabase("src", clock=SimClock())
    db.create_table(SCHEMA)
    for i in range(2000):
        txn = db.begin()
        txn.upsert("member", {"member_id": i, "headline": "h" * 40})
        txn.commit()

    def capture_all():
        relay = Relay(max_events_per_buffer=10_000)
        capture = capture_from_binlog(db, relay)
        return capture.poll(max_transactions=5000)

    captured = benchmark(capture_all)
    per_event_us = benchmark.stats["mean"] / captured * 1e6
    report(benchmark, "EXP-D1 relay capture + Avro serialization", {
        "transactions captured": captured,
        "cost per event": f"{per_event_us:.1f} us",
        "events/s (single thread)": f"{1e6 / per_event_us:,.0f}",
    }, "relay serializes changes to a source-independent binary format")


def test_serve_from_scn_tail_latency(benchmark):
    _, relay = loaded_relay(3000)
    head = relay.newest_scn()

    def tail_reads():
        # a caught-up consumer polling near the head: the <1 ms path
        for delta in range(1, 101):
            relay.stream_from(head - delta)

    benchmark(tail_reads)
    per_read_us = benchmark.stats["mean"] / 100 * 1e6
    report(benchmark, "EXP-D1 tail serve (caught-up consumer)", {
        "mean per request": f"{per_read_us:.1f} us",
        "buffer events": len(relay.buffer()),
        "buffer bytes": relay.buffer().size_bytes,
    }, "default serving path with very low latency (<1 ms)")
    assert per_read_us < 1000 * 100  # well under 1 ms per request


def test_eviction_keeps_memory_bounded(benchmark):
    def run():
        db = SqlDatabase("src", clock=SimClock())
        db.create_table(SCHEMA)
        relay = Relay(max_events_per_buffer=500)
        capture = capture_from_binlog(db, relay)
        for i in range(5000):
            txn = db.begin()
            txn.upsert("member", {"member_id": i % 100, "headline": "x" * 64})
            txn.commit()
        capture.poll(max_transactions=5000)
        return relay

    relay = benchmark.pedantic(run, rounds=1, iterations=1)
    buffer = relay.buffer()
    report(benchmark, "EXP-D1 circular buffer eviction", {
        "events appended": buffer.events_appended,
        "events retained": len(buffer),
        "oldest retained SCN": buffer.oldest_scn,
    }, "circular in-memory buffer: bounded despite unbounded stream")
    assert len(buffer) <= 500
    assert buffer.events_appended == 5000
