"""EXP-E4 (§IV.B): elastic expansion.

Paper: "When adding new nodes to an existing Espresso cluster, certain
master and slave partitions are selected to migrate to a new node.  For
each migrated partition, we first bootstrap the new partition from a
snapshot taken from the original master partition, and then apply any
changes since the snapshot from the Databus Relay.  Once caught up, the
new partition is a slave.  We then hand off mastership."
"""

import pytest

from benchmarks.conftest import report
from repro.common.serialization import Field, RecordSchema
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema

DB = DatabaseSchema(
    name="Profiles", num_partitions=12, replication_factor=2,
    tables=(EspressoTableSchema("Member", ("member",)),))
MEMBER = RecordSchema("Member", [Field("name", "string")])


def build_loaded_cluster(members=120):
    cluster = EspressoCluster(DB, num_nodes=3)
    cluster.post_document_schema("Member", MEMBER)
    cluster.start()
    for i in range(members):
        node = cluster.node_for_resource(f"member-{i}")
        node.put_document("Member", (f"member-{i}",), {"name": f"m{i}"})
    cluster.pump_replication()
    return cluster


def test_expansion_rebalances_and_preserves_data(benchmark):
    def expand():
        cluster = build_loaded_cluster()
        before_masters = cluster.masters_by_partition()
        newcomer = cluster.add_node("storage-3")
        return cluster, newcomer, before_masters

    cluster, newcomer, before_masters = benchmark.pedantic(
        expand, rounds=1, iterations=1)
    after_masters = cluster.masters_by_partition()
    moved = sum(1 for p in after_masters
                if after_masters[p] != before_masters[p])
    counts = {}
    for master in after_masters.values():
        counts[master] = counts.get(master, 0) + 1
    served = 0
    for i in range(120):
        node = cluster.node_for_resource(f"member-{i}")
        record = node.get_document("Member", (f"member-{i}",))
        if record.document["name"] == f"m{i}":
            served += 1
    report(benchmark, "EXP-E4 add a node to a loaded cluster", {
        "masterships moved": moved,
        "masters per node after": dict(sorted(counts.items())),
        "documents still served": f"{served}/120",
        "newcomer masters": len(newcomer.mastered_partitions()),
        "newcomer slaves": len(newcomer.slaved_partitions()),
    }, "partitions migrate via snapshot + relay catch-up; no downtime, "
       "no data loss")
    assert served == 120
    assert max(counts.values()) - min(counts.values()) <= 1
    cluster.assert_single_master()


def test_writes_continue_during_expansion(benchmark):
    def expand_with_writes():
        cluster = build_loaded_cluster(60)
        cluster.add_node("storage-3")
        failures = 0
        for i in range(60, 120):
            try:
                node = cluster.node_for_resource(f"member-{i}")
                node.put_document("Member", (f"member-{i}",),
                                  {"name": f"m{i}"})
            except Exception:
                failures += 1
        cluster.pump_replication()
        return cluster, failures

    cluster, failures = benchmark.pedantic(expand_with_writes, rounds=1,
                                           iterations=1)
    report(benchmark, "EXP-E4 availability during expansion", {
        "post-expansion write failures": failures,
    }, "server lifecycle management 'without downtime'")
    assert failures == 0
