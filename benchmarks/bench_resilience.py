"""EXP-R1: goodput and recovery time under the unified resilience layer.

The paper's systems are built for "frequent transient and short-term
failures" (Voldemort §II.A): the claim worth measuring is not peak
throughput on a healthy cluster but how much of it survives a lossy
network.  We sweep injected transient-error rates {0%, 1%, 5%} over the
quorum read/write path, with and without the shared
:class:`RetryPolicy`, and measure

* **goodput** — the fraction of issued operations that complete; with
  retries enabled a transient hop failure costs a backoff, not a failed
  request, so goodput should stay near 1.0 at every swept rate;
* **recovery time** — the simulated seconds between a crashed replica
  healing and its circuit breaker closing again (the window during
  which the resilience layer routes around a node that is already
  back).

A JSON summary lands in ``benchmarks/out/BENCH_resilience.json`` so the
sweep is comparable across runs.
"""

import json
import pathlib

from benchmarks.conftest import report
from repro.common.resilience import RetryPolicy
from repro.simnet import SimNetwork, fixed_latency
from repro.voldemort import RoutedStore, StoreDefinition, Versioned, VoldemortCluster

ERROR_RATES = (0.0, 0.01, 0.05)
POLICY = RetryPolicy(max_attempts=4, base_delay=0.005, jitter=0.5)
OUT_PATH = pathlib.Path(__file__).parent / "out" / "BENCH_resilience.json"


def build_store(retry: bool, seed: int = 0,
                breaker_config: dict | None = None) -> RoutedStore:
    network = SimNetwork(seed=seed, latency_model=fixed_latency(0.0008))
    cluster = VoldemortCluster(num_nodes=5, partitions_per_node=4,
                               network=network, seed=seed)
    cluster.define_store(StoreDefinition(
        "resilience", replication_factor=3, required_reads=2,
        required_writes=2))
    return RoutedStore(cluster, "resilience",
                       retry_policy=POLICY if retry else None,
                       breaker_config=breaker_config)


def run_mix(routed: RoutedStore, error_rate: float, ops: int = 300) -> dict:
    """60/40 get/put mix under an injected transient-error rate."""
    keys = [b"key-%03d" % i for i in range(50)]
    for key in keys:
        try:
            routed.put(key, Versioned.initial(b"seed", 0))
        except Exception:
            pass  # already seeded (benchmark rounds reuse the store)
    routed.cluster.network.failures.transient_error_rate = error_rate
    succeeded = 0
    for i in range(ops):
        key = keys[i % len(keys)]
        try:
            if i % 5 < 3:
                routed.get(key)
            else:
                current = routed.get(key)[0][0]
                routed.put(key, Versioned(b"v-%d" % i,
                                          current.clock.incremented(0)))
            succeeded += 1
        except Exception:
            pass
    routed.cluster.network.failures.transient_error_rate = 0.0
    return {
        "goodput": succeeded / ops,
        "retries": routed.metrics.counter("get.retries").value
        + routed.metrics.counter("put.retries").value,
    }


def measure_recovery_time(seed: int = 3) -> float:
    """Simulated seconds from a replica healing to its breaker closing."""
    # a small-sample breaker so it trips before the failure detector
    # takes the crashed node out of rotation entirely
    routed = build_store(retry=True, seed=seed,
                         breaker_config={"minimum_samples": 2})
    cluster = routed.cluster
    key = b"recovery-key"
    routed.put(key, Versioned.initial(b"v0", 0))
    victim = routed.replica_nodes(key)[-1]
    cluster.network.failures.crash(cluster.node_name(victim))
    # trip the victim's breaker with writes that keep failing on it
    for i in range(12):
        current = routed.get(key)[0][0]
        routed.put(key, Versioned(b"w-%d" % i, current.clock.incremented(0)))
        if routed.breaker_for(victim).state == "open":
            break
    cluster.network.failures.recover(cluster.node_name(victim))
    healed_at = cluster.clock.now()
    i = 0
    while routed.breaker_for(victim).state != "closed":
        cluster.clock.advance(0.05)
        current = routed.get(key)[0][0]
        routed.put(key, Versioned(b"r-%d" % i, current.clock.incremented(0)))
        i += 1
        assert i < 200, "breaker never closed after heal"
    return cluster.clock.now() - healed_at


def test_goodput_under_transient_errors(benchmark):
    sweep: dict[str, dict] = {}
    for rate in ERROR_RATES:
        with_retry = run_mix(build_store(retry=True, seed=1), rate)
        without = run_mix(build_store(retry=False, seed=1), rate)
        sweep[f"{rate:.0%}"] = {
            "goodput_with_retry": round(with_retry["goodput"], 4),
            "goodput_without_retry": round(without["goodput"], 4),
            "retries": with_retry["retries"],
        }

    # wall-clock cost of the retry-enabled path at the worst swept rate
    benchmark(run_mix, build_store(retry=True, seed=2), ERROR_RATES[-1])

    recovery_time = measure_recovery_time()
    summary = {
        "benchmark": "EXP-R1 resilience sweep",
        "error_rates": sweep,
        "recovery_time_s": round(recovery_time, 4),
        "policy": {
            "max_attempts": POLICY.max_attempts,
            "base_delay": POLICY.base_delay,
            "jitter": POLICY.jitter,
        },
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(summary, indent=2) + "\n")

    report(benchmark, "EXP-R1 goodput under transient errors", {
        f"goodput @ {rate} ({label})": sweep[rate][f"goodput_{label}"]
        for rate in sweep
        for label in ("with_retry", "without_retry")
    } | {
        "breaker recovery time": f"{recovery_time * 1000:.0f} ms (simulated)",
        "summary": str(OUT_PATH),
    }, "systems designed around frequent transient and short-term failures")

    # retries must not lose goodput anywhere, and must win where it counts
    for rate in sweep:
        assert sweep[rate]["goodput_with_retry"] >= \
            sweep[rate]["goodput_without_retry"]
    assert sweep["5%"]["goodput_with_retry"] >= 0.95
    assert sweep["5%"]["goodput_without_retry"] < \
        sweep["5%"]["goodput_with_retry"]
    assert recovery_time < 5.0
