"""EXP-V2 + FIG-II.3 (§II.C): the read-only cluster and its data cycle.

Paper: "the read-only cluster serves about 9K reads per second with an
average latency of less than 1 ms" — i.e. the read-only engine is
*faster* than the read-write path.  Shape targets: RO get beats the
BDB-style engine get, and the build/pull/swap cycle scales linearly in
data volume with a near-instant swap.
"""

import json

import pytest

from benchmarks.conftest import report
from repro.hadoop import MiniHDFS
from repro.voldemort import StoreDefinition, Versioned, VoldemortCluster
from repro.voldemort.engines import ReadOnlyStorageEngine, build_store_files
from repro.voldemort.engines.readonly import write_version_dir
from repro.voldemort.readonly_pipeline import ReadOnlyPipelineController

NUM_KEYS = 5000


@pytest.fixture
def readonly_engine(tmp_path):
    pairs = [(b"member-%06d" % i, json.dumps([[i + 1, 0.9]]).encode())
             for i in range(NUM_KEYS)]
    index, data = build_store_files(pairs)
    store_dir = str(tmp_path / "ro")
    write_version_dir(store_dir, 1, index, data)
    engine = ReadOnlyStorageEngine(store_dir)
    yield engine
    engine.close()


def test_readonly_get_throughput(benchmark, readonly_engine):
    keys = [b"member-%06d" % (i * 37 % NUM_KEYS) for i in range(1000)]

    def reads():
        for key in keys:
            readonly_engine.get(key)

    result = benchmark(reads)
    mean_us = benchmark.stats["mean"] / len(keys) * 1e6
    report(benchmark, "EXP-V2 read-only engine point reads", {
        "mean per get": f"{mean_us:.1f} us",
        "reads/s (single thread)": f"{1e6 / mean_us:,.0f}",
        "index entries": readonly_engine.entry_count,
    }, "9K reads/s, <1 ms average latency")


def test_readonly_path_beats_readwrite_path(benchmark, tmp_path):
    """The production comparison is between *serving paths*: the RO
    store reads one replica with no version reconciliation (R=1), while
    the RW store waits on a read quorum (R=2 of N=3) — that quorum is
    where the paper's <1 ms vs 3 ms gap comes from."""
    from repro.hadoop import MiniHDFS
    from repro.simnet import SimNetwork, lognormal_latency
    from repro.voldemort import RoutedStore

    network = SimNetwork(seed=2, latency_model=lognormal_latency(0.0009, 0.4))
    cluster = VoldemortCluster(num_nodes=4, partitions_per_node=4,
                               network=network,
                               data_root=str(tmp_path / "cmp"))
    cluster.define_store(StoreDefinition(
        "ro", replication_factor=2, required_reads=1, required_writes=1,
        engine_type="read-only"))
    cluster.define_store(StoreDefinition(
        "rw", replication_factor=3, required_reads=2, required_writes=2))
    pairs = [(b"k-%05d" % i, b"v" * 100) for i in range(500)]
    ReadOnlyPipelineController(cluster, MiniHDFS(), "ro").run_cycle(pairs)
    rw_routed = RoutedStore(cluster, "rw")
    for key, value in pairs:
        rw_routed.put(key, Versioned.initial(value, 0))
    ro_routed = RoutedStore(cluster, "ro")

    def read_both():
        for key, _ in pairs:
            ro_routed.get(key)
            rw_routed.get(key)

    benchmark.pedantic(read_both, rounds=1, iterations=1)
    ro_mean = ro_routed.metrics.histogram("get").summary()["mean"]
    rw_mean = rw_routed.metrics.histogram("get").summary()["mean"]
    report(benchmark, "EXP-V2 serving-path comparison (simulated)", {
        "read-only path (R=1)": f"{ro_mean * 1000:.2f} ms",
        "read-write path (R=2/N=3)": f"{rw_mean * 1000:.2f} ms",
        "read-only speedup": f"{rw_mean / ro_mean:.2f}x",
    }, "RO cluster <1 ms avg vs RW cluster 3 ms avg (~3x)")
    assert ro_mean < rw_mean  # the paper's ordering
    cluster.close()


def test_build_pull_swap_cycle(benchmark, tmp_path):
    cluster = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                               data_root=str(tmp_path / "cluster"))
    cluster.define_store(StoreDefinition(
        "pymk", replication_factor=2, required_reads=1, required_writes=1,
        engine_type="read-only"))
    hdfs = MiniHDFS()
    controller = ReadOnlyPipelineController(cluster, hdfs, "pymk")
    pairs = [(b"m-%06d" % i, b"x" * 200) for i in range(2000)]

    import time
    phases = {}

    def cycle():
        start = time.perf_counter()
        build = controller.build(pairs)
        phases["build"] = time.perf_counter() - start
        start = time.perf_counter()
        controller.pull(build)
        phases["pull"] = time.perf_counter() - start
        start = time.perf_counter()
        controller.swap(build)
        phases["swap"] = time.perf_counter() - start

    benchmark.pedantic(cycle, rounds=1, iterations=1)
    report(benchmark, "FIG-II.3 build/pull/swap phase costs", {
        phase: f"{seconds * 1000:.1f} ms" for phase, seconds in phases.items()
    }, "swap is an atomic file remap; heavy lifting is offline in Hadoop")
    # the design point: the swap is far cheaper than the build
    assert phases["swap"] < phases["build"]
