"""EXP-E2 (§IV.A/B): secondary-index query vs full scan.

Paper: "Queries first consult a local secondary index then return the
matching documents from the local data store."  Shape target: the index
wins by a factor that grows with collection size; both return identical
results.
"""

import time

import pytest

from benchmarks.conftest import report
from repro.common.serialization import Field, RecordSchema
from repro.databus.relay import Relay
from repro.espresso import DatabaseSchema, DocumentSchemaRegistry, EspressoTableSchema
from repro.espresso.storage import EspressoStorageNode

DB = DatabaseSchema(
    name="Music", num_partitions=4, replication_factor=1,
    tables=(EspressoTableSchema("Song", ("artist", "album", "song")),))
SONG = RecordSchema("Song", [
    Field("title", "string"),
    Field("lyrics", ["null", "string"], free_text=True),
    Field("year", "long", indexed=True),
])

_WORDS = ("love", "night", "dance", "blue", "heart", "road", "fire",
          "rain", "gold", "dream")


def build_node(songs_per_artist: int) -> EspressoStorageNode:
    schemas = DocumentSchemaRegistry()
    schemas.post("Music", "Song", SONG)
    node = EspressoStorageNode("s0", DB, schemas, Relay())
    for partition in range(DB.num_partitions):
        node.become_slave(partition)
        node.become_master(partition)
    for i in range(songs_per_artist):
        lyrics = " ".join(_WORDS[(i + k) % len(_WORDS)] for k in range(6))
        lyrics += f" tag{i % 100}"  # a selective term per ~1% of docs
        node.put_document("Song", ("The_Beatles", f"album-{i % 20}",
                                   f"song-{i}"),
                          {"title": f"song {i}", "lyrics": lyrics,
                           "year": 1960 + i % 10})
    return node


def test_index_vs_full_scan_speedup(benchmark):
    results = {}

    def sweep():
        for size in (200, 1000, 4000):
            node = build_node(size)
            repetitions = 100
            start = time.perf_counter()
            for _ in range(repetitions):
                indexed = node.query_index("Song", "lyrics", "gold tag7",
                                           resource_id="The_Beatles")
            index_time = time.perf_counter() - start
            start = time.perf_counter()
            for _ in range(repetitions):
                scanned = node.query_full_scan("Song", "lyrics", "tag7",
                                               resource_id="The_Beatles")
            scan_time = time.perf_counter() - start
            results[size] = (scan_time / index_time, len(indexed))
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(benchmark, "EXP-E2 index vs full scan", {
        f"{size} docs": f"{speedup:.1f}x faster via index ({hits} hits)"
        for size, (speedup, hits) in results.items()
    }, "index lookup then point fetch beats decoding every document")
    # the index wins decisively at every collection size (the exact
    # ratio between sizes is wall-clock noise; the win is not)
    assert all(speedup > 10 for speedup, _ in results.values())


def test_index_and_scan_agree(benchmark):
    node = build_node(1000)

    def both():
        indexed = node.query_index("Song", "year", "1963",
                                   resource_id="The_Beatles")
        scanned = [r for r in node.query_full_scan(
            "Song", "year", "1963", resource_id="The_Beatles")
            if r.document["year"] == 1963]
        return indexed, scanned

    indexed, scanned = benchmark(both)
    report(benchmark, "EXP-E2 correctness cross-check", {
        "indexed hits": len(indexed),
        "scan hits": len(scanned),
        "identical results": [r.key for r in indexed] == [r.key for r in scanned],
    }, "index results equal full-scan results")
    assert [r.key for r in indexed] == [r.key for r in scanned]
