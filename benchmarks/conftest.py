"""Shared benchmark helpers.

Every benchmark prints a small table mirroring the paper's reported
numbers (run pytest with ``-s`` to see them) and attaches the same data
to the pytest-benchmark record via ``extra_info`` so it lands in the
JSON/terminal report either way.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _require_benchmarks_enabled(request):
    """These tests read ``benchmark.stats``, which only exists when the
    benchmark machinery runs; under ``--benchmark-disable`` skip them
    instead of failing on a missing stats object."""
    if request.config.getoption("benchmark_disable", False):
        pytest.skip("benchmarks disabled (--benchmark-disable)")


def report(benchmark, title: str, rows: dict, paper_claim: str) -> None:
    """Print a result block and attach it to the benchmark record."""
    print(f"\n=== {title} ===")
    print(f"paper: {paper_claim}")
    for key, value in rows.items():
        print(f"  {key}: {value}")
        if benchmark is not None:
            benchmark.extra_info[key] = str(value)
    if benchmark is not None:
        benchmark.extra_info["paper_claim"] = paper_claim
