#!/usr/bin/env python3
"""Live migration from sqlstore to Espresso (§IV, DESIGN.md §11).

The paper's long-term plan is to move LinkedIn's core data off sharded
MySQL onto Espresso — with the site up.  This walkthrough runs the
whole migration subsystem on a member-profiles table:

1. watermark-bracketed chunked backfill (no source lock) while the
   application keeps writing,
2. catch-up on the live Databus stream until replication lag is zero,
3. dual writes with shadow-read verification,
4. a ramped cutover (5% → 25% → 50% → 100% of reads), and
5. the final full comparison gate before the target becomes the only
   store — plus a coordinator crash mid-backfill to show the journal
   resuming without re-reading completed chunks.

Run:  python examples/live_migration.py
"""

from repro.common.clock import SimClock
from repro.migration import MigrationPhase, MigrationSlo, MigrationStack
from repro.simnet.disk import SimDisk
from repro.sqlstore import Column, SqlDatabase, TableSchema

SLO = MigrationSlo(min_shadow_reads=5, shadow_duration=2.0,
                   ramp_step_duration=2.0)


def make_source(clock):
    db = SqlDatabase("members", clock=clock)
    db.create_table(TableSchema(
        "profiles",
        (Column("member_id", int), Column("name", str),
         Column("score", int)),
        primary_key=("member_id",)))
    for i in range(96):
        db.autocommit("profiles",
                      {"member_id": i, "name": f"member-{i}", "score": i})
    return db


def main() -> None:
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=7)
    source = make_source(clock)
    stack = MigrationStack.build(source, disk.scope("coordinator"), clock,
                                 slo=SLO, chunk_size=16)
    print(f"source: {len(source.table('profiles'))} profile rows, "
          f"target: {len(stack.cluster.nodes)}-node Espresso cluster")

    # -- a few backfill chunks, then the coordinator dies -----------------
    for _ in range(3):
        stack.coordinator.tick()
        clock.advance(1.0)
    copied = stack.coordinator.backfill.progress["profiles"]
    print(f"3 ticks in: chunk cursor at key {copied}, "
          f"{stack.coordinator.backfill.chunks_run} chunks landed")
    source.autocommit("profiles", {"member_id": 5000,
                                   "name": "hired-mid-crash", "score": 1})
    disk.crash_node("coordinator")
    disk.restart_node("coordinator")
    stack = MigrationStack.build(source, disk.scope("coordinator"), clock,
                                 slo=SLO, chunk_size=16,
                                 cluster=stack.cluster)
    resumed = stack.coordinator.backfill.progress["profiles"]
    print(f"crash + restart: journal resumes the cursor at {resumed} "
          f"(no completed chunk re-read)")

    # -- drive to cutover with live traffic racing the migration ---------
    seen = set()
    while not stack.coordinator.complete:
        stack.coordinator.tick()
        phase = stack.coordinator.phase
        if phase not in seen:
            seen.add(phase)
            extra = ""
            if phase is MigrationPhase.RAMP:
                extra = f" ({stack.proxy.ramp_percent}% of reads on target)"
            print(f"t={clock.now():5.1f}  phase -> {phase.value}{extra}")
        if not stack.coordinator.complete:
            member = int(clock.now()) % 96
            stack.proxy.upsert("profiles", {"member_id": member,
                                            "name": f"update-{member}",
                                            "score": member * 2})
            stack.proxy.read("profiles", (member,))
        clock.advance(1.0)

    shadow = stack.proxy.shadow
    print(f"shadow verification: {shadow.total_reads} compared reads, "
          f"{shadow.total_mismatches} mismatches")
    print(f"cutover gate: {len(stack.proxy.full_comparison())} differences "
          f"between source and target")
    row = stack.proxy.read("profiles", (5000,))
    print(f"served from Espresso after cutover: member 5000 = "
          f"{row['name']!r}")
    assert stack.coordinator.phase is MigrationPhase.CUTOVER
    assert stack.proxy.serve_target_only
    print("migration complete: sqlstore retired, Espresso is the "
          "system of record")


if __name__ == "__main__":
    main()
