#!/usr/bin/env python3
"""Kafka activity pipeline (§V): producers, groups, mirroring, audit.

Frontend servers publish user-activity events to the live Kafka
cluster; an online consumer group processes them; a mirror cluster
feeds the Hadoop load job; the audit reconciler proves nothing was
lost.

Run:  python examples/activity_events.py
"""

import json
import tempfile

from repro.common.clock import SimClock
from repro.hadoop import MiniHDFS
from repro.kafka import KafkaCluster
from repro.kafka.audit import AUDIT_TOPIC, AuditingProducer, AuditReconciler
from repro.kafka.consumer import ConsumerGroupMember
from repro.kafka.mirror import HadoopLoadJob, MirrorMaker
from repro.workloads import ActivityEventGenerator


def main() -> None:
    clock = SimClock()
    with tempfile.TemporaryDirectory() as root:
        live = KafkaCluster(3, f"{root}/live", clock=clock,
                            partitions_per_topic=6)
        replica = KafkaCluster(2, f"{root}/replica", clock=clock,
                               partitions_per_topic=6)
        live.create_topic("activity")
        live.create_topic(AUDIT_TOPIC, partitions=1)

        # three frontend servers publishing with audit instrumentation
        frontends = []
        for i in range(3):
            generator = ActivityEventGenerator(num_members=10_000, seed=i,
                                               server_name=f"app-{i:02d}")
            producer = AuditingProducer(live, f"app-{i:02d}", clock=clock)
            frontends.append((generator, producer))
        total = 0
        for tick in range(20):
            clock.advance(1.0)
            for generator, producer in frontends:
                for event in generator.events(25, timestamp=clock.now()):
                    producer.send("activity", event)
                    total += 1
        for _, producer in frontends:
            producer.flush()
            producer.publish_monitoring_events()
        print(f"published {total} activity events from 3 frontends")

        # an online consumer group: two news-relevance workers
        workers = [ConsumerGroupMember(live, "relevance", f"worker-{i}",
                                       ["activity"]) for i in range(2)]
        counts = {}
        for _ in range(4):
            for worker in workers:
                for fetched in worker.poll():
                    event = json.loads(fetched.payload)
                    counts[event["event_type"]] = \
                        counts.get(event["event_type"], 0) + 1
        print("online consumption by type:", dict(sorted(counts.items())))
        print("partitions per worker:",
              [len(w.stream.assignments) for w in workers])

        # mirror to the offline cluster and load into Hadoop
        mirror = MirrorMaker(live, replica, ["activity"])
        mirrored = mirror.poll_once()
        hdfs = MiniHDFS()
        job = HadoopLoadJob(replica, hdfs, ["activity"])
        job.run_once()
        print(f"mirrored {mirrored} events; "
              f"loaded {job.messages_loaded} into HDFS "
              f"({len(hdfs.glob_files('/kafka-loads'))} files)")

        # the audit proves no loss end to end
        report = AuditReconciler(live, ["activity"]).reconcile()
        print("audit complete:", report.complete,
              "| windows audited:", len(report.produced))
        for worker in workers:
            worker.close()
        live.shutdown()
        replica.shutdown()


if __name__ == "__main__":
    main()
