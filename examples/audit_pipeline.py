#!/usr/bin/env python3
"""The continuous consistency auditor (§V.D generalized, DESIGN.md §14).

The paper's Kafka audit trail counts messages across a pipeline and
compares claims with observations.  This walkthrough generalizes that
idea to declared constraints over any derived-data path:

1. build a source-of-truth SQL table feeding a search index through
   Databus,
2. declare a key-set containment constraint over a watermark-certified
   cut and register the pipeline's blame lineage,
3. tick the auditor on a clean pipeline (quiet),
4. plant two seeded corruptions through a fault plan — a relay window
   silently dropped, an index update silently skipped,
5. watch the auditor catch both, blame the true stage for each, and
   score itself against the injection ground truth.

Run:  python examples/audit_pipeline.py
"""

from repro.audit import (
    Auditor,
    BlameEngine,
    ViolationInjector,
    WatermarkCut,
    reconcile,
)
from repro.audit.blame import STAGE_INDEXER
from repro.audit.wiring import search_containment, sqlstore_pipeline_lineage
from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.search import MEMBER_TABLE, PeopleSearchService
from repro.simnet.disk import SimDisk
from repro.simnet.faultplan import FaultPlan
from repro.sqlstore import SqlDatabase

MEMBERS = 12


def main() -> None:
    clock = SimClock()
    disk = SimDisk(clock=clock, seed=11)

    # -- the pipeline: sqlstore -> Databus relay -> search index ----------
    source = SqlDatabase("members", clock=clock)
    source.create_table(MEMBER_TABLE)
    relay = Relay("audit-demo-relay")
    capture = capture_from_binlog(source, relay)
    search = PeopleSearchService(relay)
    for i in range(MEMBERS):
        source.autocommit(MEMBER_TABLE.name,
                          {"member_id": i, "name": f"member-{i}",
                           "headline": f"engineer {i}",
                           "industry": "software"})
    capture.poll()
    print(f"pipeline up: {MEMBERS} profiles committed, relay loaded")

    # -- declare the invariant and its lineage ----------------------------
    def pump():
        capture.poll()
        search.client.poll()

    blame = BlameEngine()
    blame.register("search-containment", sqlstore_pipeline_lineage(
        source, MEMBER_TABLE.name, capture, relay, search.client,
        store_check=lambda key: key[0] in search.index,
        store_stage=STAGE_INDEXER))

    auditor = Auditor(clock, blame=blame)
    cut = auditor.add_cut(WatermarkCut(
        source, pump, positions=[lambda: search.client.checkpoint]))
    auditor.declare(search_containment(
        "search-containment", source, MEMBER_TABLE.name, search.index,
        horizon=lambda: cut.last_scn))

    # -- a clean tick: certified cut, zero violations ---------------------
    findings = auditor.tick()
    print(f"clean tick: cut certified at SCN {cut.last_scn}, "
          f"{len(findings)} violations (indexed "
          f"{search.documents_indexed} documents)")

    # -- plant two corruptions through the fault plan ---------------------
    plan = FaultPlan(clock, disk, seed=11)
    injector = ViolationInjector()
    victim = source.autocommit(MEMBER_TABLE.name,
                               {"member_id": 100, "name": "victim",
                                "headline": "never indexed",
                                "industry": "software"})
    capture.poll()
    injector.drop_relay_window(
        plan, 1.0, relay, victim, constraint="search-containment",
        subject=f"search:{MEMBER_TABLE.name}", key=(100,))
    injector.skip_index_update(
        plan, 1.0, search.index, 3, key=(3,),
        constraint="search-containment",
        subject=f"search:{MEMBER_TABLE.name}")
    auditor.run_every(0.5, first_at=1.25)
    plan.run(until=3.0)
    auditor.stop()
    print(f"fault plan done: {len(injector.planted)} corruptions planted "
          f"(a dropped relay window, a skipped index update)")

    # -- the auditor's verdict -------------------------------------------
    for finding in auditor.findings:
        violation = finding.violation
        print(f"  caught: {violation.render()}")
        print(f"    blamed stage: {finding.blame.top} "
              f"(ranking {[s for s, _ in finding.blame.ranking][:2]}...)")

    audit = reconcile(injector.planted, auditor.findings)
    print(f"score card: {audit.summary()}")
    assert audit.exact and audit.blame_accuracy == 1.0
    print("the auditor caught exactly what was planted, "
          "and named the guilty stage for both")


if __name__ == "__main__":
    main()
