#!/usr/bin/env python3
"""Company Follow (§II.C): primary DB -> Databus -> Voldemort caches.

A user follows a company; the write lands in the primary (Oracle-style)
database; Databus captures the change and a consumer keeps two
Voldemort stores up to date: member -> companies and company -> members.

Run:  python examples/company_follow.py
"""

from repro.common.clock import SimClock
from repro.common.serialization import decode_record
from repro.databus import DatabusClient, DatabusConsumer, Relay, capture_from_binlog
from repro.sqlstore import Column, SqlDatabase, TableSchema
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.client import json_client

FOLLOW_TABLE = TableSchema(
    "company_follow",
    (Column("member_id", int), Column("company_id", int), Column("since", int)),
    primary_key=("member_id", "company_id"),
)


class FollowCacher(DatabusConsumer):
    def __init__(self, relay, member_store, company_store):
        self.relay = relay
        self.member_store = member_store
        self.company_store = company_store
        self.events_applied = 0

    def on_data_event(self, event):
        schema = self.relay.schemas.get(event.source, event.schema_version)
        row = decode_record(schema, event.payload)
        self.member_store.put(b"member:%d" % row["member_id"], None,
                              transform=("list_append", row["company_id"]))
        self.company_store.put(b"company:%d" % row["company_id"], None,
                               transform=("list_append", row["member_id"]))
        self.events_applied += 1


def main() -> None:
    clock = SimClock()
    oracle = SqlDatabase("oracle", clock=clock)
    oracle.create_table(FOLLOW_TABLE)
    relay = Relay("follow-relay")
    capture = capture_from_binlog(oracle, relay)

    voldemort = VoldemortCluster(num_nodes=3, partitions_per_node=4, clock=clock)
    voldemort.define_store(StoreDefinition("member-follows", 2, 1, 1))
    voldemort.define_store(StoreDefinition("company-followers", 2, 1, 1))
    member_store = json_client(RoutedStore(voldemort, "member-follows"))
    company_store = json_client(RoutedStore(voldemort, "company-followers"))

    cacher = FollowCacher(relay, member_store, company_store)
    subscription = DatabusClient(cacher, relay)

    follows = [(1, 100), (1, 200), (2, 100), (3, 100), (3, 300)]
    for member_id, company_id in follows:
        txn = oracle.begin()
        txn.insert("company_follow", {"member_id": member_id,
                                      "company_id": company_id, "since": 0})
        txn.commit()
    print(f"committed {len(follows)} follows to the primary store "
          f"(last SCN {oracle.last_committed_scn})")

    captured = capture.poll()
    delivered = subscription.run_to_head()
    print(f"relay captured {captured} transactions; "
          f"consumer applied {delivered} events")

    print("member 1 follows:", member_store.get_value(b"member:1"))
    print("member 3 follows:", member_store.get_value(b"member:3"))
    print("company 100 followers:", company_store.get_value(b"company:100"))

    # the caches serve reads without touching the primary database
    before = oracle.commits
    for _ in range(1000):
        member_store.get_value(b"member:1")
    print(f"1000 cache reads, primary-store commits unchanged "
          f"({oracle.commits == before})")


if __name__ == "__main__":
    main()
