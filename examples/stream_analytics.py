#!/usr/bin/env python3
"""Stream processing (§V, ROADMAP item 4): Who Viewed Your Profile.

A Samza-style job — partitioned stateful tasks on Kafka, placed by
Helix, state backed by compacted changelog topics — counts profile
views per member in real time.  Mid-run, one container is killed with
uncommitted work; the rebalanced survivor recovers from snapshot plus
changelog replay, and the serving numbers come back identical.

Run:  python examples/stream_analytics.py
"""

from repro.common.clock import SimClock
from repro.simnet.disk import SimDisk
from repro.kafka.message import Message, MessageSet
from repro.kafka import KafkaCluster
from repro.streams import (
    JobCoordinator,
    StreamContainer,
    encode_stream_message,
    route_key,
)
from repro.streams.apps import (
    WhoViewedYourProfileService,
    who_viewed_your_profile_job,
)
from repro.workloads import ProfileViewEventGenerator
from repro.zookeeper import ZooKeeperServer

PARTITIONS = 4


def produce_views(cluster, generator, count, clock):
    staged = {}
    for _ in range(count):
        clock.advance(0.01)
        event = generator.next_event(timestamp=clock.now())
        partition = route_key(event["viewer"], PARTITIONS)
        staged.setdefault(partition, []).append(Message(
            encode_stream_message(event["viewer"],
                                  {"viewee": event["viewee"],
                                   "ts": event["ts"]}, event["ts"])))
    for partition, messages in sorted(staged.items()):
        broker = cluster.broker_for("profile-views", partition)
        broker.produce("profile-views", partition, MessageSet(messages))
        broker.log("profile-views", partition).flush()


def drain(containers):
    while sum(c.run_cycle() for c in containers if c.alive):
        pass


def main() -> None:
    clock = SimClock()
    disk = SimDisk(seed=42)
    zookeeper = ZooKeeperServer()
    cluster = KafkaCluster(3, "/kafka", zookeeper=zookeeper, clock=clock,
                           partitions_per_topic=PARTITIONS, disk=disk)
    cluster.create_topic("profile-views")

    spec = who_viewed_your_profile_job(PARTITIONS, window_s=60.0)
    coordinator = JobCoordinator(spec, cluster, zookeeper)
    containers = [
        StreamContainer(f"c{i}", spec, cluster, zookeeper, clock,
                        disk.scope(f"c{i}"), "/state",
                        snapshot_interval_commits=2)
        for i in range(3)]
    coordinator.deploy(containers)
    tasks = sum(len(c.tasks) for c in containers)
    print(f"deployed job {spec.name!r}: {len(spec.stages)} stages x "
          f"{PARTITIONS} partitions = {tasks} tasks on 3 containers")

    generator = ProfileViewEventGenerator(num_members=500, seed=42)
    produce_views(cluster, generator, 2000, clock)
    drain(containers)
    service = WhoViewedYourProfileService(coordinator, containers)
    top = sorted(((service.total_views(
        ProfileViewEventGenerator.member_id(rank)), rank)
        for rank in range(20)), reverse=True)[:5]
    print("top profiles after 2000 views:")
    for views, rank in top:
        print(f"  {ProfileViewEventGenerator.member_id(rank)}: "
              f"{views} views")

    # crash one container mid-stream, with processed-but-uncommitted work
    produce_views(cluster, generator, 500, clock)
    for container in containers:
        if container.alive:
            container.poll()         # no commit: this work dies with c1
    victim = containers[1]
    lost = len(victim.tasks)
    victim.kill()
    coordinator.rebalance()
    recovered = [t for c in containers if c.alive
                 for t in c.tasks.values() if t.replayed_mutations
                 or t.recovered_from_snapshot]
    print(f"killed {victim.name} hosting {lost} tasks; "
          f"{len(recovered)} tasks recovered "
          f"({sum(t.replayed_mutations for t in recovered)} changelog "
          "mutations replayed)")
    drain(containers)

    after = sorted(((service.total_views(
        ProfileViewEventGenerator.member_id(rank)), rank)
        for rank in range(20)), reverse=True)[:5]
    expected = {rank: views for views, rank in top}
    print("top profiles after recovery (2500 views, none lost):")
    for views, rank in after:
        print(f"  {ProfileViewEventGenerator.member_id(rank)}: "
              f"{views} views")
    assert all(views >= expected[rank] for views, rank in after
               if rank in expected), "recovery lost acked counts"
    member = ProfileViewEventGenerator.member_id(after[0][1])
    windows = service.views_by_window(member)
    print(f"windowed counts for {member}: "
          f"{{{', '.join(f'{w}: {n}' for w, n in sorted(windows.items()))}}}")


if __name__ == "__main__":
    main()
