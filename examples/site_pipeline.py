#!/usr/bin/env python3
"""Figure I.1 in one process: the whole site data pipeline.

Espresso is the primary member store; its Databus update stream feeds
the people-search index and the social graph; the batch scheduler
rescoren People You May Know on "Hadoop" and swaps the result into a
Voldemort read-only store; Kafka carries the activity events the whole
time, audited end to end.

Run:  python examples/site_pipeline.py
"""

import json
import tempfile

from repro.common.clock import SimClock
from repro.common.serialization import Field, RecordSchema, decode_record
from repro.databus.client import DatabusClient, DatabusConsumer
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema, Router
from repro.espresso.storage import partition_buffer_name
from repro.hadoop import MiniHDFS
from repro.hadoop.scheduler import Workflow, WorkflowJob, WorkflowScheduler
from repro.kafka import KafkaCluster
from repro.kafka.audit import AUDIT_TOPIC, AuditingProducer, AuditReconciler
from repro.recommendations import PymkPipeline
from repro.search import PeopleSearchService
from repro.search.index import RankedInvertedIndex
from repro.socialgraph import PartitionedSocialGraph
from repro.sqlstore.binlog import ChangeKind
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster

MEMBERS_DB = DatabaseSchema(
    name="Members", num_partitions=8, replication_factor=2,
    tables=(EspressoTableSchema("Profile", ("member",)),
            EspressoTableSchema("Connection", ("member", "other"))))
PROFILE = RecordSchema("Profile", [Field("name", "string"),
                                   Field("headline", "string")])
CONNECTION = RecordSchema("Connection", [Field("since", "long")])

PROFILES = [
    ("member-1", "Jay Kreps", "Kafka and logs"),
    ("member-2", "Jun Rao", "Kafka engineer"),
    ("member-3", "Lin Qiao", "Espresso engineer"),
    ("member-4", "Kishore G", "Helix cluster manager"),
    ("member-5", "Roshan S", "Voldemort engineer"),
]
CONNECTIONS = [(1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]


class StreamFanout(DatabusConsumer):
    """One subscriber feeding search + social graph from Espresso CDC."""

    def __init__(self, cluster, search_index, graph):
        self.cluster = cluster
        self.search_index = search_index
        self.graph = graph

    def on_data_event(self, event):
        schema = self.cluster.relay.schemas.get(event.source,
                                                event.schema_version)
        row = decode_record(schema, event.payload)
        if event.source == "Profile":
            document = decode_record(
                self.cluster.schemas.latest("Members", "Profile"), row["val"])
            member_id = int(event.key[0].split("-")[1])
            self.search_index.add(member_id, document)
        elif event.source == "Connection":
            a = int(event.key[0].split("-")[1])
            b = int(event.key[1].split("-")[1])
            if event.kind is ChangeKind.DELETE:
                self.graph.disconnect(a, b)
            else:
                self.graph.connect(a, b)


def main() -> None:
    clock = SimClock()
    # --- primary storage: Espresso ------------------------------------
    espresso = EspressoCluster(MEMBERS_DB, num_nodes=3, clock=clock)
    espresso.post_document_schema("Profile", PROFILE)
    espresso.post_document_schema("Connection", CONNECTION)
    espresso.start()
    router = Router(espresso)
    for member, name, headline in PROFILES:
        router.put(f"/Members/Profile/{member}",
                   {"name": name, "headline": headline})
    for a, b in CONNECTIONS:
        router.put(f"/Members/Connection/member-{a}/member-{b}", {"since": 0})
    print(f"Espresso: {len(PROFILES)} profiles + {len(CONNECTIONS)} "
          "connections committed")

    # --- the update stream fans out to search + social graph -----------
    search_index = RankedInvertedIndex({"name": 3.0, "headline": 1.0})
    graph = PartitionedSocialGraph(8)
    fanout = StreamFanout(espresso, search_index, graph)
    for partition in range(MEMBERS_DB.num_partitions):
        buffer = partition_buffer_name("Members", partition)
        if buffer in espresso.relay.buffer_names():
            DatabusClient(fanout, espresso.relay,
                          buffer_name=buffer).run_to_head()
    print(f"Databus fanout: search index {len(search_index)} docs, "
          f"graph {graph.edge_count} edges")
    hits = search_index.search(
        "kafka", feature_scorer=lambda m: 1.0 if graph.distance(1, m, 2) == 1
        else 0.0, feature_weight=0.5)
    print("search 'kafka' viewed by member 1:",
          [(h.doc_id, round(h.score, 2)) for h in hits])

    # --- batch: scheduled PYMK refresh into Voldemort ------------------
    with tempfile.TemporaryDirectory() as root:
        voldemort = VoldemortCluster(num_nodes=3, partitions_per_node=4,
                                     clock=clock, data_root=root)
        voldemort.define_store(StoreDefinition(
            "pymk", 2, 1, 1, engine_type="read-only"))
        pymk = PymkPipeline(voldemort, MiniHDFS(), k=3)
        scheduler = WorkflowScheduler(clock)
        scheduler.schedule(Workflow("pymk-refresh", [
            WorkflowJob("score-and-deploy", lambda ctx: pymk.run(graph))]),
            every_seconds=86_400)
        clock.advance(86_400 + 1)
        routed = RoutedStore(voldemort, "pymk")
        for member in (1, 5):
            print(f"PYMK for member {member}:",
                  pymk.recommendations_for(routed, member))

        # --- activity events through Kafka, audited --------------------
        kafka = KafkaCluster(2, f"{root}/kafka", clock=clock,
                             partitions_per_topic=4)
        kafka.create_topic("activity")
        kafka.create_topic(AUDIT_TOPIC, partitions=1)
        producer = AuditingProducer(kafka, "frontend-1", clock=clock)
        for member, name, _ in PROFILES:
            producer.send("activity", {"member": member, "event": "page_view"})
        producer.flush()
        producer.publish_monitoring_events()
        report = AuditReconciler(kafka, ["activity"]).reconcile()
        print(f"Kafka: {sum(report.consumed.values())} activity events, "
              f"audit complete: {report.complete}")
        kafka.shutdown()
        voldemort.close()


if __name__ == "__main__":
    main()
