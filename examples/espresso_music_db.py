#!/usr/bin/env python3
"""Espresso's Music database (§IV.A): the paper's running example.

Hierarchical documents (/Music/Album/<artist>/<album>), secondary-index
queries, multi-table transactions, schema evolution, and a failover.

Run:  python examples/espresso_music_db.py
"""

from repro.common.serialization import Field, RecordSchema
from repro.espresso import DatabaseSchema, EspressoCluster, EspressoTableSchema, Router

MUSIC = DatabaseSchema(
    name="Music",
    num_partitions=8,
    replication_factor=2,
    tables=(
        EspressoTableSchema("Artist", ("artist",)),
        EspressoTableSchema("Album", ("artist", "album")),
        EspressoTableSchema("Song", ("artist", "album", "song")),
    ),
)

ARTIST = RecordSchema("Artist", [Field("name", "string"),
                                 Field("genre", "string", indexed=True)])
ALBUM = RecordSchema("Album", [Field("title", "string"),
                               Field("year", "long", indexed=True)])
SONG = RecordSchema("Song", [Field("title", "string"),
                             Field("lyrics", ["null", "string"], free_text=True)])


def main() -> None:
    cluster = EspressoCluster(MUSIC, num_nodes=3)
    for table, schema in (("Artist", ARTIST), ("Album", ALBUM), ("Song", SONG)):
        cluster.post_document_schema(table, schema)
    cluster.start()
    router = Router(cluster)

    # the Album table of Figure IV.2
    albums = [("Akon", "Trouble", 2004), ("Akon", "Stadium", 2011),
              ("Babyface", "Lovers", 1986), ("Babyface", "A_Closer_Look", 1991),
              ("Babyface", "Face2Face", 2001), ("Coolio", "Steal_Hear", 2008)]
    for artist, album, year in albums:
        router.put(f"/Music/Album/{artist}/{album}",
                   {"title": album.replace("_", " "), "year": year})
    print("partition of each artist (the routing function of §IV.B):")
    for artist in ("Akon", "Babyface", "Coolio"):
        print(f"  {artist} -> partition {MUSIC.partition_for(artist)} "
              f"(master {cluster.master_node(MUSIC.partition_for(artist)).instance_name})")

    # collection read
    response = router.get("/Music/Album/Babyface")
    print("Babyface albums:", [r.document["title"] for r in response.body])

    # the paper's free-text query example
    router.put("/Music/Song/The_Beatles/Sgt._Pepper/Lucy_in_the_Sky",
               {"title": "Lucy in the Sky with Diamonds",
                "lyrics": "Lucy in the sky with diamonds"})
    router.put("/Music/Song/The_Beatles/Magical_Mystery_Tour/I_am_the_Walrus",
               {"title": "I Am the Walrus",
                "lyrics": "I am the eggman, goo goo g'joob, Lucy"})
    hits = router.get('/Music/Song/The_Beatles?query=lyrics:"Lucy in the sky"')
    print('query lyrics:"Lucy in the sky" ->',
          [r.key[2] for r in hits.body])

    # a multi-table transaction: album + songs in one commit (§IV.A)
    ops = [
        ("put", "Album", ("Cher", "Greatest_Hits"), {"title": "Greatest Hits",
                                                     "year": 1999}),
        ("put", "Song", ("Cher", "Greatest_Hits", "Believe"),
         {"title": "Believe", "lyrics": "do you believe in life after love"}),
    ]
    print("transaction:", router.post_transaction("Music", "Cher", ops).body)

    # schema evolution: add a field with a default — old docs promote
    cluster.post_document_schema("Album", RecordSchema("Album", list(ALBUM.fields) + [
        Field("label", "string", default="unknown", has_default=True)]))
    record = router.get("/Music/Album/Akon/Trouble").body
    print("after schema evolution, Trouble has label:",
          record.document["label"])

    # failover: crash the master for Akon's partition
    cluster.pump_replication()
    partition = MUSIC.partition_for("Akon")
    old_master = cluster.master_node(partition).instance_name
    cluster.crash_node(old_master)
    cluster.failover()
    new_master = cluster.master_node(partition).instance_name
    print(f"crashed {old_master}; Helix promoted {new_master}")
    print("read after failover:",
          router.get("/Music/Album/Akon/Trouble").body.document["title"])
    print("write after failover:",
          router.put("/Music/Album/Akon/Konvicted", {"title": "Konvicted",
                                                     "year": 2006,
                                                     "label": "Universal"}).status)


if __name__ == "__main__":
    main()
