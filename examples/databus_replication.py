#!/usr/bin/env python3
"""Databus end to end (§III, Figures III.2 / III.3).

A primary database commits transactions; the relay captures and buffers
them; consumers subscribe with partition filters; a lagging consumer
falls off the relay and bootstraps with a consolidated delta; a brand
new consumer initializes from a consistent snapshot.

Run:  python examples/databus_replication.py
"""

from repro.common.clock import SimClock
from repro.databus import (
    BootstrapServer,
    DatabusClient,
    DatabusConsumer,
    Relay,
    capture_from_binlog,
    partition_filter,
)
from repro.databus.relay import EventBuffer
from repro.sqlstore import Column, SqlDatabase, TableSchema


class CountingConsumer(DatabusConsumer):
    def __init__(self, name):
        self.name = name
        self.events = 0
        self.keys = set()

    def on_data_event(self, event):
        self.events += 1
        self.keys.add(event.key)


def main() -> None:
    clock = SimClock()
    db = SqlDatabase("profiles", clock=clock)
    db.create_table(TableSchema(
        "member", (Column("member_id", int), Column("headline", str)),
        primary_key=("member_id",)))

    # a deliberately small relay buffer so lagging consumers fall off
    relay = Relay("relay-1")
    relay._buffers["default"] = EventBuffer(max_events=20)
    capture = capture_from_binlog(db, relay)
    bootstrap = BootstrapServer()

    def commit_member(member_id, revision=0):
        txn = db.begin()
        txn.upsert("member", {"member_id": member_id,
                              "headline": f"rev-{revision}"})
        txn.commit()

    # two partitioned consumers splitting the stream (§III.B isolation)
    partitioned = [CountingConsumer(f"indexer-{i}") for i in range(2)]
    clients = [DatabusClient(c, relay, bootstrap,
                             event_filter=partition_filter(2, i))
               for i, c in enumerate(partitioned)]

    for member_id in range(10):
        commit_member(member_id)
    capture.poll()
    bootstrap.on_events(relay.stream_from(bootstrap.high_watermark))
    for client in clients:
        client.run_to_head()
    print("partitioned consumption:",
          {c.name: c.events for c in partitioned})

    # a consumer that lags: the same hot row is updated 50 times while
    # it is away, evicting its position from the relay
    laggard = CountingConsumer("laggard")
    laggard_client = DatabusClient(laggard, relay, bootstrap)
    laggard_client.run_to_head()
    events_before = laggard.events
    for revision in range(50):
        commit_member(3, revision)
        capture.poll()
        bootstrap.on_events(relay.stream_from(bootstrap.high_watermark))
    laggard_client.run_to_head()
    print(f"laggard: {laggard.events - events_before} deliveries for 50 "
          f"updates (consolidated delta 'fast playback'), "
          f"bootstraps={laggard_client.stats.bootstraps}")

    # a brand-new consumer initializes from a consistent snapshot
    newcomer = CountingConsumer("newcomer")
    newcomer_client = DatabusClient(newcomer, relay, bootstrap)
    newcomer_client.run_to_head()
    print(f"newcomer saw {len(newcomer.keys)} distinct rows via snapshot "
          f"(snapshot bootstraps={newcomer_client.stats.snapshot_bootstraps})")


if __name__ == "__main__":
    main()
