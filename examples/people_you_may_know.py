#!/usr/bin/env python3
"""People You May Know (§II.C + Figure II.3): batch scores to serving.

An offline link-prediction job produces (member -> scored candidate
list); the build/pull/swap pipeline loads it into a Voldemort read-only
store; a bad run is rolled back instantly.

Run:  python examples/people_you_may_know.py
"""

import json
import tempfile

from repro.hadoop import MiniHDFS
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.readonly_pipeline import ReadOnlyPipelineController


def link_prediction_run(num_members: int, run: int) -> list[tuple[bytes, bytes]]:
    """A stand-in for the Hadoop link-prediction workflow: per member, a
    list of (candidate id, score).  Scores shift run to run, as the
    paper notes they do."""
    out = []
    for member in range(num_members):
        candidates = [[(member * 7 + k + run) % num_members,
                       round(0.99 - 0.07 * k - 0.01 * run, 3)]
                      for k in range(5)]
        out.append((b"member-%06d" % member, json.dumps(candidates).encode()))
    return out


def main() -> None:
    with tempfile.TemporaryDirectory() as data_root:
        cluster = VoldemortCluster(num_nodes=3, partitions_per_node=8,
                                   data_root=data_root)
        cluster.define_store(StoreDefinition(
            "pymk", replication_factor=2, required_reads=1, required_writes=1,
            engine_type="read-only"))
        hdfs = MiniHDFS()
        controller = ReadOnlyPipelineController(cluster, hdfs, "pymk")

        # --- run 1: build, pull (throttled), swap -----------------------
        build = controller.build(link_prediction_run(1000, run=1))
        print(f"build v{build.version}: "
              f"{sum(build.records_per_node.values())} records "
              f"({hdfs.total_bytes() // 1024} KiB in HDFS)")
        controller.pull_throttle_bytes_per_sec = 10 * 1024 * 1024
        pulled = controller.pull(build)
        print("pulled per node:",
              {n: f"{b // 1024} KiB" for n, b in pulled.items()})
        controller.swap(build)

        store = RoutedStore(cluster, "pymk")
        frontier, latency = store.get(b"member-000042")
        print("member-000042 recommendations:",
              json.loads(frontier[0].value)[:3], f"({latency * 1000:.2f} ms)")

        # --- run 2 deploys... and turns out to be bad --------------------
        controller.run_cycle(link_prediction_run(1000, run=2))
        v2 = json.loads(store.get(b"member-000042")[0][0].value)
        print("after run 2:", v2[:3])
        restored = controller.rollback()
        v1 = json.loads(store.get(b"member-000042")[0][0].value)
        print(f"instant rollback to v{restored}:", v1[:3])

        # --- replicas keep serving through a node failure ----------------
        victim = store.replica_nodes(b"member-000042")[0]
        cluster.network.failures.crash(cluster.node_name(victim))
        frontier, _ = store.get(b"member-000042")
        print(f"node {victim} down, reads still served:",
              json.loads(frontier[0].value)[0])
        cluster.close()


if __name__ == "__main__":
    main()
