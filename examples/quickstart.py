#!/usr/bin/env python3
"""Quickstart: a Voldemort cluster in five minutes.

Walks the client API of Figure II.2: vector-clocked gets and puts,
server-side transforms, optimistic apply_update loops, and what happens
when a node fails mid-write.

Run:  python examples/quickstart.py
"""

from repro.common.errors import ObsoleteVersionError
from repro.voldemort import RoutedStore, StoreDefinition, VoldemortCluster
from repro.voldemort.client import StoreClient, json_client


def main() -> None:
    # a 4-node cluster, 3-way replication, quorum reads and writes
    cluster = VoldemortCluster(num_nodes=4, partitions_per_node=8)
    cluster.define_store(StoreDefinition(
        "profiles", replication_factor=3, required_reads=2, required_writes=2))
    client = StoreClient(RoutedStore(cluster, "profiles"))

    # 1) basic put / get
    clock = client.put(b"member:1001", b"Jay Kreps, Infrastructure")
    print("wrote member:1001 with clock", clock)
    print("read back:", client.get_value(b"member:1001").decode())

    # 2) optimistic locking: writing with a stale clock fails
    client.put(b"member:1001", b"Jay Kreps, Principal Engineer")
    try:
        client.put(b"member:1001", b"stale write", version=clock)
    except ObsoleteVersionError:
        print("stale write rejected, as it should be")

    # 3) server-side transforms on a JSON list value (API methods 3 & 4)
    follows = json_client(RoutedStore(cluster, "profiles"))
    follows.put(b"member:1001:follows", [])
    follows.put(b"member:1001:follows", None, transform=("list_append", 7, 42))
    sub_list = follows.get(b"member:1001:follows", transform=("list_slice", 0, 1))
    print("follows after append:", follows.get_value(b"member:1001:follows"))
    print("first follow via server-side slice:", sub_list[0].value.decode())

    # 4) apply_update: the read-modify-write retry loop (API method 5)
    counter = StoreClient(RoutedStore(cluster, "profiles"))
    counter.put(b"page:views", b"0")

    def increment(c: StoreClient) -> None:
        versions = c.get(b"page:views")
        current = versions[0]
        c.put(b"page:views", str(int(current.value) + 1).encode(),
              version=current.clock)

    for _ in range(5):
        counter.apply_update(increment)
    print("counter after 5 apply_update calls:",
          counter.get_value(b"page:views").decode())

    # 5) fault tolerance: crash a replica, keep serving
    key = b"member:2002"
    client.put(key, b"resilient")
    victim = RoutedStore(cluster, "profiles").replica_nodes(key)[0]
    cluster.network.failures.crash(cluster.node_name(victim))
    print(f"crashed node {victim}; read still works:",
          client.get_value(key).decode())
    stats = client.metrics.snapshot()
    print("client op counts:",
          {name: int(vals["count"]) for name, vals in stats.items()})


if __name__ == "__main__":
    main()
