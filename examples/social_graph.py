#!/usr/bin/env python3
"""The social graph service (§I.A, Figure I.1).

Connection accepts land in the primary store; Databus streams them to
the graph service; the service answers the site's graph queries —
degree badges, mutual connections, paths — without ever touching the
primary database.

Run:  python examples/social_graph.py
"""

import random

from repro.common.clock import SimClock
from repro.databus import Relay, capture_from_binlog
from repro.socialgraph import CONNECTION_TABLE, SocialGraphService
from repro.socialgraph.service import connection_row
from repro.sqlstore import SqlDatabase


def main() -> None:
    clock = SimClock()
    primary = SqlDatabase("connections-primary", clock=clock)
    primary.create_table(CONNECTION_TABLE)
    relay = Relay("graph-relay")
    capture = capture_from_binlog(primary, relay)
    service = SocialGraphService(relay, num_partitions=16)

    # simulate a member base accepting connections: a few communities
    # plus random bridges between them
    rng = random.Random(7)
    edges = set()
    for community in range(5):
        base = community * 100
        for _ in range(300):
            a, b = base + rng.randrange(100), base + rng.randrange(100)
            if a != b:
                edges.add(tuple(sorted((a, b))))
    for _ in range(20):  # bridges
        a, b = rng.randrange(500), rng.randrange(500)
        if a != b:
            edges.add(tuple(sorted((a, b))))
    for a, b in sorted(edges):
        txn = primary.begin()
        txn.insert("connection", connection_row(a, b))
        txn.commit()
    capture.poll(max_transactions=len(edges) + 10)
    applied = service.catch_up()
    print(f"{applied} connection events streamed into the graph "
          f"({service.graph.member_count()} members, "
          f"{service.graph.edge_count} edges)")

    viewer = 7
    for profile in (13, 113, 499):
        badge = service.degree_badge(viewer, profile)
        mutual = service.mutual_connections(viewer, profile)
        path = service.path_between(viewer, profile)
        print(f"member {viewer} -> member {profile}: {badge} degree, "
              f"{len(mutual)} mutual, path {path}")

    # graph queries never touch the primary store
    commits = primary.commits
    for _ in range(1000):
        service.graph.connection_count(rng.randrange(500))
    print("1000 queries served; primary commits unchanged:",
          primary.commits == commits)

    # a removed connection disappears after the next catch-up
    sample = next(iter(edges))
    txn = primary.begin()
    txn.delete("connection", sample)
    txn.commit()
    capture.poll()
    service.catch_up()
    print(f"connection {sample} removed; distance now",
          service.graph.distance(*sample))


if __name__ == "__main__":
    main()
